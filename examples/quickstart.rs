//! Quickstart: score one candidate transcoder on one vbench video.
//!
//! Generates the "desktop" clip from the suite, runs the VOD reference
//! transcode, then scores the HEVC-class encoder against it under the VOD
//! scenario — the canonical vbench workflow.
//!
//! Run with: `cargo run --release --example quickstart`

use vbench::measure::Measurement;
use vbench::reference::{reference_config, reference_encode};
use vbench::scenario::{score_with_video, Scenario};
use vbench::suite::{Suite, SuiteOptions};

fn main() {
    // Scaled-down suite so the example finishes quickly; use
    // `SuiteOptions::default()` for paper-scale clips.
    let opts = SuiteOptions::experiment();
    let suite = Suite::vbench(&opts);
    let entry = suite.by_name("desktop").expect("desktop is in Table 2");
    println!(
        "video: {} ({} @ {} fps, published entropy {} bit/pix/s)",
        entry.name, entry.spec.resolution, entry.category.fps, entry.category.entropy
    );
    let video = entry.generate();

    // Reference: two-pass AVC-class at the ladder bitrate (Section 4.2).
    let (reference, _) = reference_encode(Scenario::Vod, &video);
    println!(
        "reference:  {:>8.2} Mpix/s  {:>6.3} bit/pix/s  {:>6.2} dB",
        reference.speed_mpps(),
        reference.bitrate_bpps,
        reference.quality_db
    );

    // Candidate: the HEVC-class encoder at the same bitrate target.
    let cfg = vcodec::EncoderConfig::new(
        vcodec::CodecFamily::Hevc,
        vcodec::Preset::Medium,
        reference_config(Scenario::Vod, &video).rate,
    );
    let out = vcodec::encode(&video, &cfg);
    let candidate = Measurement::from_encode(&video, &out);
    println!(
        "candidate:  {:>8.2} Mpix/s  {:>6.3} bit/pix/s  {:>6.2} dB",
        candidate.speed_mpps(),
        candidate.bitrate_bpps,
        candidate.quality_db
    );

    let result = score_with_video(Scenario::Vod, &video, &candidate, &reference);
    println!(
        "ratios:     S={:.2} B={:.2} Q={:.2}",
        result.ratios.s, result.ratios.b, result.ratios.q
    );
    match result.score {
        Some(s) => println!("VOD score:  {s:.2} (constraint met)"),
        None => println!("VOD score:  — (quality constraint violated)"),
    }
}
