//! Live-streaming scenario study (Section 6.1 of the paper).
//!
//! A live transcode must keep up with the incoming pixel rate. This
//! example pits software presets and the two hardware-encoder models
//! against the Live reference on a mid-entropy 720p-class clip, printing
//! who survives the real-time constraint and at what B × Q score.
//!
//! Run with: `cargo run --release --example live_streaming`

use vbench::measure::Measurement;
use vbench::reference::{reference_encode_with_native, target_bps};
use vbench::report::{fmt_ratio, fmt_score, TextTable};
use vbench::scenario::{score_with_video, Scenario};
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{CodecFamily, EncoderConfig, Preset, RateControl};
use vhw::{HwEncoder, HwVendor};

fn main() {
    let suite = Suite::vbench(&SuiteOptions::experiment());
    let entry = suite.by_name("cricket").expect("cricket is in Table 2");
    let video = entry.generate();
    let bps = target_bps(&video);
    println!(
        "live transcode of '{}' ({} @ {} fps), target {:.2} Mbit/s\n",
        entry.name,
        video.resolution(),
        video.fps(),
        bps as f64 / 1e6
    );

    let (reference, _) =
        reference_encode_with_native(Scenario::Live, &video, entry.category.kpixels);

    let mut table = TextTable::new(["candidate", "S", "B", "Q", "realtime", "Live score"]);

    // Software encoders at several presets, single-pass bitrate like any
    // live pipeline.
    for preset in [Preset::UltraFast, Preset::Fast, Preset::Medium] {
        let cfg = EncoderConfig::new(CodecFamily::Avc, preset, RateControl::Bitrate { bps });
        let out = vcodec::encode(&video, &cfg);
        let m = Measurement::from_encode(&video, &out);
        let s = score_with_video(Scenario::Live, &video, &m, &reference);
        table.push_row([
            format!("avc/{preset}"),
            fmt_ratio(s.ratios.s),
            fmt_ratio(s.ratios.b),
            fmt_ratio(s.ratios.q),
            if s.valid { "yes" } else { "NO" }.to_string(),
            fmt_score(&s),
        ]);
    }

    // Hardware encoders: real restricted-tool bitstreams, pipeline-model
    // speed. "GPUs here shine as low latency transcoding is their intended
    // application."
    for vendor in HwVendor::ALL {
        let hw = HwEncoder::new(vendor);
        let out = hw.encode_bitrate(&video, bps);
        let m = Measurement::from_encode_with_speed(&video, &out.output, out.speed_pixels_per_sec);
        let s = score_with_video(Scenario::Live, &video, &m, &reference);
        table.push_row([
            vendor.name().to_string(),
            fmt_ratio(s.ratios.s),
            fmt_ratio(s.ratios.b),
            fmt_ratio(s.ratios.q),
            if s.valid { "yes" } else { "NO" }.to_string(),
            fmt_score(&s),
        ]);
    }

    print!("{table}");
    println!(
        "\n(real-time requirement: {:.1} Mpix/s)",
        video.resolution().pixels() as f64 * video.fps() / 1e6
    );
}
