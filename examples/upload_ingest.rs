//! Upload-ingest scenario study (the first transcode of Figure 3).
//!
//! Every upload is transcoded once into the universal intermediate format
//! before anything else happens: the transcode must be fast and faithful,
//! while its size barely matters (B > 0.2 is the only bitrate constraint —
//! it is a temporary file). This example compares ingest candidates on
//! speed × quality across three suite videos.
//!
//! Run with: `cargo run --release --example upload_ingest`

use vbench::measure::Measurement;
use vbench::reference::reference_encode;
use vbench::report::{fmt_ratio, fmt_score, TextTable};
use vbench::scenario::{score_with_video, Scenario};
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{CodecFamily, EncoderConfig, Preset, RateControl};

fn main() {
    let suite = Suite::vbench(&SuiteOptions::experiment());
    let mut table = TextTable::new(["video", "candidate", "S", "B", "Q", "Upload score"]);

    for name in ["bike", "game2", "hall"] {
        let entry = suite.by_name(name).expect("table 2 video");
        let video = entry.generate();
        let (reference, _) = reference_encode(Scenario::Upload, &video);

        // Candidates: a faster preset (trades a few bits for speed) and a
        // lazier quality target (must stay within the B > 0.2 allowance).
        let candidates = [
            (
                "avc/ultrafast crf18",
                EncoderConfig::new(
                    CodecFamily::Avc,
                    Preset::UltraFast,
                    RateControl::ConstQuality { crf: 18.0 },
                ),
            ),
            (
                "avc/fast crf14",
                EncoderConfig::new(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateControl::ConstQuality { crf: 14.0 },
                ),
            ),
        ];
        for (label, cfg) in candidates {
            let out = vcodec::encode(&video, &cfg);
            let m = Measurement::from_encode(&video, &out);
            let s = score_with_video(Scenario::Upload, &video, &m, &reference);
            table.push_row([
                name.to_string(),
                label.to_string(),
                fmt_ratio(s.ratios.s),
                fmt_ratio(s.ratios.b),
                fmt_ratio(s.ratios.q),
                fmt_score(&s),
            ]);
        }
    }
    print!("{table}");
    println!("\n(Upload constraint: B > 0.2 — up to 5x the reference size is acceptable)");
}
