//! The adaptive-bitrate fan-out (Figure 3 of the paper).
//!
//! One upload becomes a full ladder of resolutions, each two-pass encoded
//! at its ladder bitrate, produced in parallel by worker threads.
//!
//! Run with: `cargo run --release --example abr_ladder`

use vbench::ladder::transcode_ladder;
use vbench::report::TextTable;
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{CodecFamily, Preset};

fn main() {
    let opts = SuiteOptions::experiment();
    let suite = Suite::vbench(&opts);
    let entry = suite.by_name("landscape").expect("landscape is in Table 2");
    let video = entry.generate();
    println!(
        "fanning out '{}' ({} @ {} fps) into the ladder (scale {}x)\n",
        entry.name,
        video.resolution(),
        video.fps(),
        opts.scale
    );

    let rungs = transcode_ladder(&video, CodecFamily::Avc, Preset::Fast, opts.scale, 4);
    let mut t = TextTable::new(["rung", "resolution", "bytes", "bit/pix/s", "PSNR dB"]);
    for r in &rungs {
        let m = r.measurement();
        t.push_row([
            r.rung.name.to_string(),
            r.rung.resolution.to_string(),
            r.output.bytes.len().to_string(),
            format!("{:.2}", m.bitrate_bpps),
            format!("{:.2}", m.quality_db),
        ]);
    }
    print!("{t}");
    let total: usize = rungs.iter().map(|r| r.output.bytes.len()).sum();
    println!("\nladder total: {} rungs, {} bytes stored per upload", rungs.len(), total);
}
