//! VOD packaging pipeline: transcode → segment → index → verify.
//!
//! After the VOD transcode, a sharing service packages the stream into
//! CDN-cacheable segments (Section 2.5 of the paper describes the
//! CDN-replicated serving path). This example runs the whole pipeline on
//! one suite video: two-pass VOD encode, keyframe segmentation, seek
//! index, integrity verification, and a corruption drill.
//!
//! Run with: `cargo run --release --example vod_packaging`

use vbench::reference::reference_config;
use vbench::scenario::Scenario;
use vbench::suite::{Suite, SuiteOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::vbench(&SuiteOptions::experiment());
    let entry = suite.by_name("house").expect("house is in Table 2");
    let video = entry.generate();
    println!("packaging '{}' ({}, {} frames)", entry.name, video.resolution(), video.len());

    // VOD transcode with a 1-second GOP so segments are short.
    let cfg = reference_config(Scenario::Vod, &video).with_gop(video.fps().round() as u32);
    let out = vcodec::encode(&video, &cfg);
    println!(
        "stream: {} bytes, {:.2} dB",
        out.bytes.len(),
        vframe::metrics::psnr_video(&video, &out.recon)
    );

    // Seek index.
    let idx = vpack::index(&out.bytes)?;
    let keys: Vec<u32> = idx.iter().filter(|e| e.intra).map(|e| e.display).collect();
    println!("seek points (display index): {keys:?}");

    // Segment at keyframes.
    let segments = vpack::segment_at_keyframes(&out.bytes)?;
    println!("segments: {}", segments.len());
    for (i, seg) in segments.iter().enumerate() {
        let decoded = vcodec::decode(&seg.bytes)?;
        println!(
            "  #{i}: {} frames from display {}, {} bytes, crc32 {:08x}, decodes ok ({}x{})",
            seg.frames,
            seg.first_display,
            seg.bytes.len(),
            seg.crc32,
            decoded.resolution().width(),
            decoded.resolution().height(),
        );
    }

    // Reassemble and cross-check against the direct decode.
    let whole = vpack::concatenate(&segments)?;
    let a = vcodec::decode(&out.bytes)?;
    let b = vcodec::decode(&whole)?;
    assert_eq!(a.len(), b.len());
    for t in 0..a.len() {
        assert_eq!(a.frame(t), b.frame(t));
    }
    println!("reassembled stream decodes identically");

    // Corruption drill: a CDN-side bit flip is caught before serving.
    let mut damaged = segments.clone();
    let mid = damaged[0].bytes.len() / 2;
    damaged[0].bytes[mid] ^= 0x01;
    match vpack::concatenate(&damaged) {
        Err(vpack::PackError::IntegrityFailure { segment }) => {
            println!("corruption detected in segment {segment} (as it should be)");
        }
        other => panic!("corruption went undetected: {other:?}"),
    }
    Ok(())
}
