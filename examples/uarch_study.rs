//! Microarchitectural characterization (Section 5.1 of the paper).
//!
//! Encodes a low-entropy and a high-entropy suite video with the cache /
//! branch / Top-Down simulator attached, demonstrating the Figure 5
//! trends: complex content stresses the instruction cache and branch
//! predictor, while its higher compute-per-byte *lowers* LLC misses per
//! kilo-instruction.
//!
//! Run with: `cargo run --release --example uarch_study`

use varch::{MachineConfig, UarchSim};
use vbench::reference::reference_config;
use vbench::report::TextTable;
use vbench::scenario::Scenario;
use vbench::suite::{Suite, SuiteOptions};
use vcodec::encode_with_probe;

fn main() {
    let suite = Suite::vbench(&SuiteOptions::experiment());
    let mut table = TextTable::new([
        "video",
        "entropy",
        "I$ MPKI",
        "branch MPKI",
        "LLC MPKI",
        "FE%",
        "BAD%",
        "MEM%",
        "RET+CORE%",
    ]);

    // Three 720p-class videos spanning the entropy range: keeping the
    // resolution fixed isolates the entropy effect (LLC traffic scales
    // with resolution, instruction count with content complexity).
    for name in ["desktop", "cricket", "girl"] {
        let entry = suite.by_name(name).expect("table 2 video");
        let video = entry.generate();
        let cfg = reference_config(Scenario::Vod, &video);
        // Half-scale frames, half-scale LLC (capacity pressure preserved).
        let mut sim =
            UarchSim::new(MachineConfig { llc_bytes: 512 * 1024, ..MachineConfig::default() });
        let _ = encode_with_probe(&video, &cfg, &mut sim);
        let r = sim.report();
        table.push_row([
            name.to_string(),
            format!("{:.1}", entry.category.entropy),
            format!("{:.2}", r.icache_mpki),
            format!("{:.2}", r.branch_mpki),
            format!("{:.2}", r.llc_mpki),
            format!("{:.0}%", 100.0 * r.topdown.frontend),
            format!("{:.0}%", 100.0 * r.topdown.bad_speculation),
            format!("{:.0}%", 100.0 * r.topdown.backend_memory),
            format!("{:.0}%", 100.0 * r.topdown.useful_or_core()),
        ]);
    }
    print!("{table}");
    println!(
        "\nexpected trends (paper Fig. 5/6): I$ and branch MPKI rise with entropy,\n\
         LLC MPKI falls; ~60% of slots retire or wait on functional units."
    );
}
