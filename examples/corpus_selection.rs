//! The video-selection methodology, end to end (Section 4.1 of the paper).
//!
//! Samples a synthetic upload corpus, clusters it with weighted k-means,
//! prints the derived 15-video suite (the Table 2 analogue), and compares
//! the coverage of every public dataset — the quantified version of
//! Figure 4.
//!
//! Run with: `cargo run --release --example corpus_selection`

use vbench::report::TextTable;
use vcorpus::corpus::CorpusModel;
use vcorpus::coverage::coverage_fraction;
use vcorpus::datasets;
use vcorpus::selection::{select_suite, SelectionConfig};
use vcorpus::VideoCategory;

fn main() {
    let corpus = CorpusModel::new().sample_categories(50_000, 2017);
    println!("synthetic corpus: {} categories from 50,000 uploads\n", corpus.len());

    // Derive the suite exactly as the paper does.
    let suite = select_suite(&corpus, &SelectionConfig::default());
    let mut table = TextTable::new(["kpixels", "fps", "entropy", "cluster share"]);
    for s in &suite {
        table.push_row([
            s.category.kpixels.to_string(),
            s.category.fps.to_string(),
            format!("{:.1}", s.category.entropy),
            format!("{:.1}%", 100.0 * s.share),
        ]);
    }
    println!("derived suite (weighted k-means, k = 15, mode representatives):");
    print!("{table}");

    // Coverage comparison at a fixed radius in normalized feature space.
    let radius = 0.35;
    println!("\ncorpus weight within r = {radius} of each dataset (Figure 4, quantified):");
    let derived: Vec<VideoCategory> = suite.iter().map(|s| s.category).collect();
    let mut cov = TextTable::new(["dataset", "videos", "coverage"]);
    for profile in datasets::all_profiles() {
        let pts: Vec<VideoCategory> = profile.videos.iter().map(|v| v.category).collect();
        cov.push_row([
            profile.name.to_string(),
            pts.len().to_string(),
            format!("{:.1}%", 100.0 * coverage_fraction(&pts, &corpus, radius)),
        ]);
    }
    cov.push_row([
        "derived (this run)".to_string(),
        derived.len().to_string(),
        format!("{:.1}%", 100.0 * coverage_fraction(&derived, &corpus, radius)),
    ]);
    print!("{cov}");
}
