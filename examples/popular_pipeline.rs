//! Popular-video pipeline economics (Sections 2.5 and 6.2 of the paper).
//!
//! When a video turns out to be popular, services re-transcode it at very
//! high effort: the extra compute is paid once, the bitrate savings are
//! multiplied across every playback. This example (1) re-transcodes a clip
//! with the VP9-class encoder at maximum effort, (2) verifies it meets the
//! Popular constraints (B, Q ≥ 1), and (3) uses the power-law popularity
//! model to find the playback count where re-transcoding pays off.
//!
//! Run with: `cargo run --release --example popular_pipeline`

use vbench::measure::Measurement;
use vbench::reference::{reference_config, reference_encode};
use vbench::scenario::{score_with_video, Scenario};
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{CodecFamily, EncoderConfig, Preset};
use vcorpus::PopularityModel;

fn main() {
    let suite = Suite::vbench(&SuiteOptions::experiment());
    let entry = suite.by_name("funny").expect("funny is in Table 2");
    let video = entry.generate();
    println!("popular-video re-transcode of '{}' ({})\n", entry.name, video.resolution());

    // The Popular reference: the AVC-class encoder at its highest effort.
    let (reference, ref_out) = reference_encode(Scenario::Popular, &video);

    // Candidate: VP9-class at maximum effort, same bitrate target.
    let cfg = EncoderConfig::new(
        CodecFamily::Vp9,
        Preset::VerySlow,
        reference_config(Scenario::Popular, &video).rate,
    );
    let out = vcodec::encode(&video, &cfg);
    let candidate = Measurement::from_encode(&video, &out);
    let result = score_with_video(Scenario::Popular, &video, &candidate, &reference);

    println!(
        "reference (avc/veryslow): {:>8.3} bit/pix/s  {:>6.2} dB",
        reference.bitrate_bpps, reference.quality_db
    );
    println!(
        "candidate (vp9/veryslow): {:>8.3} bit/pix/s  {:>6.2} dB",
        candidate.bitrate_bpps, candidate.quality_db
    );
    println!(
        "ratios: B={:.2} Q={:.2} S={:.2}  ->  Popular score: {}",
        result.ratios.b,
        result.ratios.q,
        result.ratios.s,
        result.score.map_or("invalid".to_string(), |s| format!("{s:.2}")),
    );

    // Economics: egress bytes saved per playback vs one-time compute cost.
    let bytes_ref = ref_out.bytes.len() as f64;
    let bytes_new = out.bytes.len() as f64;
    let saved_per_play = bytes_ref - bytes_new;
    if saved_per_play <= 0.0 {
        println!("\ncandidate did not shrink the stream; re-transcoding never pays off");
        return;
    }
    // Cost model: network $/GB vs compute $/s (representative cloud list
    // prices; the crossover, not the constants, is the point).
    let dollars_per_gb = 0.05;
    let dollars_per_cpu_sec = 2.0e-5;
    let egress_saving_per_play = saved_per_play / 1e9 * dollars_per_gb;
    let compute_cost = out.stats.encode_seconds * dollars_per_cpu_sec;
    let breakeven = (compute_cost / egress_saving_per_play).ceil() as u64;
    println!(
        "\nbitstream shrank {:.1}% ({:.0} bytes/play); breakeven at ~{} playbacks",
        100.0 * saved_per_play / bytes_ref,
        saved_per_play,
        breakeven
    );

    // How much of the corpus watch time justifies this effort?
    let pop = PopularityModel::default();
    let total_videos = 1_000_000u64;
    for take in [100u64, 1_000, 10_000] {
        println!(
            "top {:>6} of {} videos capture {:.1}% of watch time",
            take,
            total_videos,
            100.0 * pop.top_share(take, total_videos)
        );
    }
}
