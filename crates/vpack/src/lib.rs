//! Bitstream packaging for the vbench reproduction.
//!
//! A video-on-demand service does not serve one monolithic bitstream: it
//! splits each transcode into independently decodable segments that a CDN
//! can cache and a player can fetch adaptively (Section 2.5 of the paper
//! describes the CDN-replicated serving path). This crate provides the
//! packaging layer on top of `vcodec`'s container:
//!
//! * [`index`] — a seek index over a stream (per-frame byte ranges, key
//!   flags) without decoding any payload;
//! * [`segment_at_keyframes`] — split a stream into one segment per GOP,
//!   each a complete, independently decodable bitstream;
//! * [`concatenate`] — reassemble segments into a single stream;
//! * [`crc32`] — the per-segment integrity checksum.
//!
//! # Example
//!
//! ```
//! use vcodec::{encode, CodecFamily, EncoderConfig, Preset, RateControl};
//! use vframe::color::{frame_from_fn, Yuv};
//! use vframe::{Resolution, Video};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let frames = (0..6)
//!     .map(|t| {
//!         frame_from_fn(Resolution::new(32, 32), |x, y| {
//!             Yuv::new(((x + t) * 9 + y) as u8, 128, 128)
//!         })
//!     })
//!     .collect();
//! let video = Video::new(frames, 30.0);
//! let cfg = EncoderConfig::new(
//!     CodecFamily::Avc,
//!     Preset::Fast,
//!     RateControl::ConstQuality { crf: 30.0 },
//! )
//! .with_gop(3);
//! let stream = encode(&video, &cfg).bytes;
//!
//! let segments = vpack::segment_at_keyframes(&stream)?;
//! assert_eq!(segments.len(), 2); // 6 frames, GOP 3
//! // Every segment decodes on its own.
//! for seg in &segments {
//!     let v = vcodec::decode(&seg.bytes)?;
//!     assert_eq!(v.len(), seg.frames as usize);
//! }
//! // And reassembly reproduces the original stream's content.
//! let whole = vpack::concatenate(&segments)?;
//! assert_eq!(vcodec::decode(&whole)?.len(), 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crc;

pub use crc::crc32;

use vcodec::{probe_stream, DecodeError};

/// Byte length of the container header (`vcodec` bitstream version 2).
const HEADER_LEN: usize = 22;
/// Byte offset of the frame-count field within the header.
const FRAME_COUNT_OFFSET: usize = 15;
/// Byte length of a frame record header (type, qp, display, payload len).
const FRAME_HEADER_LEN: usize = 10;

/// Errors from packaging operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PackError {
    /// The input stream failed to parse.
    BadStream(DecodeError),
    /// The stream's frame framing is inconsistent with its header.
    Truncated,
    /// Segments cannot be combined (mismatched headers / no segments).
    Incompatible,
    /// A segment failed its integrity check.
    IntegrityFailure {
        /// Index of the failing segment.
        segment: usize,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::BadStream(e) => write!(f, "unparseable stream: {e}"),
            PackError::Truncated => write!(f, "stream ends mid-frame"),
            PackError::Incompatible => write!(f, "segments are not from compatible streams"),
            PackError::IntegrityFailure { segment } => {
                write!(f, "segment {segment} failed its CRC check")
            }
        }
    }
}

impl std::error::Error for PackError {}

impl From<DecodeError> for PackError {
    fn from(e: DecodeError) -> PackError {
        PackError::BadStream(e)
    }
}

/// One frame's location inside a stream (coding order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameEntry {
    /// Byte offset of the frame record (including its header).
    pub offset: usize,
    /// Total byte length of the record (header + payload).
    pub len: usize,
    /// Display index of the frame.
    pub display: u32,
    /// Whether this is an intra (key) frame — a valid seek point.
    pub intra: bool,
    /// The frame's quantizer.
    pub qp: u8,
}

/// Builds a seek index over a stream without touching any payload bytes.
///
/// # Errors
///
/// Returns [`PackError`] if the stream header is invalid or the framing
/// runs past the end of the buffer.
pub fn index(stream: &[u8]) -> Result<Vec<FrameEntry>, PackError> {
    let info = probe_stream(stream)?;
    let mut entries = Vec::with_capacity(info.frames as usize);
    let mut pos = HEADER_LEN;
    for _ in 0..info.frames {
        if pos + FRAME_HEADER_LEN > stream.len() {
            return Err(PackError::Truncated);
        }
        let ftype = stream[pos];
        let qp = stream[pos + 1];
        let display = u32::from_be_bytes(stream[pos + 2..pos + 6].try_into().expect("4 bytes"));
        let payload_len =
            u32::from_be_bytes(stream[pos + 6..pos + 10].try_into().expect("4 bytes")) as usize;
        let len = FRAME_HEADER_LEN + payload_len;
        if pos + len > stream.len() {
            return Err(PackError::Truncated);
        }
        entries.push(FrameEntry { offset: pos, len, display, intra: ftype == 1, qp });
        pos += len;
    }
    Ok(entries)
}

/// One independently decodable segment of a stream.
#[derive(Clone, Debug)]
pub struct Segment {
    /// The segment's complete bitstream (own header).
    pub bytes: Vec<u8>,
    /// Display index (in the original stream) of the segment's first frame.
    pub first_display: u32,
    /// Frames in the segment.
    pub frames: u32,
    /// CRC-32 of `bytes`.
    pub crc32: u32,
}

/// Splits a stream into one segment per keyframe-delimited group. Each
/// segment carries a complete header (frame count patched, display
/// indexes rebased to zero) and decodes independently.
///
/// # Errors
///
/// Returns [`PackError`] for malformed streams or a stream that does not
/// begin with a keyframe.
pub fn segment_at_keyframes(stream: &[u8]) -> Result<Vec<Segment>, PackError> {
    let entries = index(stream)?;
    if entries.is_empty() || !entries[0].intra {
        return Err(PackError::Incompatible);
    }
    // Group coding-order records between keyframes.
    let mut groups: Vec<Vec<&FrameEntry>> = Vec::new();
    for e in &entries {
        if e.intra {
            groups.push(Vec::new());
        }
        groups.last_mut().expect("first frame is intra").push(e);
    }
    let mut segments = Vec::with_capacity(groups.len());
    for group in groups {
        let first_display = group.iter().map(|e| e.display).min().expect("non-empty group");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&stream[..HEADER_LEN]);
        patch_u32(&mut bytes, FRAME_COUNT_OFFSET, group.len() as u32);
        for e in &group {
            let start = bytes.len();
            bytes.extend_from_slice(&stream[e.offset..e.offset + e.len]);
            // Rebase the display index into the segment.
            patch_u32(&mut bytes, start + 2, e.display - first_display);
        }
        let crc = crc32(&bytes);
        segments.push(Segment { bytes, first_display, frames: group.len() as u32, crc32: crc });
    }
    Ok(segments)
}

/// Reassembles segments (in order) into one stream.
///
/// # Errors
///
/// Returns [`PackError::IntegrityFailure`] if a segment's CRC no longer
/// matches its bytes, and [`PackError::Incompatible`] if the segments'
/// headers disagree or the list is empty.
pub fn concatenate(segments: &[Segment]) -> Result<Vec<u8>, PackError> {
    let first = segments.first().ok_or(PackError::Incompatible)?;
    for (i, seg) in segments.iter().enumerate() {
        if crc32(&seg.bytes) != seg.crc32 {
            return Err(PackError::IntegrityFailure { segment: i });
        }
        if seg.bytes.len() < HEADER_LEN
            || seg.bytes[..FRAME_COUNT_OFFSET] != first.bytes[..FRAME_COUNT_OFFSET]
        {
            return Err(PackError::Incompatible);
        }
    }
    let mut out = Vec::new();
    out.extend_from_slice(&first.bytes[..HEADER_LEN]);
    let mut total_frames = 0u32;
    for seg in segments {
        let entries = index(&seg.bytes)?;
        for e in &entries {
            let start = out.len();
            out.extend_from_slice(&seg.bytes[e.offset..e.offset + e.len]);
            patch_u32(&mut out, start + 2, e.display + total_frames);
        }
        total_frames += seg.frames;
    }
    patch_u32(&mut out, FRAME_COUNT_OFFSET, total_frames);
    Ok(out)
}

fn patch_u32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcodec::{decode, encode, CodecFamily, EncoderConfig, Preset, RateControl};
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::{Resolution, Video};

    fn clip(frames: usize) -> Video {
        let res = Resolution::new(48, 32);
        let fs = (0..frames)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * 5 + y * 3 + 4 * t as u32) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(fs, 30.0)
    }

    fn stream(frames: usize, gop: u32, bframes: bool) -> Vec<u8> {
        let mut cfg = EncoderConfig::new(
            CodecFamily::Avc,
            Preset::Fast,
            RateControl::ConstQuality { crf: 30.0 },
        )
        .with_gop(gop);
        if bframes {
            cfg = cfg.with_bframes();
        }
        encode(&clip(frames), &cfg).bytes
    }

    #[test]
    fn index_matches_frame_kinds() {
        let s = stream(7, 3, false);
        let idx = index(&s).unwrap();
        assert_eq!(idx.len(), 7);
        let kinds = vcodec::frame_kinds(&s).unwrap();
        for e in &idx {
            assert_eq!(e.intra, kinds[e.display as usize], "display {}", e.display);
        }
        // Records tile the stream exactly.
        let mut pos = HEADER_LEN;
        for e in &idx {
            assert_eq!(e.offset, pos);
            pos += e.len;
        }
        assert_eq!(pos, s.len());
    }

    #[test]
    fn segments_decode_independently() {
        let s = stream(9, 3, false);
        let segments = segment_at_keyframes(&s).unwrap();
        assert_eq!(segments.len(), 3);
        let original = decode(&s).unwrap();
        let mut display_base = 0usize;
        for seg in &segments {
            let v = decode(&seg.bytes).expect("segment decodes standalone");
            assert_eq!(v.len(), seg.frames as usize);
            for t in 0..v.len() {
                assert_eq!(v.frame(t), original.frame(display_base + t), "frame {t}");
            }
            display_base += v.len();
        }
    }

    #[test]
    fn segments_with_bframes_decode_independently() {
        let s = stream(10, 5, true);
        let segments = segment_at_keyframes(&s).unwrap();
        assert_eq!(segments.len(), 2);
        let original = decode(&s).unwrap();
        let mut base = 0usize;
        for seg in &segments {
            let v = decode(&seg.bytes).expect("B segment decodes standalone");
            for t in 0..v.len() {
                assert_eq!(v.frame(t), original.frame(base + t));
            }
            base += v.len();
        }
    }

    #[test]
    fn concatenation_roundtrips_content() {
        let s = stream(8, 4, true);
        let segments = segment_at_keyframes(&s).unwrap();
        let whole = concatenate(&segments).unwrap();
        let a = decode(&s).unwrap();
        let b = decode(&whole).unwrap();
        assert_eq!(a.len(), b.len());
        for t in 0..a.len() {
            assert_eq!(a.frame(t), b.frame(t), "frame {t}");
        }
    }

    #[test]
    fn tampering_is_detected() {
        let s = stream(6, 3, false);
        let mut segments = segment_at_keyframes(&s).unwrap();
        let n = segments[1].bytes.len();
        segments[1].bytes[n / 2] ^= 0xFF;
        assert_eq!(concatenate(&segments).unwrap_err(), PackError::IntegrityFailure { segment: 1 });
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let s = stream(4, 2, false);
        assert_eq!(index(&s[..s.len() - 3]).unwrap_err(), PackError::Truncated);
    }

    #[test]
    fn empty_segment_list_rejected() {
        assert_eq!(concatenate(&[]).unwrap_err(), PackError::Incompatible);
    }

    #[test]
    fn error_display() {
        assert!(PackError::Truncated.to_string().contains("mid-frame"));
        assert!(PackError::IntegrityFailure { segment: 3 }.to_string().contains('3'));
    }
}
