//! CRC-32 (IEEE 802.3) — the integrity check attached to every packaged
//! segment.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// ```
/// use vpack::crc32;
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = (c >> 8) ^ t[((c ^ u32::from(b)) & 0xFF) as usize];
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        b[17] ^= 0x04;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
