//! Frame rendering for the synthetic content classes.
//!
//! A scene is fully determined by `(seed, scene_index)`; a frame by
//! `(scene, local_time)`. Rendering is therefore random-access in time,
//! which keeps [`SourceSpec::generate_frame`](crate::SourceSpec::generate_frame)
//! consistent with whole-clip generation.

use crate::{ContentClass, SourceSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vframe::{Frame, Plane};

/// A moving foreground object (disc or rectangle) within one scene.
#[derive(Clone, Copy, Debug)]
struct Sprite {
    x0: f64,
    y0: f64,
    vx: f64,
    vy: f64,
    radius: f64,
    luma: u8,
    cb: u8,
    cr: u8,
    rectangular: bool,
}

impl Sprite {
    /// Sprite centre at local time `t`, bouncing off the frame edges.
    fn position(&self, t: f64, w: f64, h: f64) -> (f64, f64) {
        (bounce(self.x0 + self.vx * t, w), bounce(self.y0 + self.vy * t, h))
    }
}

/// Reflects `p` into `[0, limit]` (triangle wave), modelling objects that
/// bounce off the picture edges.
fn bounce(p: f64, limit: f64) -> f64 {
    if limit <= 0.0 {
        return 0.0;
    }
    let period = 2.0 * limit;
    let m = p.rem_euclid(period);
    if m <= limit {
        m
    } else {
        period - m
    }
}

pub(crate) struct SceneState<'a> {
    spec: &'a SourceSpec,
}

impl<'a> SceneState<'a> {
    pub(crate) fn new(spec: &'a SourceSpec) -> SceneState<'a> {
        SceneState { spec }
    }

    /// Scene index and frame-within-scene for global frame `t`.
    fn scene_of(&self, t: u32) -> (u32, u32) {
        match self.spec.complexity.cut_period {
            Some(p) => (t / p, t % p),
            None => (0, t),
        }
    }

    /// Sprites for scene `scene`, deterministically derived from the seed.
    fn sprites(&self, scene: u32) -> Vec<Sprite> {
        let class = self.spec.class;
        let count = match class {
            ContentClass::Slideshow => 0,
            ContentClass::ScreenCapture => 1, // a slow "cursor" box
            ContentClass::Animation => 5,
            ContentClass::Natural => 3,
            ContentClass::Gaming => 8,
            ContentClass::Sports => 12,
        };
        let mut rng =
            SmallRng::seed_from_u64(self.spec.seed ^ (u64::from(scene) << 32) ^ 0x5bd1_e995);
        let w = f64::from(self.spec.resolution.width());
        let h = f64::from(self.spec.resolution.height());
        let speed = 1.0 + self.spec.complexity.motion * 0.06 * w.min(h);
        let rect = matches!(class, ContentClass::ScreenCapture | ContentClass::Gaming);
        (0..count)
            .map(|_| Sprite {
                x0: rng.gen_range(0.0..w),
                y0: rng.gen_range(0.0..h),
                vx: rng.gen_range(-speed..speed),
                vy: rng.gen_range(-speed..speed),
                radius: rng.gen_range(0.03..0.12) * w.min(h),
                luma: rng.gen_range(40..220),
                cb: rng.gen_range(70..190),
                cr: rng.gen_range(70..190),
                rectangular: rect,
            })
            .collect()
    }

    pub(crate) fn render(&self, t: u32) -> Frame {
        let spec = self.spec;
        let (scene, local_t) = self.scene_of(t);
        let w = spec.resolution.width() as usize;
        let h = spec.resolution.height() as usize;
        let noise = spec.noise();
        let c = spec.complexity;

        // Slideshows freeze the local clock: every frame in a scene is the
        // scene's still image.
        let lt = if spec.class == ContentClass::Slideshow { 0 } else { local_t };
        let ltf = f64::from(lt);

        // Scene-dependent offset decorrelates textures across cuts.
        let scene_off = f64::from(scene) * 977.0;
        // Global camera pan, in texture-space units per frame.
        let pan = c.motion * 3.0;
        let (pan_x, pan_y) = match spec.class {
            ContentClass::ScreenCapture => (0.0, (ltf * c.motion * 2.0).floor()),
            _ => (pan_x_curve(ltf, pan), ltf * pan * 0.23),
        };

        // Spatial frequency rises with the detail knob.
        let octaves = 1 + (c.detail * 5.0).round() as u32;
        let scale = 0.004 + c.detail * 0.05;

        let mut y_plane = Plane::filled(w, h, 0);
        let screencap = spec.class == ContentClass::ScreenCapture;
        let noise_amp = c.noise * 28.0;

        for yy in 0..h {
            let fy = yy as f64;
            let row = y_plane.row_mut(yy);
            for (xx, out) in row.iter_mut().enumerate() {
                let fx = xx as f64;
                let mut luma = if screencap {
                    screen_luma(&noise, xx, yy, scene, pan_y as i64)
                } else {
                    let v = noise.fractal(
                        (fx + pan_x) * scale + scene_off,
                        (fy + pan_y) * scale + scene_off,
                        ltf * 0.01,
                        octaves,
                        0.55,
                    );
                    120.0 + v * (40.0 + c.detail * 70.0)
                };
                if noise_amp > 0.0 {
                    luma += noise.white(xx as i64, yy as i64, i64::from(t)) * noise_amp;
                }
                *out = luma.round().clamp(0.0, 255.0) as u8;
            }
        }

        // Chroma planes: smooth color washes at half resolution.
        let (cw, ch) = (w / 2, h / 2);
        let mut u_plane = Plane::filled(cw, ch, 128);
        let mut v_plane = Plane::filled(cw, ch, 128);
        let chroma_amp = match spec.class {
            ContentClass::ScreenCapture => 8.0,
            ContentClass::Slideshow => 20.0,
            _ => 24.0 + c.detail * 20.0,
        };
        let cscale = scale * 0.7;
        for cy in 0..ch {
            let fy = (cy * 2) as f64;
            for cx in 0..cw {
                let fx = (cx * 2) as f64;
                let ub = noise.fractal(
                    (fx + pan_x) * cscale + scene_off + 31.0,
                    (fy + pan_y) * cscale + scene_off,
                    ltf * 0.008,
                    2,
                    0.5,
                );
                let vb = noise.fractal(
                    (fx + pan_x) * cscale + scene_off + 67.0,
                    (fy + pan_y) * cscale + scene_off + 13.0,
                    ltf * 0.008,
                    2,
                    0.5,
                );
                u_plane.set(cx, cy, (128.0 + ub * chroma_amp).round().clamp(0.0, 255.0) as u8);
                v_plane.set(cx, cy, (128.0 + vb * chroma_amp).round().clamp(0.0, 255.0) as u8);
            }
        }

        // Foreground sprites.
        let sprites = self.sprites(scene);
        let (wf, hf) = (w as f64, h as f64);
        for s in &sprites {
            let (cx, cy) = s.position(ltf, wf, hf);
            draw_sprite(&mut y_plane, &mut u_plane, &mut v_plane, s, cx, cy);
        }

        // Gaming HUD: a static high-contrast strip along the bottom edge;
        // identical in every frame of the clip, so trivially inter-predicted.
        if spec.class == ContentClass::Gaming {
            let hud_h = (h / 12).max(4);
            for yy in h - hud_h..h {
                for xx in 0..w {
                    let v = if (xx / 6 + yy / 3) % 2 == 0 { 35 } else { 215 };
                    y_plane.set(xx, yy, v);
                }
            }
        }

        Frame::from_planes(spec.resolution, y_plane, u_plane, v_plane)
    }
}

/// Smooth, direction-changing horizontal camera pan.
fn pan_x_curve(t: f64, pan: f64) -> f64 {
    t * pan + (t * 0.07).sin() * pan * 6.0
}

/// Text-like screen content: light background, dark "glyph" blocks arranged
/// in lines, plus a window border. `scroll` shifts the text vertically the
/// way a document scroll does (whole rows, no resampling blur).
fn screen_luma(
    noise: &crate::noise::NoiseField,
    x: usize,
    y: usize,
    scene: u32,
    scroll: i64,
) -> f64 {
    let doc_y = y as i64 + scroll;
    let line_h = 18i64;
    let within = doc_y.rem_euclid(line_h);
    // Window chrome: 3-pixel border around the screen.
    if x < 3 || y < 3 {
        return 60.0;
    }
    if (6..14).contains(&within) {
        // Glyph band: blocky ink pattern, deterministic per (column-block, line).
        let col_block = (x / 7) as i64;
        let line = doc_y.div_euclid(line_h);
        let ink = noise.white(col_block, line, i64::from(scene)) > -0.2;
        // Line length varies: trailing whitespace on the right.
        let eol = noise.white(line, 7, i64::from(scene)).mul_add(0.25, 0.7);
        let frac = x as f64 / 1000.0;
        if ink && frac < eol {
            return 45.0;
        }
    }
    232.0
}

fn draw_sprite(
    y_plane: &mut Plane,
    u_plane: &mut Plane,
    v_plane: &mut Plane,
    s: &Sprite,
    cx: f64,
    cy: f64,
) {
    let r = s.radius;
    let (w, h) = (y_plane.width() as isize, y_plane.height() as isize);
    let x_min = ((cx - r).floor() as isize).max(0);
    let x_max = ((cx + r).ceil() as isize).min(w - 1);
    let y_min = ((cy - r).floor() as isize).max(0);
    let y_max = ((cy + r).ceil() as isize).min(h - 1);
    for yy in y_min..=y_max {
        for xx in x_min..=x_max {
            let dx = xx as f64 - cx;
            let dy = yy as f64 - cy;
            let inside = if s.rectangular {
                dx.abs() <= r && dy.abs() <= r * 0.7
            } else {
                dx * dx + dy * dy <= r * r
            };
            if inside {
                y_plane.set(xx as usize, yy as usize, s.luma);
                let (cx2, cy2) = (xx as usize / 2, yy as usize / 2);
                if cx2 < u_plane.width() && cy2 < u_plane.height() {
                    u_plane.set(cx2, cy2, s.cb);
                    v_plane.set(cx2, cy2, s.cr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounce_reflects() {
        assert!((bounce(5.0, 10.0) - 5.0).abs() < 1e-12);
        assert!((bounce(12.0, 10.0) - 8.0).abs() < 1e-12);
        assert!((bounce(-3.0, 10.0) - 3.0).abs() < 1e-12);
        assert!((bounce(25.0, 10.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounce_stays_in_range() {
        for i in -100..100 {
            let p = bounce(i as f64 * 1.7, 32.0);
            assert!((0.0..=32.0).contains(&p), "{p}");
        }
    }
}
