//! Deterministic value noise used to author synthetic textures.
//!
//! The generators need content whose spatial-frequency profile is tunable:
//! low-frequency gradients compress well (low entropy), high-frequency
//! octaves approach incompressible noise (high entropy). This module
//! implements seedable, coordinate-hashed *value noise* with fractal
//! octaves — deterministic for a `(seed, x, y, t)` tuple, so frames can be
//! regenerated without storing them.

/// A seedable 2D+time value-noise field.
///
/// ```
/// use vsynth::noise::NoiseField;
/// let n = NoiseField::new(7);
/// let a = n.fractal(1.5, 2.5, 0.0, 4, 0.5);
/// let b = n.fractal(1.5, 2.5, 0.0, 4, 0.5);
/// assert_eq!(a, b); // deterministic
/// assert!((-1.0..=1.0).contains(&a));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NoiseField {
    seed: u64,
}

impl NoiseField {
    /// Creates a noise field from a seed.
    pub fn new(seed: u64) -> NoiseField {
        NoiseField { seed }
    }

    /// Hash of an integer lattice point into `[0, 1)`.
    fn lattice(&self, x: i64, y: i64, t: i64) -> f64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for v in [x as u64, y as u64, t as u64] {
            h ^= v.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h = h.rotate_left(31).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        }
        h ^= h >> 33;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Smoothly interpolated noise in `[-1, 1]` at continuous coordinates.
    pub fn sample(&self, x: f64, y: f64, t: f64) -> f64 {
        let (x0, y0, t0) = (x.floor(), y.floor(), t.floor());
        let (fx, fy, ft) = (x - x0, y - y0, t - t0);
        let (sx, sy, st) = (smooth(fx), smooth(fy), smooth(ft));
        let (xi, yi, ti) = (x0 as i64, y0 as i64, t0 as i64);
        let mut acc = 0.0;
        for (dt, wt) in [(0, 1.0 - st), (1, st)] {
            if wt == 0.0 {
                continue;
            }
            let c00 = self.lattice(xi, yi, ti + dt);
            let c10 = self.lattice(xi + 1, yi, ti + dt);
            let c01 = self.lattice(xi, yi + 1, ti + dt);
            let c11 = self.lattice(xi + 1, yi + 1, ti + dt);
            let top = c00 + (c10 - c00) * sx;
            let bot = c01 + (c11 - c01) * sx;
            acc += wt * (top + (bot - top) * sy);
        }
        acc * 2.0 - 1.0
    }

    /// Fractal (multi-octave) noise in `[-1, 1]`. `octaves` controls how
    /// much high-frequency energy is present; `persistence` the falloff per
    /// octave.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero.
    pub fn fractal(&self, x: f64, y: f64, t: f64, octaves: u32, persistence: f64) -> f64 {
        assert!(octaves > 0, "at least one octave required");
        let mut amp = 1.0;
        let mut freq = 1.0;
        let mut total = 0.0;
        let mut norm = 0.0;
        for _ in 0..octaves {
            total += amp * self.sample(x * freq, y * freq, t * freq);
            norm += amp;
            amp *= persistence;
            freq *= 2.0;
        }
        (total / norm).clamp(-1.0, 1.0)
    }

    /// White (per-sample, uncorrelated) noise in `[-1, 1]` — maximally
    /// incompressible; used to push content entropy up.
    pub fn white(&self, x: i64, y: i64, t: i64) -> f64 {
        self.lattice(x, y, t) * 2.0 - 1.0
    }
}

fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = NoiseField::new(1);
        let b = NoiseField::new(1);
        let c = NoiseField::new(2);
        assert_eq!(a.sample(3.7, 9.1, 0.5), b.sample(3.7, 9.1, 0.5));
        assert_ne!(a.sample(3.7, 9.1, 0.5), c.sample(3.7, 9.1, 0.5));
    }

    #[test]
    fn bounded_output() {
        let n = NoiseField::new(42);
        for i in 0..500 {
            let x = i as f64 * 0.37;
            let v = n.fractal(x, x * 0.61, 0.2, 5, 0.6);
            assert!((-1.0..=1.0).contains(&v), "{v}");
            let w = n.white(i, i * 3, 0);
            assert!((-1.0..=1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn interpolation_is_continuous() {
        let n = NoiseField::new(5);
        // Small coordinate steps produce small value changes.
        let mut prev = n.sample(0.0, 0.0, 0.0);
        for i in 1..100 {
            let cur = n.sample(i as f64 * 0.01, 0.0, 0.0);
            assert!((cur - prev).abs() < 0.2, "jump at {i}: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn more_octaves_add_high_frequency_energy() {
        let n = NoiseField::new(9);
        // Measure mean absolute step between adjacent samples: fractal noise
        // with more octaves is rougher.
        let roughness = |oct: u32| {
            let mut total = 0.0;
            let mut prev = n.fractal(0.0, 0.0, 0.0, oct, 0.7);
            for i in 1..400 {
                let cur = n.fractal(i as f64 * 0.13, 0.0, 0.0, oct, 0.7);
                total += (cur - prev).abs();
                prev = cur;
            }
            total
        };
        assert!(roughness(6) > roughness(1) * 1.2);
    }
}
