//! Synthetic video sources for the vbench reproduction.
//!
//! The paper's suite is built from real YouTube uploads; those are not
//! redistributable here, so this crate synthesizes clips whose *transcoding
//! behaviour* matches each content category. The paper characterizes a video
//! by exactly three features — resolution, framerate, and entropy
//! (bits/pixel/second at visually lossless quality) — and our generators
//! expose knobs that span the same entropy range the YouTube corpus covers
//! (four orders of magnitude, from slideshows below 0.1 bit/pix/s to
//! high-motion sports above 10).
//!
//! Each [`ContentClass`] mimics one of the content archetypes the paper
//! names (Section 2.5 and Table 2): slideshows, screen captures ("desktop",
//! "presentation"), animation, natural video, gaming, and high-motion
//! sports. A [`SourceSpec`] fully determines a clip — generation is
//! deterministic given the seed.
//!
//! # Example
//!
//! ```
//! use vframe::Resolution;
//! use vsynth::{ContentClass, SourceSpec};
//!
//! let spec = SourceSpec::new(Resolution::new(64, 64), 30.0, 10, ContentClass::Animation, 7);
//! let video = spec.generate();
//! assert_eq!(video.len(), 10);
//! assert_eq!(video.resolution(), Resolution::new(64, 64));
//! // Deterministic: the same spec generates the same pixels.
//! assert_eq!(video.frame(3), spec.generate().frame(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod noise;
mod scene;

use noise::NoiseField;
use scene::SceneState;
use vframe::source::FrameSource;
use vframe::{Frame, Resolution, Video};

/// The content archetypes found in a video-sharing corpus (Section 2.5 of
/// the paper: "movies, television programs, music videos, video games, ...
/// animations, slideshows, and screen capture tutorials").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ContentClass {
    /// Still images with rare hard transitions; near-zero entropy.
    Slideshow,
    /// Flat UI regions and text-like detail with occasional scrolling;
    /// very low entropy ("desktop", "presentation" in Table 2).
    ScreenCapture,
    /// Smooth gradients and coherent shape motion; low-to-mid entropy.
    Animation,
    /// Textured backgrounds with steady camera pan; mid entropy
    /// ("house", "landscape", "funny").
    Natural,
    /// Sprite motion over detailed backgrounds with a static HUD; mid-high
    /// entropy ("game1".."game3").
    Gaming,
    /// High global+local motion, frequent scene cuts, sensor noise; the
    /// high-entropy end ("cat", "holi", "hall").
    Sports,
}

impl ContentClass {
    /// All classes, in increasing typical-entropy order.
    pub const ALL: [ContentClass; 6] = [
        ContentClass::Slideshow,
        ContentClass::ScreenCapture,
        ContentClass::Animation,
        ContentClass::Natural,
        ContentClass::Gaming,
        ContentClass::Sports,
    ];

    /// Default complexity knobs that give this class its characteristic
    /// entropy when encoded at visually lossless quality.
    pub fn default_complexity(&self) -> Complexity {
        match self {
            ContentClass::Slideshow => {
                Complexity { detail: 0.25, motion: 0.0, noise: 0.0, cut_period: Some(90) }
            }
            ContentClass::ScreenCapture => {
                Complexity { detail: 0.45, motion: 0.05, noise: 0.0, cut_period: None }
            }
            ContentClass::Animation => {
                Complexity { detail: 0.4, motion: 0.35, noise: 0.0, cut_period: Some(75) }
            }
            ContentClass::Natural => {
                Complexity { detail: 0.6, motion: 0.45, noise: 0.15, cut_period: Some(60) }
            }
            ContentClass::Gaming => {
                Complexity { detail: 0.7, motion: 0.65, noise: 0.1, cut_period: Some(50) }
            }
            ContentClass::Sports => {
                Complexity { detail: 0.85, motion: 0.9, noise: 0.45, cut_period: Some(30) }
            }
        }
    }
}

/// Tunable complexity knobs; all but `cut_period` range over `[0, 1]`.
///
/// Higher values raise the clip's entropy (bits/pixel/second needed at a
/// fixed quality): `detail` adds spatial high-frequency texture, `motion`
/// adds global pan and sprite velocity, `noise` adds per-frame sensor noise
/// (temporally uncorrelated, hence uncompressible), and `cut_period` inserts
/// hard scene changes every N frames.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Complexity {
    /// Spatial texture density in `[0, 1]`.
    pub detail: f64,
    /// Motion magnitude in `[0, 1]`.
    pub motion: f64,
    /// Temporally uncorrelated noise amplitude in `[0, 1]`.
    pub noise: f64,
    /// Frames between hard scene cuts; `None` disables cuts.
    pub cut_period: Option<u32>,
}

impl Complexity {
    /// Validates the knob ranges.
    ///
    /// # Panics
    ///
    /// Panics if any knob is outside `[0, 1]` or `cut_period` is `Some(0)`.
    pub fn validate(&self) {
        for (name, v) in [("detail", self.detail), ("motion", self.motion), ("noise", self.noise)] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        if let Some(p) = self.cut_period {
            assert!(p > 0, "cut_period must be non-zero");
        }
    }

    /// Scales the entropy-driving knobs by `factor`, clamping into range.
    /// `factor > 1` raises entropy, `< 1` lowers it. Used by calibration
    /// loops that match measured entropy to a target.
    pub fn scaled(&self, factor: f64) -> Complexity {
        Complexity {
            detail: (self.detail * factor).clamp(0.0, 1.0),
            motion: (self.motion * factor).clamp(0.0, 1.0),
            noise: (self.noise * factor).clamp(0.0, 1.0),
            cut_period: self.cut_period,
        }
    }
}

/// A fully deterministic description of a synthetic clip.
#[derive(Clone, Debug)]
pub struct SourceSpec {
    /// Picture size.
    pub resolution: Resolution,
    /// Frame rate in frames per second.
    pub fps: f64,
    /// Number of frames to generate.
    pub frames: usize,
    /// Content archetype.
    pub class: ContentClass,
    /// Complexity knobs (defaults to the class preset).
    pub complexity: Complexity,
    /// PRNG seed; two specs differing only in seed produce different clips
    /// with the same statistics.
    pub seed: u64,
}

impl SourceSpec {
    /// Creates a spec with the class's default complexity.
    pub fn new(
        resolution: Resolution,
        fps: f64,
        frames: usize,
        class: ContentClass,
        seed: u64,
    ) -> SourceSpec {
        SourceSpec { resolution, fps, frames, class, complexity: class.default_complexity(), seed }
    }

    /// Replaces the complexity knobs.
    pub fn with_complexity(mut self, complexity: Complexity) -> SourceSpec {
        self.complexity = complexity;
        self
    }

    /// Generates the clip by draining a [`SynthSource`] — the per-frame
    /// streaming path is the single render path; this is merely its
    /// materialized form.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or the complexity knobs are invalid.
    pub fn generate(&self) -> Video {
        let mut source = self.source();
        let mut frames: Vec<Frame> = Vec::with_capacity(self.frames);
        while let Some(f) = source.next_frame() {
            frames.push(f);
        }
        Video::new(frames, self.fps)
    }

    /// Generates only frame `t` (cheaper than a full clip when probing).
    /// Same render path as [`SourceSpec::generate`] and [`SynthSource`].
    ///
    /// # Panics
    ///
    /// Panics if `t >= frames` or the knobs are invalid.
    pub fn generate_frame(&self, t: u32) -> Frame {
        assert!((t as usize) < self.frames, "frame index out of range");
        self.complexity.validate();
        SceneState::new(self).render(t)
    }

    /// Opens a streaming [`FrameSource`] over this spec: frames are
    /// rendered one at a time as they are pulled, so nothing but the
    /// consumer's own window stays resident.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or the complexity knobs are invalid.
    pub fn source(&self) -> SynthSource {
        assert!(self.frames > 0, "at least one frame required");
        self.complexity.validate();
        SynthSource { spec: self.clone(), next: 0 }
    }

    /// The noise field driving this spec's textures.
    pub(crate) fn noise(&self) -> NoiseField {
        NoiseField::new(self.seed)
    }
}

/// A streaming [`FrameSource`] over a [`SourceSpec`]: each pull renders
/// exactly one frame (rendering is random-access in `t`, so no per-frame
/// state carries over and [`reset`](FrameSource::reset) is free). This is
/// the primary render path; [`SourceSpec::generate`] drains it.
#[derive(Clone, Debug)]
pub struct SynthSource {
    spec: SourceSpec,
    next: u32,
}

impl SynthSource {
    /// The spec this source renders.
    pub fn spec(&self) -> &SourceSpec {
        &self.spec
    }
}

impl FrameSource for SynthSource {
    fn resolution(&self) -> Resolution {
        self.spec.resolution
    }

    fn fps(&self) -> f64 {
        self.spec.fps
    }

    fn len(&self) -> usize {
        self.spec.frames
    }

    fn next_frame(&mut self) -> Option<Frame> {
        if (self.next as usize) >= self.spec.frames {
            return None;
        }
        let f = SceneState::new(&self.spec).render(self.next);
        self.next += 1;
        Some(f)
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vframe::metrics::psnr_ycbcr;

    fn spec(class: ContentClass) -> SourceSpec {
        SourceSpec::new(Resolution::new(64, 64), 30.0, 12, class, 99)
    }

    #[test]
    fn all_classes_generate() {
        for class in ContentClass::ALL {
            let v = spec(class).generate();
            assert_eq!(v.len(), 12, "{class:?}");
        }
    }

    #[test]
    fn determinism_across_calls() {
        for class in [ContentClass::Natural, ContentClass::Sports] {
            let a = spec(class).generate();
            let b = spec(class).generate();
            for t in 0..a.len() {
                assert_eq!(a.frame(t), b.frame(t), "{class:?} frame {t}");
            }
        }
    }

    #[test]
    fn seeds_change_content() {
        let a = spec(ContentClass::Natural).generate();
        let mut s = spec(ContentClass::Natural);
        s.seed = 100;
        let b = s.generate();
        assert_ne!(a.frame(0), b.frame(0));
    }

    #[test]
    fn slideshow_frames_are_static_between_cuts() {
        let v = spec(ContentClass::Slideshow).generate();
        // Frames 0 and 5 are in the same scene (cut period 90): identical.
        assert_eq!(v.frame(0), v.frame(5));
    }

    #[test]
    fn sports_frames_change_every_frame() {
        let v = spec(ContentClass::Sports).generate();
        assert_ne!(v.frame(0), v.frame(1));
        // And substantially so: inter-frame PSNR is low for high motion.
        let p = psnr_ycbcr(v.frame(0), v.frame(1));
        assert!(p < 40.0, "sports should have large temporal change, got {p} dB");
    }

    #[test]
    fn slideshow_is_temporally_smoother_than_sports() {
        let slide = spec(ContentClass::Slideshow).generate();
        let sports = spec(ContentClass::Sports).generate();
        let p_slide = psnr_ycbcr(slide.frame(0), slide.frame(1));
        let p_sports = psnr_ycbcr(sports.frame(0), sports.frame(1));
        assert!(p_slide > p_sports, "slideshow {p_slide} vs sports {p_sports}");
    }

    #[test]
    fn detail_raises_spatial_variance() {
        let low = spec(ContentClass::Natural)
            .with_complexity(Complexity { detail: 0.1, motion: 0.3, noise: 0.0, cut_period: None })
            .generate();
        let high = spec(ContentClass::Natural)
            .with_complexity(Complexity { detail: 0.9, motion: 0.3, noise: 0.0, cut_period: None })
            .generate();
        assert!(high.frame(0).y().variance() > low.frame(0).y().variance());
    }

    #[test]
    fn streaming_source_matches_full_clip() {
        // `generate()` is now defined by draining the source, so pin the
        // independent per-frame path (`generate_frame`) against sequential
        // pulls, and pin reset-replay determinism.
        let s = spec(ContentClass::Gaming);
        let mut src = s.source();
        assert_eq!(src.len(), s.frames);
        assert_eq!(src.resolution(), s.resolution);
        let pulled: Vec<Frame> = std::iter::from_fn(|| src.next_frame()).collect();
        assert_eq!(pulled.len(), s.frames);
        for (t, f) in pulled.iter().enumerate() {
            assert_eq!(f, &s.generate_frame(t as u32), "frame {t}");
        }
        src.reset();
        let replay: Vec<Frame> = std::iter::from_fn(|| src.next_frame()).collect();
        assert_eq!(pulled, replay, "reset must replay identically");
        let v = s.generate();
        assert_eq!(v.frames(), &pulled[..], "generate() is the drained source");
    }

    #[test]
    fn scene_cuts_change_content_abruptly() {
        // With cut_period 5, frames 4 and 5 straddle a scene cut: the
        // temporal difference across the cut dwarfs the within-scene one.
        let s = spec(ContentClass::Natural).with_complexity(Complexity {
            detail: 0.5,
            motion: 0.2,
            noise: 0.0,
            cut_period: Some(5),
        });
        let v = s.generate();
        let within = psnr_ycbcr(v.frame(2), v.frame(3));
        let across = psnr_ycbcr(v.frame(4), v.frame(5));
        assert!(
            across < within - 3.0,
            "cut should be abrupt: across {across} dB vs within {within} dB"
        );
    }

    #[test]
    fn gaming_hud_is_static() {
        let v = spec(ContentClass::Gaming).generate();
        // The bottom HUD strip is identical across frames.
        let h = v.resolution().height() as usize;
        let hud_y = h - 2;
        let a = v.frame(0).y();
        let b = v.frame(5).y();
        for x in 0..a.width() {
            assert_eq!(a.get(x, hud_y), b.get(x, hud_y), "HUD differs at x={x}");
        }
    }

    #[test]
    fn noise_knob_decorrelates_frames() {
        let mk = |noise: f64| {
            spec(ContentClass::Natural)
                .with_complexity(Complexity { detail: 0.4, motion: 0.0, noise, cut_period: None })
                .generate()
        };
        let clean = mk(0.0);
        let noisy = mk(0.8);
        let p_clean = psnr_ycbcr(clean.frame(0), clean.frame(1));
        let p_noisy = psnr_ycbcr(noisy.frame(0), noisy.frame(1));
        assert!(p_noisy < p_clean, "noise must hurt temporal correlation");
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_complexity_rejected() {
        let s = spec(ContentClass::Natural).with_complexity(Complexity {
            detail: 1.5,
            motion: 0.0,
            noise: 0.0,
            cut_period: None,
        });
        let _ = s.generate();
    }
}
