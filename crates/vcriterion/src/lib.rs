//! A self-contained micro-benchmark harness with the `criterion` API
//! surface this workspace's benches use.
//!
//! The build environment resolves dependencies offline, so the workspace
//! carries its own harness instead of the `criterion` crate. The
//! workspace `Cargo.toml` renames this package to `criterion`, so the
//! benches in `crates/bench/benches/` compile unchanged (they are
//! additionally gated behind the `bench` cargo feature — see
//! `crates/bench/Cargo.toml`).
//!
//! The harness warms up, then times `sample_size` batches whose batch
//! size is calibrated to fill `measurement_time`, and prints
//! mean / min / max per iteration. No statistics files, HTML reports, or
//! regression detection — shapes and orders of magnitude only.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Harness entry point: holds the timing configuration.
#[derive(Clone, Copy, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before timing starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(*self, name, &mut f);
        self
    }

    /// Opens a named group of benchmarks sharing a configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), config: *self, _parent: self }
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config = self.config.sample_size(n);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config = self.config.measurement_time(d);
        self
    }

    /// Warm-up budget before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config = self.config.warm_up_time(d);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        run_one(self.config, &full, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.config, &full, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier built from a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier that is just the parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    /// Identifier with a function name and a parameter.
    pub fn new<P: Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Per-sample mean seconds per iteration, filled by `iter`.
    samples: Vec<f64>,
    iters_per_sample: u64,
    sample_size: usize,
    calibration: Option<Duration>,
}

impl Bencher {
    /// Times `f` repeatedly and records per-iteration cost.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate the batch size from a single probe iteration.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let budget = self.calibration.unwrap_or(Duration::from_secs(2));
        let per_sample = budget.as_secs_f64() / self.sample_size.max(2) as f64;
        self.iters_per_sample =
            ((per_sample / once.as_secs_f64()).floor() as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size.max(2) {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }
}

fn run_one(config: Criterion, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: run the closure without recording until the budget is spent.
    let warm_until = Instant::now() + config.warm_up_time;
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size: 2,
        calibration: Some(Duration::from_millis(1)),
    };
    while Instant::now() < warm_until {
        warm.samples.clear();
        f(&mut warm);
    }

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size: config.sample_size,
        calibration: Some(config.measurement_time),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no measurement: closure never called iter)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{name:<40} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        fmt_secs(mean),
        fmt_secs(min),
        fmt_secs(max),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3).measurement_time(Duration::from_millis(5));
        g.warm_up_time(Duration::from_millis(1));
        g.bench_function("add", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        quick(&mut c);
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_macro_compiles() {
        // `benches` is a plain fn; invoking it would re-run the benches,
        // so just take its address.
        let _: fn() = benches;
    }
}
