//! vprof CLI contract: exit codes and output shapes.
//!
//! CI scripts branch on these codes — 0 ok, 1 I/O or parse failure,
//! 2 usage error, 4 regression — so they are pinned here against
//! handcrafted traces and BENCH documents, with no encoder in the loop.

use std::path::PathBuf;
use std::process::Command;

const EXE: &str = env!("CARGO_BIN_EXE_vprof");

/// A scratch directory in the temp dir, unique per test.
fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("vprof-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create temp dir");
    p
}

/// A minimal but complete single-process trace: coordinator span,
/// transcode with stage children, one counter, one histogram.
const TRACE: &str = concat!(
    "{\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":1000,\"pid\":7}\n",
    "{\"kind\":\"span\",\"id\":1,\"parent\":null,\"name\":\"farm.batch\",\"thread\":\"main\",",
    "\"start_us\":0,\"dur_us\":100}\n",
    "{\"kind\":\"span\",\"id\":2,\"parent\":1,\"name\":\"transcode\",\"thread\":\"w0\",",
    "\"start_us\":10,\"dur_us\":80,\"encode_secs\":0.00008}\n",
    "{\"kind\":\"span\",\"id\":3,\"parent\":2,\"name\":\"vcodec.motion_search\",\"thread\":\"w0\",",
    "\"start_us\":12,\"dur_us\":40}\n",
    "{\"kind\":\"counter\",\"name\":\"exec.jobs_completed\",\"value\":1}\n",
    "{\"kind\":\"histogram\",\"name\":\"farm.queue_wait_us\",\"count\":2,\"sum\":30,\"min\":10,",
    "\"max\":20,\"mean\":15,\"p50\":10,\"p90\":20,\"p95\":20,\"p99\":20}\n",
);

/// A BENCH document with one scenario, parameterized on the mean encode
/// time so tests can fabricate a regression.
fn bench_doc(encode_mean: f64) -> String {
    format!(
        "{{\"version\":1,\"name\":\"t\",\"runs\":3,\
         \"env\":{{\"os\":\"linux\",\"arch\":\"x86_64\",\"cpus\":4}},\
         \"scenarios\":[{{\"name\":\"cat\",\
         \"encode_secs\":{{\"mean\":{m},\"min\":{lo},\"max\":{hi}}},\
         \"speed_pps\":{{\"mean\":9.0,\"min\":8.5,\"max\":9.5}},\
         \"quality_db\":{{\"mean\":38.0,\"min\":37.9,\"max\":38.1}},\
         \"bitrate_bpps\":{{\"mean\":0.2,\"min\":0.19,\"max\":0.21}}}}]}}",
        m = encode_mean,
        lo = encode_mean * 0.98,
        hi = encode_mean * 1.02,
    )
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(EXE).args(args).output().expect("run vprof")
}

#[test]
fn report_and_flame_succeed_on_a_valid_trace() {
    let dir = temp_dir("valid");
    let trace = dir.join("trace.jsonl");
    std::fs::write(&trace, TRACE).expect("write trace");
    let trace = trace.display().to_string();

    let report = run(&["report", &trace]);
    assert_eq!(report.status.code(), Some(0), "{report:?}");
    let text = String::from_utf8_lossy(&report.stdout);
    assert!(text.contains("transcode"), "report:\n{text}");
    assert!(text.contains("vcodec.motion_search"), "report:\n{text}");

    let flame = run(&["flame", &trace]);
    assert_eq!(flame.status.code(), Some(0), "{flame:?}");
    let folded = String::from_utf8_lossy(&flame.stdout);
    assert!(
        folded.lines().any(|l| l.starts_with("pid7;farm.batch;transcode;vcodec.motion_search ")),
        "folded output:\n{folded}"
    );

    // --out writes the same folded text to a file instead of stdout.
    let out = dir.join("flame.folded");
    let flame = run(&["flame", &trace, "--out", &out.display().to_string()]);
    assert_eq!(flame.status.code(), Some(0), "{flame:?}");
    assert_eq!(std::fs::read_to_string(&out).expect("flame file").as_str(), folded);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_distinguishes_clean_regressed_and_broken_inputs() {
    let dir = temp_dir("compare");
    let old = dir.join("old.json");
    let same = dir.join("same.json");
    let slow = dir.join("slow.json");
    std::fs::write(&old, bench_doc(1.0)).expect("write old");
    std::fs::write(&same, bench_doc(1.01)).expect("write same");
    std::fs::write(&slow, bench_doc(2.0)).expect("write slow");

    // Within noise: exit 0.
    let ok = run(&["compare", &old.display().to_string(), &same.display().to_string()]);
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("ok: no regression"));

    // 2x slower: exit 4, and the scenario is named.
    let bad = run(&["compare", &old.display().to_string(), &slow.display().to_string()]);
    assert_eq!(bad.status.code(), Some(4), "{bad:?}");
    assert!(String::from_utf8_lossy(&bad.stdout).contains("REGRESSION [cat]"));

    // A loose threshold waves the same pair through.
    let waved = run(&[
        "compare",
        &old.display().to_string(),
        &slow.display().to_string(),
        "--threshold-pct",
        "150",
    ]);
    assert_eq!(waved.status.code(), Some(0), "{waved:?}");

    // Broken input is a failure (1), not a regression (4).
    std::fs::write(dir.join("broken.json"), "{\"version\":99}").expect("write broken");
    let broken = run(&[
        "compare",
        &old.display().to_string(),
        &dir.join("broken.json").display().to_string(),
    ]);
    assert_eq!(broken.status.code(), Some(1), "{broken:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_and_io_errors_have_distinct_exit_codes() {
    // No subcommand / unknown subcommand / wrong arity: usage (2).
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["prof"]).status.code(), Some(2));
    assert_eq!(run(&["report"]).status.code(), Some(2));
    assert_eq!(run(&["compare", "only-one.json"]).status.code(), Some(2));
    assert_eq!(run(&["compare", "a", "b", "--threshold-pct", "soon"]).status.code(), Some(2));

    // Missing files: I/O failure (1).
    assert_eq!(run(&["report", "/nonexistent/trace.jsonl"]).status.code(), Some(1));
    assert_eq!(run(&["flame", "/nonexistent/trace.jsonl"]).status.code(), Some(1));
    assert_eq!(
        run(&["compare", "/nonexistent/a.json", "/nonexistent/b.json"]).status.code(),
        Some(1)
    );
}
