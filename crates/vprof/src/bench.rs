//! The perf-trajectory schema: `BENCH_<name>.json` documents written
//! by `vbench bench`, compared by `vprof compare`.
//!
//! A document is schema-versioned and self-describing: per-scenario
//! mean/min/max stats over N runs plus an environment fingerprint, so
//! a comparison can tell "slower code" from "different machine".
//!
//! ```json
//! {"version":1,"name":"tiny","runs":3,
//!  "env":{"os":"linux","arch":"x86_64","cpus":8},
//!  "scenarios":[
//!    {"name":"house",
//!     "encode_secs":{"mean":0.012,"min":0.011,"max":0.013},
//!     "speed_pps":{"mean":9.1e6,"min":8.8e6,"max":9.4e6},
//!     "quality_db":{"mean":41.2,"min":41.2,"max":41.2},
//!     "bitrate_bpps":{"mean":0.11,"min":0.11,"max":0.11}}]}
//! ```
//!
//! **Noise-aware thresholds.** Wall-clock metrics jitter run to run,
//! so the regression test compares the *best* new observation against
//! the old mean inflated by both a relative margin and the old run's
//! own observed spread: `new.min > old.mean·(1+pct/100) + (old.max −
//! old.min)` flags an encode-time regression. A genuinely slower build
//! clears that bar on every run; a noisy scheduler blip does not.
//! Quality is deterministic in this codebase, so it gets an absolute
//! dB threshold with no spread allowance.

use std::collections::BTreeMap;

use vtrace::json::{self, Value};

/// Schema version of the BENCH document.
pub const BENCH_VERSION: u32 = 1;

/// Mean/min/max over a metric's per-run samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stats {
    pub mean: f64,
    pub min: f64,
    pub max: f64,
}

impl Stats {
    /// Stats over one metric's samples; `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Stats> {
        let first = *samples.first()?;
        let mut s = Stats { mean: 0.0, min: first, max: first };
        for &v in samples {
            s.mean += v;
            s.min = s.min.min(v);
            s.max = s.max.max(v);
        }
        s.mean /= samples.len() as f64;
        Some(s)
    }

    /// Observed spread, the noise allowance in comparisons.
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

/// One scenario's metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioStats {
    /// Encode seconds per run (lower is better).
    pub encode_secs: Stats,
    /// Pixel throughput per run (higher is better).
    pub speed_pps: Stats,
    /// Quality in dB (higher is better; deterministic).
    pub quality_db: Stats,
    /// Bits per pixel per second (informational).
    pub bitrate_bpps: Stats,
}

/// The machine the document was measured on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnvFingerprint {
    pub os: String,
    pub arch: String,
    pub cpus: u64,
}

impl EnvFingerprint {
    /// The current process's environment.
    pub fn current() -> EnvFingerprint {
        EnvFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1),
        }
    }
}

/// A full BENCH document.
#[derive(Clone, Debug, Default)]
pub struct BenchDoc {
    /// Workload name (the `<name>` in `BENCH_<name>.json`).
    pub name: String,
    /// Runs each scenario was measured over.
    pub runs: u32,
    /// Where it was measured.
    pub env: EnvFingerprint,
    /// Per-scenario stats, keyed by scenario name.
    pub scenarios: BTreeMap<String, ScenarioStats>,
}

/// One confirmed regression (or comparison blocker).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Scenario the finding is about (empty for document-level).
    pub scenario: String,
    /// Human-readable description.
    pub detail: String,
}

/// Comparison thresholds.
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Relative margin (percent) on top of the old mean for wall-clock
    /// metrics.
    pub threshold_pct: f64,
    /// Absolute quality-drop threshold in dB.
    pub quality_db: f64,
}

impl Default for CompareOptions {
    fn default() -> CompareOptions {
        CompareOptions { threshold_pct: 25.0, quality_db: 0.25 }
    }
}

impl BenchDoc {
    /// Serializes the document (one line, schema above).
    pub fn to_json(&self) -> String {
        let stats = |s: &Stats| {
            format!("{{\"mean\":{},\"min\":{},\"max\":{}}}", jf64(s.mean), jf64(s.min), jf64(s.max))
        };
        let mut out = format!(
            "{{\"version\":{BENCH_VERSION},\"name\":{},\"runs\":{},\
             \"env\":{{\"os\":{},\"arch\":{},\"cpus\":{}}},\"scenarios\":[",
            jstr(&self.name),
            self.runs,
            jstr(&self.env.os),
            jstr(&self.env.arch),
            self.env.cpus,
        );
        for (i, (name, s)) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"encode_secs\":{},\"speed_pps\":{},\"quality_db\":{},\
                 \"bitrate_bpps\":{}}}",
                jstr(name),
                stats(&s.encode_secs),
                stats(&s.speed_pps),
                stats(&s.quality_db),
                stats(&s.bitrate_bpps),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses a BENCH document.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem (bad JSON, wrong
    /// version, missing keys).
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let v = json::parse(text.trim()).map_err(|e| e.to_string())?;
        let version = v.get("version").and_then(Value::as_u64).ok_or("missing version")?;
        if version != u64::from(BENCH_VERSION) {
            return Err(format!("unsupported BENCH version {version} (expected {BENCH_VERSION})"));
        }
        let stats = |obj: &Value, key: &str| -> Result<Stats, String> {
            let s = obj.get(key).ok_or_else(|| format!("scenario missing {key}"))?;
            let f = |k: &str| {
                s.get(k).and_then(Value::as_f64).ok_or_else(|| format!("{key}.{k} not numeric"))
            };
            Ok(Stats { mean: f("mean")?, min: f("min")?, max: f("max")? })
        };
        let mut doc = BenchDoc {
            name: v.get("name").and_then(Value::as_str).unwrap_or_default().to_string(),
            runs: v.get("runs").and_then(Value::as_u64).unwrap_or(0) as u32,
            env: EnvFingerprint {
                os: v
                    .get("env")
                    .and_then(|e| e.get("os"))
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                arch: v
                    .get("env")
                    .and_then(|e| e.get("arch"))
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                cpus: v.get("env").and_then(|e| e.get("cpus")).and_then(Value::as_u64).unwrap_or(0),
            },
            scenarios: BTreeMap::new(),
        };
        let Some(Value::Array(scenarios)) = v.get("scenarios") else {
            return Err("missing scenarios array".to_string());
        };
        for s in scenarios {
            let name =
                s.get("name").and_then(Value::as_str).ok_or("scenario missing name")?.to_string();
            doc.scenarios.insert(
                name,
                ScenarioStats {
                    encode_secs: stats(s, "encode_secs")?,
                    speed_pps: stats(s, "speed_pps")?,
                    quality_db: stats(s, "quality_db")?,
                    bitrate_bpps: stats(s, "bitrate_bpps")?,
                },
            );
        }
        Ok(doc)
    }
}

/// Compares `new` against `old`. An empty result means no regression.
/// Scenarios present only in `old` are findings (coverage loss);
/// scenarios only in `new` are not (new coverage is fine).
pub fn compare(old: &BenchDoc, new: &BenchDoc, opts: &CompareOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    let margin = 1.0 + opts.threshold_pct / 100.0;
    for (name, o) in &old.scenarios {
        let Some(n) = new.scenarios.get(name) else {
            findings.push(Finding {
                scenario: name.clone(),
                detail: "scenario missing from the new document".to_string(),
            });
            continue;
        };
        let time_limit = o.encode_secs.mean * margin + o.encode_secs.spread();
        if n.encode_secs.min > time_limit {
            findings.push(Finding {
                scenario: name.clone(),
                detail: format!(
                    "encode time regressed: best new run {:.6}s exceeds limit {:.6}s \
                     (old mean {:.6}s +{:.0}% + spread {:.6}s)",
                    n.encode_secs.min,
                    time_limit,
                    o.encode_secs.mean,
                    opts.threshold_pct,
                    o.encode_secs.spread(),
                ),
            });
        }
        let speed_floor = o.speed_pps.mean / margin - o.speed_pps.spread();
        if n.speed_pps.max < speed_floor {
            findings.push(Finding {
                scenario: name.clone(),
                detail: format!(
                    "throughput regressed: best new run {:.0} pix/s under floor {:.0} pix/s",
                    n.speed_pps.max, speed_floor,
                ),
            });
        }
        if n.quality_db.mean < o.quality_db.mean - opts.quality_db {
            findings.push(Finding {
                scenario: name.clone(),
                detail: format!(
                    "quality regressed: {:.3} dB vs {:.3} dB (threshold {:.3} dB)",
                    n.quality_db.mean, o.quality_db.mean, opts.quality_db,
                ),
            });
        }
    }
    findings
}

/// Renders a comparison outcome for humans: every finding, or the ok
/// line with the scenario count.
pub fn render_compare(old: &BenchDoc, new: &BenchDoc, findings: &[Finding]) -> String {
    let mut out = String::new();
    if old.env != new.env {
        out.push_str(&format!(
            "note: environments differ (old {}/{}/{} cpus, new {}/{}/{} cpus)\n",
            old.env.os, old.env.arch, old.env.cpus, new.env.os, new.env.arch, new.env.cpus
        ));
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "ok: no regression across {} scenario(s)\n",
            old.scenarios.len().min(new.scenarios.len())
        ));
    } else {
        for f in findings {
            out.push_str(&format!("REGRESSION [{}]: {}\n", f.scenario, f.detail));
        }
    }
    out
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn jf64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(encode_mean: f64, spread: f64) -> BenchDoc {
        let mut doc = BenchDoc {
            name: "tiny".to_string(),
            runs: 2,
            env: EnvFingerprint::current(),
            scenarios: BTreeMap::new(),
        };
        doc.scenarios.insert(
            "house".to_string(),
            ScenarioStats {
                encode_secs: Stats {
                    mean: encode_mean,
                    min: encode_mean - spread / 2.0,
                    max: encode_mean + spread / 2.0,
                },
                speed_pps: Stats { mean: 1e6, min: 0.9e6, max: 1.1e6 },
                quality_db: Stats { mean: 40.0, min: 40.0, max: 40.0 },
                bitrate_bpps: Stats { mean: 0.1, min: 0.1, max: 0.1 },
            },
        );
        doc
    }

    #[test]
    fn document_round_trips() {
        let doc = doc(0.01, 0.002);
        let parsed = BenchDoc::parse(&doc.to_json()).expect("parses");
        assert_eq!(parsed.name, "tiny");
        assert_eq!(parsed.runs, 2);
        assert_eq!(parsed.env, doc.env);
        let s = parsed.scenarios["house"];
        assert_eq!(s.encode_secs, doc.scenarios["house"].encode_secs);
        assert_eq!(s.quality_db.mean, 40.0);
    }

    #[test]
    fn identical_docs_do_not_regress() {
        let a = doc(0.01, 0.002);
        assert!(compare(&a, &a, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn slow_enough_new_run_regresses() {
        let old = doc(0.01, 0.002);
        // 10x slower clears mean*1.25 + spread on every run.
        let new = doc(0.1, 0.002);
        let findings = compare(&old, &new, &CompareOptions::default());
        assert!(
            findings.iter().any(|f| f.detail.contains("encode time regressed")),
            "{findings:?}"
        );
    }

    #[test]
    fn noise_within_spread_passes() {
        let old = doc(0.010, 0.004);
        let new = doc(0.013, 0.004); // min 0.011 < 0.010*1.25 + 0.004
        assert!(compare(&old, &new, &CompareOptions::default()).is_empty());
    }

    #[test]
    fn missing_scenario_is_a_finding() {
        let old = doc(0.01, 0.0);
        let mut new = doc(0.01, 0.0);
        new.scenarios.clear();
        let findings = compare(&old, &new, &CompareOptions::default());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.contains("missing"));
    }

    #[test]
    fn version_mismatch_rejected() {
        let err = BenchDoc::parse("{\"version\":99,\"scenarios\":[]}").expect_err("wrong version");
        assert!(err.contains("version"), "{err}");
    }
}
