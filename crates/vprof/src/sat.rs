//! The saturation-study reader: `SAT_<scenario>.json` documents written
//! by `vbench saturate`, rendered by `vprof sat`.
//!
//! The document is the service layer's replayable record of one load
//! sweep — admit/degrade/shed rates, queue occupancy, and sojourn-time
//! quantiles per offered load, plus the encode proof tying the virtual
//! sweep to real transcodes. This module parses it with the same
//! minimal `vtrace` JSON reader the rest of vprof uses and renders the
//! operator's view: a load table with a saturation marker at the first
//! row where the service started shedding.

use vtrace::json::{self, Value};

/// Schema version this reader understands.
pub const SAT_VERSION: u64 = 1;

/// One row of the sweep: the outcome at one offered load.
#[derive(Clone, Copy, Debug, Default)]
pub struct SatRow {
    /// Mean offered arrival rate, jobs per virtual second.
    pub offered_load: f64,
    /// Arrivals offered inside the admission window.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Admitted jobs that completed service.
    pub completed: u64,
    /// Jobs dispatched at a degraded preset.
    pub degraded: u64,
    /// Jobs shed.
    pub shed: u64,
    /// Late arrivals refused while draining.
    pub drained: u64,
    /// Live completions past their deadline.
    pub deadline_misses: u64,
    /// Queue high-water mark.
    pub queue_peak: u64,
    /// Median sojourn, virtual microseconds.
    pub sojourn_p50_us: u64,
    /// 95th-percentile sojourn.
    pub sojourn_p95_us: u64,
    /// 99th-percentile sojourn.
    pub sojourn_p99_us: u64,
    /// Sheds per offered job.
    pub shed_rate: f64,
    /// Admissions per offered job.
    pub admit_rate: f64,
    /// Degraded dispatches per offered job.
    pub degrade_rate: f64,
}

/// A parsed `SAT_<scenario>.json` document.
#[derive(Clone, Debug, Default)]
pub struct SatDoc {
    /// Scenario the sweep ran under.
    pub scenario: String,
    /// Virtual fleet size.
    pub capacity: u64,
    /// Class-queue bound.
    pub queue_depth: u64,
    /// Admission-window length, virtual seconds.
    pub duration_secs: f64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Popular catalog size.
    pub catalog: u64,
    /// Distinct (video, degradation) pairs really encoded.
    pub unique_encodes: u64,
    /// CRC-32 over the per-encode CRCs, in mix order.
    pub encode_crc32: u64,
    /// Total encoded payload bytes.
    pub encoded_bytes: u64,
    /// Sweep rows, in file order.
    pub points: Vec<SatRow>,
}

impl SatDoc {
    /// Parses the single-line JSON document. Version and kind are
    /// checked; a missing numeric field is a parse error so a truncated
    /// document cannot masquerade as a quiet sweep.
    pub fn parse(text: &str) -> Result<SatDoc, String> {
        let doc = json::parse(text.trim()).map_err(|e| format!("bad SAT JSON: {e}"))?;
        match doc.get("kind").and_then(Value::as_str) {
            Some("sat") => {}
            other => return Err(format!("not a SAT document (kind {other:?})")),
        }
        match doc.get("version").and_then(Value::as_u64) {
            Some(SAT_VERSION) => {}
            other => return Err(format!("unsupported SAT version {other:?}")),
        }
        let num = |key: &str| {
            doc.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing field {key}"))
        };
        let fnum = |key: &str| {
            doc.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing field {key}"))
        };
        let points = match doc.get("points") {
            Some(Value::Array(items)) => {
                items.iter().map(SatRow::parse).collect::<Result<Vec<_>, _>>()?
            }
            _ => return Err("missing field points".to_string()),
        };
        Ok(SatDoc {
            scenario: doc
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("missing field scenario")?
                .to_string(),
            capacity: num("capacity")?,
            queue_depth: num("queue_depth")?,
            duration_secs: fnum("duration_secs")?,
            seed: num("seed")?,
            catalog: num("catalog")?,
            unique_encodes: num("unique_encodes")?,
            encode_crc32: num("encode_crc32")?,
            encoded_bytes: num("encoded_bytes")?,
            points,
        })
    }

    /// The first swept load at which anything was shed — the measured
    /// saturation onset — or `None` if the whole sweep stayed clean.
    pub fn saturation_onset(&self) -> Option<f64> {
        self.points.iter().find(|p| p.shed > 0).map(|p| p.offered_load)
    }
}

impl SatRow {
    fn parse(v: &Value) -> Result<SatRow, String> {
        let num = |key: &str| {
            v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("point missing {key}"))
        };
        let fnum = |key: &str| {
            v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("point missing {key}"))
        };
        Ok(SatRow {
            offered_load: fnum("offered_load")?,
            offered: num("offered")?,
            admitted: num("admitted")?,
            completed: num("completed")?,
            degraded: num("degraded")?,
            shed: num("shed")?,
            drained: num("drained")?,
            deadline_misses: num("deadline_misses")?,
            queue_peak: num("queue_peak")?,
            sojourn_p50_us: num("sojourn_p50_us")?,
            sojourn_p95_us: num("sojourn_p95_us")?,
            sojourn_p99_us: num("sojourn_p99_us")?,
            shed_rate: fnum("shed_rate")?,
            admit_rate: fnum("admit_rate")?,
            degrade_rate: fnum("degrade_rate")?,
        })
    }
}

/// Renders the operator's table: one row per swept load with rates as
/// percentages, a `*` marking rows that shed (at or past saturation),
/// and the encode proof in the footer. Deterministic: equal documents
/// render to equal strings.
pub fn render_sat(doc: &SatDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "saturation study: {}  capacity {}  queue-depth {}  duration {}s  seed {}  catalog {}\n",
        doc.scenario, doc.capacity, doc.queue_depth, doc.duration_secs, doc.seed, doc.catalog
    ));
    out.push_str(&format!(
        "{:>10}  {:>7} {:>8} {:>9} {:>8} {:>6} {:>7} {:>6} {:>6}  {:>7} {:>7} {:>7}  {:>24}\n",
        "load/s",
        "offered",
        "admitted",
        "completed",
        "degraded",
        "shed",
        "drained",
        "misses",
        "qpeak",
        "admit%",
        "degr%",
        "shed%",
        "sojourn p50/p95/p99 (us)"
    ));
    for p in &doc.points {
        let marker = if p.shed > 0 { '*' } else { ' ' };
        out.push_str(&format!(
            "{:>9.3}{marker}  {:>7} {:>8} {:>9} {:>8} {:>6} {:>7} {:>6} {:>6}  {:>7.2} {:>7.2} \
             {:>7.2}  {:>24}\n",
            p.offered_load,
            p.offered,
            p.admitted,
            p.completed,
            p.degraded,
            p.shed,
            p.drained,
            p.deadline_misses,
            p.queue_peak,
            p.admit_rate * 100.0,
            p.degrade_rate * 100.0,
            p.shed_rate * 100.0,
            format!("{}/{}/{}", p.sojourn_p50_us, p.sojourn_p95_us, p.sojourn_p99_us),
        ));
    }
    match doc.saturation_onset() {
        Some(load) => out.push_str(&format!("saturation onset: first sheds at load {load}/s\n")),
        None => out.push_str("saturation onset: none (no sheds across the sweep)\n"),
    }
    out.push_str(&format!(
        "encode proof: {} unique encodes  crc32 {}  {} bytes\n",
        doc.unique_encodes, doc.encode_crc32, doc.encoded_bytes
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"kind\":\"sat\",\"version\":1,\"scenario\":\"popular\",\"capacity\":2,",
        "\"queue_depth\":8,\"duration_secs\":10.0,\"seed\":7,\"catalog\":1000,",
        "\"unique_encodes\":3,\"encode_crc32\":57005,\"encoded_bytes\":999,\"points\":[",
        "{\"offered_load\":5.0,\"offered\":48,\"admitted\":48,\"completed\":48,",
        "\"degraded\":0,\"shed\":0,\"drained\":2,\"deadline_misses\":0,\"queue_peak\":3,",
        "\"sojourn_p50_us\":100,\"sojourn_p95_us\":200,\"sojourn_p99_us\":300,",
        "\"shed_rate\":0.0,\"admit_rate\":1.0,\"degrade_rate\":0.0},",
        "{\"offered_load\":50.0,\"offered\":480,\"admitted\":400,\"completed\":390,",
        "\"degraded\":120,\"shed\":80,\"drained\":9,\"deadline_misses\":0,\"queue_peak\":8,",
        "\"sojourn_p50_us\":900,\"sojourn_p95_us\":1800,\"sojourn_p99_us\":2500,",
        "\"shed_rate\":0.16666,\"admit_rate\":0.83333,\"degrade_rate\":0.25}]}\n"
    );

    #[test]
    fn parses_the_sample_document() {
        let doc = SatDoc::parse(SAMPLE).expect("parses");
        assert_eq!(doc.scenario, "popular");
        assert_eq!(doc.points.len(), 2);
        assert_eq!(doc.points[1].shed, 80);
        assert_eq!(doc.saturation_onset(), Some(50.0));
    }

    #[test]
    fn render_marks_the_shedding_rows_and_is_deterministic() {
        let doc = SatDoc::parse(SAMPLE).expect("parses");
        let table = render_sat(&doc);
        assert_eq!(table, render_sat(&doc), "render must be deterministic");
        assert!(table.contains("50.000*"), "shedding row is starred: {table}");
        assert!(table.contains("5.000 "), "clean row is not starred");
        assert!(table.contains("saturation onset: first sheds at load 50/s"));
        assert!(table.contains("3 unique encodes"));
    }

    #[test]
    fn wrong_kind_version_and_truncation_are_parse_errors() {
        assert!(SatDoc::parse("{\"kind\":\"bench\",\"version\":1}").is_err());
        assert!(SatDoc::parse("{\"kind\":\"sat\",\"version\":99}").is_err());
        let truncated = SAMPLE.replace(",\"points\":[", ",\"npoints\":[");
        assert!(SatDoc::parse(&truncated).is_err(), "missing points must not parse");
        let holed = SAMPLE.replace("\"shed\":80,", "");
        assert!(SatDoc::parse(&holed).is_err(), "a point missing a field must not parse");
    }

    #[test]
    fn a_clean_sweep_reports_no_onset() {
        let clean = SAMPLE.replace("\"shed\":80,", "\"shed\":0,");
        let doc = SatDoc::parse(&clean).expect("parses");
        assert_eq!(doc.saturation_onset(), None);
        assert!(render_sat(&doc).contains("saturation onset: none"));
    }
}
