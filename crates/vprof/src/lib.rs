//! vprof: trace analytics and a perf-regression harness for vbench.
//!
//! Answers the three questions raw `--trace-out` JSONL cannot: *where
//! did the time go* ([`analysis`] — critical path, Table-5-style
//! per-stage attribution, wait quantiles, per-process utilization, and
//! [`flame`] folded-stack export), *what is the farm doing right now*
//! (consumed by `vbench top`, which reads the journal directly), and
//! *did this change make us slower* ([`bench`] — the `BENCH_*.json`
//! schema and its noise-aware comparison).
//!
//! Dependency-free by design: the only dependency is `vtrace`, reused
//! for its minimal JSON parser, so this crate stays usable in the same
//! offline environments the rest of the workspace targets. The library
//! never prints — every analysis returns data or renders to `String` —
//! and the `vprof` binary is a thin argv shell over it.

pub mod analysis;
pub mod bench;
pub mod flame;
pub mod model;
pub mod pareto;
pub mod sat;

pub use analysis::{
    critical_path, render_report, stage_breakdown, utilization, wait_breakdown, StageBreakdown,
};
pub use bench::{compare, BenchDoc, CompareOptions, EnvFingerprint, ScenarioStats, Stats};
pub use flame::folded_stacks;
pub use model::{HistStats, Span, Trace};
pub use pareto::{render_pareto, ParetoDoc, ParetoRow};
pub use sat::{render_sat, SatDoc, SatRow};
