//! The vprof command-line tool.
//!
//! ```text
//! vprof report  <trace.jsonl>                 analyze a vtrace stream
//! vprof flame   <trace.jsonl> [--out FILE]    folded-stack flamegraph export
//! vprof compare <old.json> <new.json>         BENCH regression gate
//!               [--threshold-pct N] [--quality-db D]
//! vprof sat     <SAT.json>                    render a saturation study
//! vprof pareto  <PARETO.json>                 render a cost-QoS frontier
//! ```
//!
//! Exit codes: 0 ok, 1 I/O or parse failure, 2 usage error,
//! 4 regression detected (`compare` only) — distinct from failure so
//! CI can tell "the gate fired" from "the gate broke".

use std::path::Path;
use std::process::ExitCode;

use vprof::bench::{self, BenchDoc, CompareOptions};
use vprof::{folded_stacks, render_pareto, render_report, render_sat, ParetoDoc, SatDoc, Trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => cmd_report(&args[1..]),
        Some("flame") => cmd_flame(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("sat") => cmd_sat(&args[1..]),
        Some("pareto") => cmd_pareto(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vprof report <trace.jsonl>\n\
         \x20      vprof flame <trace.jsonl> [--out FILE]\n\
         \x20      vprof compare <old.json> <new.json> [--threshold-pct N] [--quality-db D]\n\
         \x20      vprof sat <SAT.json>\n\
         \x20      vprof pareto <PARETO.json>"
    );
    ExitCode::from(2)
}

fn cmd_report(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    match Trace::load(Path::new(path)) {
        Ok(trace) => {
            print!("{}", render_report(&trace));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("vprof: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_sat(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("vprof: read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    match SatDoc::parse(&text) {
        Ok(doc) => {
            print!("{}", render_sat(&doc));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("vprof: {path}: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_pareto(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("vprof: read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    match ParetoDoc::parse(&text) {
        Ok(doc) => {
            print!("{}", render_pareto(&doc));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("vprof: {path}: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_flame(args: &[String]) -> ExitCode {
    let (path, out) = match args {
        [path] => (path, None),
        [path, flag, out] if flag == "--out" => (path, Some(out)),
        _ => return usage(),
    };
    let trace = match Trace::load(Path::new(path)) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("vprof: {e}");
            return ExitCode::from(1);
        }
    };
    let folded = folded_stacks(&trace);
    match out {
        None => {
            print!("{folded}");
            ExitCode::SUCCESS
        }
        Some(out) => match std::fs::write(out, folded) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("vprof: write {out}: {e}");
                ExitCode::from(1)
            }
        },
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut opts = CompareOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold-pct" | "--quality-db" => {
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                if args[i] == "--threshold-pct" {
                    opts.threshold_pct = value;
                } else {
                    opts.quality_db = value;
                }
                i += 2;
            }
            flag if flag.starts_with("--") => return usage(),
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else { return usage() };
    let load = |path: &str| -> Result<BenchDoc, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        BenchDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("vprof: {e}");
            return ExitCode::from(1);
        }
    };
    let findings = bench::compare(&old, &new, &opts);
    print!("{}", bench::render_compare(&old, &new, &findings));
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(4)
    }
}
