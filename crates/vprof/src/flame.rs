//! Folded-stack flamegraph export.
//!
//! Emits the `inferno` / flamegraph.pl collapsed format: one line per
//! unique stack, `frame1;frame2;frame3 <value>`, where the value is the
//! *self* time of the leaf frame in microseconds (its duration minus
//! its children's — flamegraph tooling re-derives inclusive totals by
//! summing subtrees). Stacks are rooted at a per-process `pid<N>` frame
//! so a merged multi-process trace renders as side-by-side process
//! towers, and lines are emitted in sorted order so the export is
//! deterministic.

use std::collections::BTreeMap;

use crate::model::{Span, Trace};

/// Renders the folded-stack export for a trace.
pub fn folded_stacks(trace: &Trace) -> String {
    // Children-duration totals, keyed by (segment, parent id): parent
    // links are only meaningful within one process segment.
    let mut child_us: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for span in &trace.spans {
        if let Some(parent) = span.parent {
            *child_us.entry((span.segment, parent)).or_insert(0) += span.dur_us;
        }
    }
    let by_id: BTreeMap<(usize, u64), &Span> =
        trace.spans.iter().map(|s| ((s.segment, s.id), s)).collect();

    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for span in &trace.spans {
        let children = child_us.get(&(span.segment, span.id)).copied().unwrap_or(0);
        let self_us = span.dur_us.saturating_sub(children);
        if self_us == 0 {
            continue;
        }
        // Build the frame chain root-ward, then reverse it.
        let mut frames = vec![sanitize(&span.name)];
        let mut cursor = span;
        while let Some(parent) = cursor.parent.and_then(|p| by_id.get(&(cursor.segment, p))) {
            frames.push(sanitize(&parent.name));
            cursor = parent;
        }
        let pid = trace.headers.get(span.segment).map_or(0, |h| h.pid);
        frames.push(format!("pid{pid}"));
        frames.reverse();
        *folded.entry(frames.join(";")).or_insert(0) += self_us;
    }

    let mut out = String::new();
    for (stack, value) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

/// Frame names must not carry the format's separators (`;` splits
/// frames, space splits the value) or newlines.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c == ';' || c == ' ' || c.is_control() { '_' } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trace;

    #[test]
    fn folded_output_is_valid_and_self_timed() {
        let text = "\
            {\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":0,\"pid\":9}\n\
            {\"kind\":\"span\",\"id\":2,\"parent\":1,\"name\":\"transcode\",\"thread\":0,\
             \"start_us\":10,\"dur_us\":60,\"fields\":{}}\n\
            {\"kind\":\"span\",\"id\":1,\"parent\":null,\"name\":\"farm.batch\",\"thread\":0,\
             \"start_us\":0,\"dur_us\":100,\"fields\":{}}\n";
        let folded = folded_stacks(&Trace::parse(text).expect("parses"));
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, ["pid9;farm.batch 40", "pid9;farm.batch;transcode 60"]);
        for line in lines {
            let (stack, value) = line.rsplit_once(' ').expect("stack <value>");
            assert!(!stack.is_empty() && value.parse::<u64>().is_ok(), "bad line {line:?}");
        }
    }

    #[test]
    fn sanitize_strips_separators() {
        assert_eq!(sanitize("a;b c\nd"), "a_b_c_d");
    }
}
