//! The cost-QoS frontier reader: `PARETO_<scenario>.json` documents
//! written by `vbench plan`, rendered by `vprof pareto`.
//!
//! The document is the cost plane's replayable record of one deadline
//! sweep — per deadline multiplier, the dollar-optimal fleet's price
//! and miss rate against the homogeneous baseline's, with the instance
//! mix actually bought and the encode proof tying the plan to real
//! transcodes. Parsed with the same minimal `vtrace` JSON reader the
//! rest of vprof uses; rendered as the operator's frontier table with
//! savings per point.

use vtrace::json::{self, Value};

/// Schema version this reader understands.
pub const PARETO_DOC_VERSION: u64 = 1;

/// One frontier point: the plan at one deadline multiplier.
#[derive(Clone, Debug, Default)]
pub struct ParetoRow {
    /// Fraction of the scenario deadline this point planned under.
    pub deadline_mult: f64,
    /// Cost-aware fleet: dollars for the horizon.
    pub dollar_cost: f64,
    /// Cost-aware fleet: deadline misses per job.
    pub miss_rate: f64,
    /// Homogeneous baseline: dollars for the horizon.
    pub baseline_dollar_cost: f64,
    /// Homogeneous baseline: deadline misses per job.
    pub baseline_miss_rate: f64,
    /// Instances bought per catalog entry (parallel to the document's
    /// `instances`).
    pub fleet: Vec<u64>,
}

/// A parsed `PARETO_<scenario>.json` document.
#[derive(Clone, Debug, Default)]
pub struct ParetoDoc {
    /// Scenario the frontier was planned for.
    pub scenario: String,
    /// Admission-window length, virtual seconds (also the fleet-sizing
    /// horizon).
    pub duration_secs: f64,
    /// Mean offered arrival rate, jobs per virtual second.
    pub offered_load: f64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Jobs planned.
    pub jobs: u64,
    /// Catalog entry names, in catalog order.
    pub instances: Vec<String>,
    /// Distinct videos really encoded behind the plan.
    pub unique_encodes: u64,
    /// CRC-32 over the per-encode CRCs, in placement order.
    pub encode_crc32: u64,
    /// Total encoded payload bytes.
    pub encoded_bytes: u64,
    /// Frontier rows, in file order (tightest deadline first).
    pub points: Vec<ParetoRow>,
}

impl ParetoDoc {
    /// Parses the single-line JSON document. Version and kind are
    /// checked; a missing numeric field is a parse error so a truncated
    /// document cannot masquerade as a clean frontier.
    pub fn parse(text: &str) -> Result<ParetoDoc, String> {
        let doc = json::parse(text.trim()).map_err(|e| format!("bad PARETO JSON: {e}"))?;
        match doc.get("kind").and_then(Value::as_str) {
            Some("pareto") => {}
            other => return Err(format!("not a PARETO document (kind {other:?})")),
        }
        match doc.get("version").and_then(Value::as_u64) {
            Some(PARETO_DOC_VERSION) => {}
            other => return Err(format!("unsupported PARETO version {other:?}")),
        }
        let num = |key: &str| {
            doc.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing field {key}"))
        };
        let fnum = |key: &str| {
            doc.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing field {key}"))
        };
        let instances = match doc.get("instances") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string).ok_or("non-string instance name"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing field instances".to_string()),
        };
        let points = match doc.get("points") {
            Some(Value::Array(items)) => {
                items.iter().map(ParetoRow::parse).collect::<Result<Vec<_>, _>>()?
            }
            _ => return Err("missing field points".to_string()),
        };
        Ok(ParetoDoc {
            scenario: doc
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("missing field scenario")?
                .to_string(),
            duration_secs: fnum("duration_secs")?,
            offered_load: fnum("offered_load")?,
            seed: num("seed")?,
            jobs: num("jobs")?,
            instances,
            unique_encodes: num("unique_encodes")?,
            encode_crc32: num("encode_crc32")?,
            encoded_bytes: num("encoded_bytes")?,
            points,
        })
    }

    /// The tightest deadline multiplier the cost-aware plan served with
    /// zero misses, or `None` if every point missed.
    pub fn feasibility_knee(&self) -> Option<f64> {
        self.points.iter().find(|p| p.miss_rate == 0.0).map(|p| p.deadline_mult)
    }
}

impl ParetoRow {
    fn parse(v: &Value) -> Result<ParetoRow, String> {
        let fnum = |key: &str| {
            v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("point missing {key}"))
        };
        let fleet = match v.get("fleet") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|n| n.as_u64().ok_or("non-integer fleet count"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("point missing fleet".to_string()),
        };
        Ok(ParetoRow {
            deadline_mult: fnum("deadline_mult")?,
            dollar_cost: fnum("dollar_cost")?,
            miss_rate: fnum("miss_rate")?,
            baseline_dollar_cost: fnum("baseline_dollar_cost")?,
            baseline_miss_rate: fnum("baseline_miss_rate")?,
            fleet,
        })
    }

    /// Dollars saved against the baseline, as a fraction of the
    /// baseline's cost (0 when the baseline is free).
    pub fn savings(&self) -> f64 {
        if self.baseline_dollar_cost > 0.0 {
            1.0 - self.dollar_cost / self.baseline_dollar_cost
        } else {
            0.0
        }
    }
}

/// Renders the operator's frontier table: one row per deadline
/// multiplier with both plans' cost and miss rate, the savings, and the
/// instance mix bought; a `*` marks rows where the cost-aware plan still
/// missed deadlines. Deterministic: equal documents render to equal
/// strings.
pub fn render_pareto(doc: &ParetoDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cost-QoS frontier: {}  duration {}s  offered-load {}/s  seed {}  jobs {}\n",
        doc.scenario, doc.duration_secs, doc.offered_load, doc.seed, doc.jobs
    ));
    out.push_str(&format!("instance catalog: {}\n", doc.instances.join(", ")));
    out.push_str(&format!(
        "{:>6}  {:>12} {:>6}  {:>12} {:>6}  {:>8}  fleet\n",
        "mult", "cost $", "miss%", "base $", "miss%", "savings%"
    ));
    for p in &doc.points {
        let marker = if p.miss_rate > 0.0 { '*' } else { ' ' };
        let mix: Vec<String> = p
            .fleet
            .iter()
            .zip(&doc.instances)
            .filter(|(&n, _)| n > 0)
            .map(|(n, name)| format!("{n}x{name}"))
            .collect();
        out.push_str(&format!(
            "{:>5.2}{marker}  {:>12.6} {:>6.2}  {:>12.6} {:>6.2}  {:>8.2}  [{}]\n",
            p.deadline_mult,
            p.dollar_cost,
            p.miss_rate * 100.0,
            p.baseline_dollar_cost,
            p.baseline_miss_rate * 100.0,
            p.savings() * 100.0,
            mix.join(" "),
        ));
    }
    match doc.feasibility_knee() {
        Some(mult) => out
            .push_str(&format!("feasibility knee: zero misses from deadline multiplier {mult}\n")),
        None => out.push_str("feasibility knee: none (every point missed deadlines)\n"),
    }
    out.push_str(&format!(
        "encode proof: {} unique encodes  crc32 {}  {} bytes\n",
        doc.unique_encodes, doc.encode_crc32, doc.encoded_bytes
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"kind\":\"pareto\",\"version\":1,\"scenario\":\"live\",\"duration_secs\":8.0,",
        "\"offered_load\":4.0,\"seed\":7,\"jobs\":27,",
        "\"instances\":[\"x86-sw\",\"x86-qsv\"],",
        "\"unique_encodes\":13,\"encode_crc32\":57005,\"encoded_bytes\":999,\"points\":[",
        "{\"deadline_mult\":0.05,\"dollar_cost\":0.002,\"miss_rate\":0.25,",
        "\"baseline_dollar_cost\":0.001,\"baseline_miss_rate\":1.0,\"fleet\":[0,2]},",
        "{\"deadline_mult\":1.0,\"dollar_cost\":0.0008,\"miss_rate\":0.0,",
        "\"baseline_dollar_cost\":0.001,\"baseline_miss_rate\":0.0,\"fleet\":[1,0]}]}\n"
    );

    #[test]
    fn parses_the_sample_document() {
        let doc = ParetoDoc::parse(SAMPLE).expect("parses");
        assert_eq!(doc.scenario, "live");
        assert_eq!(doc.instances, vec!["x86-sw", "x86-qsv"]);
        assert_eq!(doc.points.len(), 2);
        assert_eq!(doc.points[0].fleet, vec![0, 2]);
        assert_eq!(doc.feasibility_knee(), Some(1.0));
        assert!((doc.points[1].savings() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn render_marks_missing_rows_and_is_deterministic() {
        let doc = ParetoDoc::parse(SAMPLE).expect("parses");
        let table = render_pareto(&doc);
        assert_eq!(table, render_pareto(&doc), "render must be deterministic");
        assert!(table.contains("0.05*"), "missing row is starred: {table}");
        assert!(table.contains("1.00 "), "clean row is not starred");
        assert!(table.contains("[2xx86-qsv]"), "zero-count entries are elided");
        assert!(table.contains("feasibility knee: zero misses from deadline multiplier 1"));
        assert!(table.contains("13 unique encodes"));
    }

    #[test]
    fn wrong_kind_version_and_truncation_are_parse_errors() {
        assert!(ParetoDoc::parse("{\"kind\":\"sat\",\"version\":1}").is_err());
        assert!(ParetoDoc::parse("{\"kind\":\"pareto\",\"version\":99}").is_err());
        let truncated = SAMPLE.replace(",\"points\":[", ",\"npoints\":[");
        assert!(ParetoDoc::parse(&truncated).is_err(), "missing points must not parse");
        let holed = SAMPLE.replace("\"miss_rate\":0.25,", "");
        assert!(ParetoDoc::parse(&holed).is_err(), "a point missing a field must not parse");
    }

    #[test]
    fn an_all_missing_frontier_reports_no_knee() {
        let missing = SAMPLE.replace("\"miss_rate\":0.0,", "\"miss_rate\":0.5,");
        let doc = ParetoDoc::parse(&missing).expect("parses");
        assert_eq!(doc.feasibility_knee(), None);
        assert!(render_pareto(&doc).contains("feasibility knee: none"));
    }
}
