//! The trace model: a vtrace JSONL stream parsed into typed records,
//! with merged multi-process streams split back into per-process
//! segments.
//!
//! A trace file is one or more *segments*, each introduced by a
//! `header` line: the base process first, then (in a dispatcher-merged
//! file) one rebased segment per worker. Every event is attributed to
//! the segment whose header most recently preceded it, which is the
//! only process identity a merged stream carries — span `thread` ids
//! and parent links are process-local, so all cross-event reasoning in
//! the analyses goes through [`Span::segment`] first.

use std::collections::BTreeMap;

use vtrace::json::{self, Value};

/// One stream header: a process's identity and timebase.
#[derive(Clone, Debug)]
pub struct Header {
    /// Wall-clock time of the process's trace epoch (µs since the Unix
    /// epoch).
    pub epoch_unix_us: u64,
    /// The emitting process's pid.
    pub pid: u64,
    /// Offset (µs) added to this segment's timestamps at merge time;
    /// zero for the base segment.
    pub rebased_offset_us: u64,
}

/// One completed span, attributed to its segment.
#[derive(Clone, Debug)]
pub struct Span {
    /// Span id (unique across the merged stream).
    pub id: u64,
    /// Parent span id; resolvable only within the same segment.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Originating thread (process-local dense id).
    pub thread: u64,
    /// Start, µs on the merged timebase.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Field annotations.
    pub fields: Vec<(String, Value)>,
    /// Index into [`Trace::headers`] of the owning segment.
    pub segment: usize,
}

impl Span {
    /// End time, µs on the merged timebase.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A numeric field as f64.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(Value::as_f64)
    }
}

/// One histogram summary line (the stream carries the derived stats,
/// not the buckets).
#[derive(Clone, Copy, Debug, Default)]
pub struct HistStats {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p95: u64,
    pub p99: u64,
}

/// A parsed trace: every record the stream carried, segment-attributed.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Stream headers in file order (base first).
    pub headers: Vec<Header>,
    /// All spans in file order.
    pub spans: Vec<Span>,
    /// Counter totals, merged across segments by summing.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries. A merged stream can carry one histogram
    /// line per process for the same name; later lines are folded in
    /// by count/sum addition and min/max widening (quantiles keep the
    /// largest segment's values — a conservative upper bound).
    pub histograms: BTreeMap<String, HistStats>,
}

/// Why a trace failed to parse into a model.
#[derive(Debug)]
pub enum ModelError {
    /// A line was not valid JSON.
    Json { line: usize, error: String },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Json { line, error } => write!(f, "line {line}: {error}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl Trace {
    /// Parses a JSONL trace stream. Strict on JSON (analysis built on a
    /// torn file would silently lie) but lenient on unknown kinds, so
    /// the model keeps working as the stream grows new record types.
    ///
    /// # Errors
    ///
    /// [`ModelError::Json`] on the first malformed line.
    pub fn parse(text: &str) -> Result<Trace, ModelError> {
        let mut trace = Trace::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line)
                .map_err(|e| ModelError::Json { line: lineno + 1, error: e.to_string() })?;
            let u = |key: &str| v.get(key).and_then(Value::as_u64);
            match v.get("kind").and_then(Value::as_str) {
                Some("header") => trace.headers.push(Header {
                    epoch_unix_us: u("epoch_unix_us").unwrap_or(0),
                    pid: u("pid").unwrap_or(0),
                    rebased_offset_us: u("rebased_offset_us").unwrap_or(0),
                }),
                Some("span") => {
                    let fields = match v.get("fields") {
                        Some(Value::Object(pairs)) => pairs.clone(),
                        _ => Vec::new(),
                    };
                    trace.spans.push(Span {
                        id: u("id").unwrap_or(0),
                        parent: v.get("parent").and_then(Value::as_u64),
                        name: v.get("name").and_then(Value::as_str).unwrap_or_default().to_string(),
                        thread: u("thread").unwrap_or(0),
                        start_us: u("start_us").unwrap_or(0),
                        dur_us: u("dur_us").unwrap_or(0),
                        fields,
                        segment: trace.headers.len().saturating_sub(1),
                    });
                }
                Some("counter") => {
                    if let (Some(name), Some(value)) =
                        (v.get("name").and_then(Value::as_str), u("value"))
                    {
                        *trace.counters.entry(name.to_string()).or_insert(0) += value;
                    }
                }
                Some("histogram") => {
                    if let Some(name) = v.get("name").and_then(Value::as_str) {
                        let stats = HistStats {
                            count: u("count").unwrap_or(0),
                            sum: u("sum").unwrap_or(0),
                            min: u("min").unwrap_or(0),
                            max: u("max").unwrap_or(0),
                            mean: v.get("mean").and_then(Value::as_f64).unwrap_or(0.0),
                            p50: u("p50").unwrap_or(0),
                            p90: u("p90").unwrap_or(0),
                            p95: u("p95").unwrap_or(0),
                            p99: u("p99").unwrap_or(0),
                        };
                        trace
                            .histograms
                            .entry(name.to_string())
                            .and_modify(|h| h.merge(stats))
                            .or_insert(stats);
                    }
                }
                _ => {}
            }
        }
        Ok(trace)
    }

    /// Reads and parses the trace at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file; [`ModelError`] stringified for
    /// malformed content.
    pub fn load(path: &std::path::Path) -> std::io::Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        Trace::parse(&text).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
        })
    }

    /// All spans named `name`, in file order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// The merged stream's overall time range `[min start, max end)`,
    /// µs; `None` for a spanless trace.
    pub fn time_range(&self) -> Option<(u64, u64)> {
        let start = self.spans.iter().map(|s| s.start_us).min()?;
        let end = self.spans.iter().map(Span::end_us).max()?;
        Some((start, end))
    }
}

impl HistStats {
    /// Folds another segment's summary of the same histogram into this
    /// one: counts and sums add, bounds widen, and the mean is
    /// re-derived; quantiles take the elementwise max — exact merging
    /// needs the buckets, which the stream does not carry, so the
    /// merged quantiles are a conservative upper bound.
    fn merge(&mut self, other: HistStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.mean = self.sum as f64 / self.count as f64;
        self.p50 = self.p50.max(other.p50);
        self.p90 = self.p90.max(other.p90);
        self.p95 = self.p95.max(other.p95);
        self.p99 = self.p99.max(other.p99);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MERGED: &str = "\
        {\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":100,\"pid\":10}\n\
        {\"kind\":\"span\",\"id\":1,\"parent\":null,\"name\":\"exec.dispatch\",\"thread\":0,\
         \"start_us\":0,\"dur_us\":500,\"fields\":{\"jobs\":2}}\n\
        {\"kind\":\"counter\",\"name\":\"exec.leases_granted\",\"value\":2}\n\
        {\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":150,\"pid\":11,\
         \"rebased_offset_us\":50}\n\
        {\"kind\":\"span\",\"id\":2,\"parent\":null,\"name\":\"transcode\",\"thread\":0,\
         \"start_us\":60,\"dur_us\":100,\"fields\":{\"encode_secs\":0.5}}\n\
        {\"kind\":\"counter\",\"name\":\"exec.leases_granted\",\"value\":3}\n\
        {\"kind\":\"histogram\",\"name\":\"w\",\"count\":2,\"sum\":20,\"min\":5,\"max\":15,\
         \"mean\":10.0,\"p50\":8,\"p90\":15,\"p95\":15,\"p99\":15}\n\
        {\"kind\":\"histogram\",\"name\":\"w\",\"count\":2,\"sum\":60,\"min\":10,\"max\":50,\
         \"mean\":30.0,\"p50\":16,\"p90\":32,\"p95\":64,\"p99\":64}\n";

    #[test]
    fn parses_segments_and_merges_counters() {
        let trace = Trace::parse(MERGED).expect("parses");
        assert_eq!(trace.headers.len(), 2);
        assert_eq!(trace.headers[1].rebased_offset_us, 50);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].segment, 0);
        assert_eq!(trace.spans[1].segment, 1);
        assert_eq!(trace.counters["exec.leases_granted"], 5);
        let w = trace.histograms["w"];
        assert_eq!((w.count, w.sum, w.min, w.max), (4, 80, 5, 50));
        assert_eq!(w.mean, 20.0);
        assert_eq!((w.p50, w.p99), (16, 64));
        assert_eq!(trace.time_range(), Some((0, 500)));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = Trace::parse("{\"kind\":\"span\"\n").expect_err("torn line");
        assert!(matches!(err, ModelError::Json { line: 1, .. }));
    }
}
