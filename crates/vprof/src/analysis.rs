//! Trace analyses: critical path, per-stage time attribution, wait
//! breakdowns, and the per-process utilization timeline.
//!
//! Everything here is a pure function of a parsed [`Trace`] — the
//! analyses return data and render to `String`s; nothing prints, so
//! the library composes into tests and other tools.
//!
//! **Critical path.** The batch's wall clock is bounded by whatever
//! chain of work finished last. On the merged, rebased timebase that
//! chain is found by taking the latest-ending *leaf* span and walking
//! its parent links (within its process segment) back to a root: each
//! hop is annotated with how much of the bound it accounts for. This
//! is the classic longest-path reading of a fork/join trace collapsed
//! to the one path that actually mattered.
//!
//! **Stage attribution.** Verbose traces carry one span per encode
//! stage per frame (`vcodec.motion_search`, `vcodec.transform_quant`,
//! `vcodec.entropy_coding`, `vcodec.deblock`); summing their durations
//! reproduces the paper's Table-5-style per-stage breakdown. Summary
//! traces have no stage spans, so attribution degrades to the
//! `transcode` spans' `encode_secs` totals.

use std::collections::BTreeMap;

use crate::model::{HistStats, Span, Trace};

/// The encoder stage span names, in pipeline order.
pub const STAGE_SPANS: [&str; 4] =
    ["vcodec.motion_search", "vcodec.transform_quant", "vcodec.entropy_coding", "vcodec.deblock"];

/// The wait/latency histograms worth breaking down, in render order.
const WAIT_HISTOGRAMS: [&str; 5] = [
    "farm.queue_wait_us",
    "farm.backoff_wait_us",
    "journal.fsync_us",
    "frame.pull_wait_us",
    "fleet.sim_wait_us",
];

/// One hop of the critical path, leaf-ward.
#[derive(Clone, Debug)]
pub struct PathHop {
    /// Span name.
    pub name: String,
    /// Owning process pid (0 when the trace has no headers).
    pub pid: u64,
    /// Start on the merged timebase, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

/// Per-stage attribution totals.
#[derive(Clone, Debug, Default)]
pub struct StageBreakdown {
    /// Summed duration per stage span name, µs.
    pub stage_us: BTreeMap<String, u64>,
    /// Stage span counts (one per frame per stage in verbose traces).
    pub stage_counts: BTreeMap<String, u64>,
    /// Total `encode_secs` across `transcode` spans.
    pub encode_secs: f64,
    /// Number of `transcode` spans.
    pub transcodes: u64,
}

impl StageBreakdown {
    /// Sum of all stage durations, in seconds.
    pub fn stage_secs_total(&self) -> f64 {
        self.stage_us.values().sum::<u64>() as f64 / 1e6
    }
}

/// One process's utilization over the batch.
#[derive(Clone, Debug)]
pub struct ProcessUtilization {
    /// The process pid (from its segment header).
    pub pid: u64,
    /// Busy fraction per timeline bucket, 0.0..=1.0.
    pub buckets: Vec<f64>,
    /// Overall busy fraction across the trace's time range.
    pub busy: f64,
}

/// The coordinator spans that wrap work rather than being work.
const COORDINATOR_SPANS: [&str; 4] = ["exec.dispatch", "exec.worker", "farm.batch", "farm.worker"];

/// Computes the critical path: the chain of spans ending at whatever
/// *work* finished last, root first. The leaf is the latest-ending
/// `transcode` span when any exist (a batch's wall clock is bounded by
/// its last encode, not by the coordinator span that merely waits for
/// it), otherwise the latest-ending span overall. Parent links are
/// walked within the leaf's process segment; since encode threads root
/// their spans independently, the walk then prepends the tightest
/// coordinator span whose interval contains the chain — the
/// worker/dispatcher that was blocked on this work. Empty for a
/// spanless trace.
pub fn critical_path(trace: &Trace) -> Vec<PathHop> {
    let last_transcode = trace.spans_named("transcode").max_by_key(|s| (s.end_us(), s.id));
    let Some(leaf) =
        last_transcode.or_else(|| trace.spans.iter().max_by_key(|s| (s.end_us(), s.id)))
    else {
        return Vec::new();
    };
    // Parent links only resolve within the leaf's segment; build the
    // id→span map once over that segment.
    let by_id: BTreeMap<u64, &Span> =
        trace.spans.iter().filter(|s| s.segment == leaf.segment).map(|s| (s.id, s)).collect();
    let mut chain = vec![leaf];
    let mut cursor = leaf;
    while let Some(parent) = cursor.parent.and_then(|p| by_id.get(&p)) {
        chain.push(parent);
        cursor = parent;
    }
    let root = *chain.last().expect("chain is non-empty");
    if !COORDINATOR_SPANS.contains(&root.name.as_str()) {
        // The chain roots at a bare work span (cross-thread spans don't
        // parent-link); attribute it to the tightest enclosing
        // coordinator by time containment.
        let container = trace
            .spans
            .iter()
            .filter(|s| {
                s.segment == leaf.segment
                    && COORDINATOR_SPANS.contains(&s.name.as_str())
                    && s.start_us <= root.start_us
                    && s.end_us() >= root.end_us()
            })
            .min_by_key(|s| (s.dur_us, s.id));
        if let Some(container) = container {
            chain.push(container);
        }
    }
    chain.reverse();
    let pid = trace.headers.get(leaf.segment).map_or(0, |h| h.pid);
    chain
        .into_iter()
        .map(|s| PathHop { name: s.name.clone(), pid, start_us: s.start_us, dur_us: s.dur_us })
        .collect()
}

/// Computes the per-stage attribution (see module docs).
pub fn stage_breakdown(trace: &Trace) -> StageBreakdown {
    let mut out = StageBreakdown::default();
    for span in &trace.spans {
        if STAGE_SPANS.contains(&span.name.as_str()) {
            *out.stage_us.entry(span.name.clone()).or_insert(0) += span.dur_us;
            *out.stage_counts.entry(span.name.clone()).or_insert(0) += 1;
        } else if span.name == "transcode" {
            out.transcodes += 1;
            out.encode_secs += span.field_f64("encode_secs").unwrap_or(0.0);
        }
    }
    out
}

/// The wait histograms present in the trace, in render order.
pub fn wait_breakdown(trace: &Trace) -> Vec<(String, HistStats)> {
    WAIT_HISTOGRAMS
        .iter()
        .filter_map(|name| trace.histograms.get(*name).map(|h| (name.to_string(), *h)))
        .collect()
}

/// Per-process utilization over `buckets` timeline buckets: the busy
/// fraction is the overlap of the process's `transcode` spans with
/// each bucket (overlapping spans on different threads saturate at
/// 100% rather than double-count).
pub fn utilization(trace: &Trace, buckets: usize) -> Vec<ProcessUtilization> {
    let Some((t0, t1)) = trace.time_range() else { return Vec::new() };
    let width = (t1 - t0).max(1);
    let buckets = buckets.max(1);
    let mut out = Vec::new();
    let segments = trace.headers.len().max(1);
    for segment in 0..segments {
        // Busy intervals: transcode spans of this process, merged.
        let mut intervals: Vec<(u64, u64)> = trace
            .spans
            .iter()
            .filter(|s| s.segment == segment && s.name == "transcode")
            .map(|s| (s.start_us, s.end_us()))
            .collect();
        if intervals.is_empty() {
            continue;
        }
        intervals.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (start, end) in intervals {
            match merged.last_mut() {
                Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
                _ => merged.push((start, end)),
            }
        }
        let overlap = |lo: u64, hi: u64| -> u64 {
            merged.iter().map(|&(s, e)| e.min(hi).saturating_sub(s.max(lo))).sum()
        };
        let bucket_fracs: Vec<f64> = (0..buckets)
            .map(|i| {
                let lo = t0 + width * i as u64 / buckets as u64;
                let hi = t0 + width * (i as u64 + 1) / buckets as u64;
                if hi <= lo {
                    return 0.0;
                }
                overlap(lo, hi) as f64 / (hi - lo) as f64
            })
            .collect();
        out.push(ProcessUtilization {
            pid: trace.headers.get(segment).map_or(0, |h| h.pid),
            busy: overlap(t0, t1) as f64 / width as f64,
            buckets: bucket_fracs,
        });
    }
    out
}

/// Renders the full human-readable report: overview, critical path,
/// stage attribution, waits, utilization.
pub fn render_report(trace: &Trace) -> String {
    let mut out = String::new();
    let (t0, t1) = trace.time_range().unwrap_or((0, 0));
    out.push_str(&format!(
        "trace: {} process(es), {} spans, wall {:.3} s\n",
        trace.headers.len().max(1),
        trace.spans.len(),
        (t1 - t0) as f64 / 1e6,
    ));
    for key in ["exec.jobs_completed", "exec.leases_granted", "exec.leases_expired"] {
        if let Some(v) = trace.counters.get(key) {
            out.push_str(&format!("  {key} = {v}\n"));
        }
    }

    let path = critical_path(trace);
    if !path.is_empty() {
        out.push_str("\n── critical path (latest-ending chain) ──────────\n");
        for hop in &path {
            out.push_str(&format!(
                "  {:<28} pid {:<8} start {:>10} µs  dur {:>10} µs\n",
                hop.name, hop.pid, hop.start_us, hop.dur_us
            ));
        }
    }

    let stages = stage_breakdown(trace);
    out.push_str("\n── stage attribution ────────────────────────────\n");
    out.push_str(&format!(
        "  {} transcode span(s), {:.3} s encode time\n",
        stages.transcodes, stages.encode_secs
    ));
    if stages.stage_us.is_empty() {
        out.push_str("  (no per-stage spans — record with --log-level verbose)\n");
    } else {
        let total = stages.stage_secs_total().max(1e-12);
        for name in STAGE_SPANS {
            let Some(us) = stages.stage_us.get(name) else { continue };
            let secs = *us as f64 / 1e6;
            out.push_str(&format!(
                "  {:<24} {:>10.3} s  {:>5.1}%  ({} spans)\n",
                name,
                secs,
                100.0 * secs / total,
                stages.stage_counts.get(name).copied().unwrap_or(0),
            ));
        }
    }

    let waits = wait_breakdown(trace);
    if !waits.is_empty() {
        out.push_str("\n── waits & latencies (µs) ───────────────────────\n");
        for (name, h) in &waits {
            out.push_str(&format!(
                "  {:<24} count {:>7}  mean {:>9.1}  p50 {:>7}  p95 {:>7}  p99 {:>7}  max {:>7}\n",
                name, h.count, h.mean, h.p50, h.p95, h.p99, h.max
            ));
        }
    }

    let util = utilization(trace, 40);
    if !util.is_empty() {
        out.push_str("\n── per-process utilization (transcode busy) ─────\n");
        for u in &util {
            let bar: String = u
                .buckets
                .iter()
                .map(|f| match (f * 4.0).round() as u32 {
                    0 => ' ',
                    1 => '░',
                    2 => '▒',
                    3 => '▓',
                    _ => '█',
                })
                .collect();
            out.push_str(&format!("  pid {:<8} |{bar}| {:>5.1}%\n", u.pid, u.busy * 100.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let text = "\
            {\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":0,\"pid\":1}\n\
            {\"kind\":\"span\",\"id\":3,\"parent\":1,\"name\":\"vcodec.motion_search\",\
             \"thread\":0,\"start_us\":10,\"dur_us\":30,\"fields\":{}}\n\
            {\"kind\":\"span\",\"id\":4,\"parent\":1,\"name\":\"vcodec.deblock\",\
             \"thread\":0,\"start_us\":40,\"dur_us\":10,\"fields\":{}}\n\
            {\"kind\":\"span\",\"id\":1,\"parent\":2,\"name\":\"transcode\",\"thread\":0,\
             \"start_us\":0,\"dur_us\":100,\"fields\":{\"encode_secs\":0.0001}}\n\
            {\"kind\":\"span\",\"id\":2,\"parent\":null,\"name\":\"farm.batch\",\"thread\":0,\
             \"start_us\":0,\"dur_us\":120,\"fields\":{}}\n";
        Trace::parse(text).expect("parses")
    }

    #[test]
    fn critical_path_prefers_last_transcode() {
        let path = critical_path(&trace());
        let names: Vec<&str> = path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["farm.batch", "transcode"]);
    }

    #[test]
    fn critical_path_attaches_unparented_work_to_its_coordinator() {
        // transcode roots itself (cross-thread, no parent link) but the
        // worker span's interval contains it.
        let text = "\
            {\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":0,\"pid\":7}\n\
            {\"kind\":\"span\",\"id\":2,\"parent\":null,\"name\":\"transcode\",\"thread\":1,\
             \"start_us\":20,\"dur_us\":60,\"fields\":{}}\n\
            {\"kind\":\"span\",\"id\":1,\"parent\":null,\"name\":\"exec.worker\",\"thread\":0,\
             \"start_us\":0,\"dur_us\":100,\"fields\":{}}\n";
        let path = critical_path(&Trace::parse(text).expect("parses"));
        let names: Vec<&str> = path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["exec.worker", "transcode"]);
    }

    #[test]
    fn critical_path_through_parents() {
        let text = "\
            {\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":0,\"pid\":1}\n\
            {\"kind\":\"span\",\"id\":2,\"parent\":1,\"name\":\"transcode\",\"thread\":0,\
             \"start_us\":50,\"dur_us\":100,\"fields\":{}}\n\
            {\"kind\":\"span\",\"id\":1,\"parent\":null,\"name\":\"farm.batch\",\"thread\":0,\
             \"start_us\":0,\"dur_us\":120,\"fields\":{}}\n";
        let path = critical_path(&Trace::parse(text).expect("parses"));
        let names: Vec<&str> = path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["farm.batch", "transcode"]);
    }

    #[test]
    fn stage_breakdown_sums_stage_spans() {
        let b = stage_breakdown(&trace());
        assert_eq!(b.stage_us["vcodec.motion_search"], 30);
        assert_eq!(b.stage_us["vcodec.deblock"], 10);
        assert_eq!(b.transcodes, 1);
        assert!((b.encode_secs - 0.0001).abs() < 1e-12);
        assert!(b.stage_secs_total() <= b.encode_secs + 1e-12);
    }

    #[test]
    fn utilization_reports_busy_fraction() {
        let util = utilization(&trace(), 4);
        assert_eq!(util.len(), 1);
        // transcode covers 100 of 120 µs.
        assert!((util[0].busy - 100.0 / 120.0).abs() < 1e-9, "{}", util[0].busy);
        assert_eq!(util[0].buckets.len(), 4);
    }

    #[test]
    fn report_renders_every_section() {
        let text = render_report(&trace());
        for needle in ["critical path", "stage attribution", "transcode span(s)"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
