//! The unified transcode engine.
//!
//! Every experiment in the reproduction is, at bottom, "run *some*
//! encoder against *some* rate policy and measure the result". Before
//! this module existed, each table hand-rolled that loop: software
//! encodes called [`vcodec::encode`] directly, hardware rows called the
//! [`vhw`] model, and the bitrate-bisection-to-quality-target methodology
//! of Section 5.3 was duplicated per table. The engine folds all of it
//! behind one object-safe trait:
//!
//! * [`TranscodeRequest`] names the *what*: a [`Backend`] (software codec
//!   family or hardware vendor), an effort preset, a [`RateMode`]
//!   (including the paper's quality-target bisection), and the ablation
//!   knobs the encoder exposes (GOP, B frames, deblocking, entropy
//!   backend).
//! * [`Transcoder::transcode`] executes a request and returns a
//!   [`TranscodeOutcome`]: the bitstream + reconstruction, a ready-made
//!   [`Measurement`], stage timings, and the bitrate the rate policy
//!   settled on.
//! * [`TranscodeError`] replaces the panics of the direct paths with
//!   typed errors (empty sources, zero bitrates, unreachable quality
//!   targets, invalid measurements).
//!
//! [`SoftwareEngine`] and [`HardwareEngine`] are the two backend
//! implementations; [`Engine`] dispatches on the request's backend and is
//! what scenario drivers, the transcode farm, the ABR ladder, and the CLI
//! all consume. The engine reproduces the pre-existing direct paths
//! *exactly* — same encoder configurations, same bisection constants —
//! so every table keeps its values (`tests/engine_equivalence.rs` pins
//! this).

use std::cell::Cell;

use crate::measure::{source_bpps, stream_bpps, InvalidMeasurement, Measurement};
use vcodec::entropy::EntropyBackend;
use vcodec::{CodecFamily, EncodeError, EncodeOutput, EncoderConfig, Preset, RateControl};
use vframe::metrics::psnr_video;
use vframe::source::{collect_video, FrameSource};
use vframe::Video;
use vhw::{bisect_bitrate, HwEncoder, HwVendor, StageSeconds};

/// Bisection probes on the software quality-target path (Table 5's
/// methodology: 8 two-pass probes per clip).
pub const SOFTWARE_BISECT_ITERS: u32 = 8;

/// Which encoder implementation executes a request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Backend {
    /// The software encoder with the given codec tool-set family
    /// (libx264 / libx265 / libvpx-vp9 / libaom class).
    Software(CodecFamily),
    /// A fixed-function hardware encoder model (NVENC / QSV class).
    Hardware(HwVendor),
}

impl Backend {
    /// Display name ("AVC-class", "NVENC", …).
    pub fn name(&self) -> String {
        match self {
            Backend::Software(family) => family.to_string(),
            Backend::Hardware(vendor) => vendor.name().to_string(),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Rate-control policy for a request.
///
/// The first three mirror [`vcodec::RateControl`]; `QualityTarget` is the
/// paper's tuning methodology (Section 5.3): bisect the target bitrate
/// until the encode matches a reference quality "by a small margin".
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RateMode {
    /// Constant rate factor (single pass).
    ConstQuality {
        /// CRF value on the QP scale.
        crf: f64,
    },
    /// Fixed bitrate, single pass.
    Bitrate {
        /// Target bits per second.
        bps: u64,
    },
    /// Fixed bitrate with a first analysis pass. Software only: the
    /// modelled ASICs implement single-pass rate control.
    TwoPassBitrate {
        /// Target bits per second.
        bps: u64,
    },
    /// Bisect the bitrate in `[lo_bps, hi_bps]` until quality reaches
    /// `target_db`. Software probes two-pass encodes
    /// ([`SOFTWARE_BISECT_ITERS`] iterations, Table 5); hardware probes
    /// its single-pass mode (12 iterations, Tables 3/4).
    QualityTarget {
        /// Quality target in dB YCbCr PSNR.
        target_db: f64,
        /// Lower bitrate bound (bits/s).
        lo_bps: u64,
        /// Upper bitrate bound (bits/s).
        hi_bps: u64,
        /// Bitrate to encode at when even `hi_bps` misses the target
        /// (the tables fall back to the ladder rate); `None` surfaces
        /// [`TranscodeError::UnreachableTarget`] instead.
        fallback_bps: Option<u64>,
    },
}

impl RateMode {
    /// Short mode name used in telemetry ("crf", "cbr", "2pass", "qtarget").
    pub fn name(&self) -> &'static str {
        match self {
            RateMode::ConstQuality { .. } => "crf",
            RateMode::Bitrate { .. } => "cbr",
            RateMode::TwoPassBitrate { .. } => "2pass",
            RateMode::QualityTarget { .. } => "qtarget",
        }
    }
}

impl From<RateControl> for RateMode {
    fn from(rate: RateControl) -> RateMode {
        match rate {
            RateControl::ConstQuality { crf } => RateMode::ConstQuality { crf },
            RateControl::Bitrate { bps } => RateMode::Bitrate { bps },
            RateControl::TwoPassBitrate { bps } => RateMode::TwoPassBitrate { bps },
        }
    }
}

/// One transcode to perform: backend, effort, rate policy, and encoder
/// knobs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TranscodeRequest {
    /// Executing backend.
    pub backend: Backend,
    /// Effort preset. Hardware backends ignore it: an ASIC's tool set is
    /// fixed at tape-out.
    pub preset: Preset,
    /// Rate-control policy.
    pub rate: RateMode,
    /// Keyframe interval in frames.
    pub gop: u32,
    /// Insert one B frame between consecutive references (software only).
    pub bframes: bool,
    /// In-loop deblocking filter (on by default).
    pub deblock: bool,
    /// Entropy-backend override for ablations.
    pub entropy_override: Option<EntropyBackend>,
    /// Resident-frame cap for [`Transcoder::transcode_stream`]: the most
    /// frames (source + reconstruction) the streaming path may hold at
    /// once. `None` accepts the configuration's structural minimum
    /// ([`vcodec::required_window`]); the in-memory [`Transcoder::transcode`]
    /// path ignores it.
    pub stream_window: Option<usize>,
}

impl TranscodeRequest {
    /// A request with the default encoder knobs (GOP 60, no B frames,
    /// deblocking on, family-default entropy backend).
    pub fn new(backend: Backend, preset: Preset, rate: RateMode) -> TranscodeRequest {
        TranscodeRequest {
            backend,
            preset,
            rate,
            gop: 60,
            bframes: false,
            deblock: true,
            entropy_override: None,
            stream_window: None,
        }
    }

    /// A software request.
    pub fn software(family: CodecFamily, preset: Preset, rate: RateMode) -> TranscodeRequest {
        TranscodeRequest::new(Backend::Software(family), preset, rate)
    }

    /// A hardware request (the preset is fixed by the ASIC model).
    pub fn hardware(vendor: HwVendor, rate: RateMode) -> TranscodeRequest {
        TranscodeRequest::new(Backend::Hardware(vendor), Preset::Fast, rate)
    }

    /// A software request reproducing an existing [`EncoderConfig`]
    /// verbatim (every knob carried over).
    pub fn from_config(config: &EncoderConfig) -> TranscodeRequest {
        TranscodeRequest {
            backend: Backend::Software(config.family),
            preset: config.preset,
            rate: config.rate.into(),
            gop: config.gop,
            bframes: config.bframes,
            deblock: config.in_loop_deblock,
            entropy_override: config.entropy_override,
            stream_window: None,
        }
    }

    /// Overrides the keyframe interval.
    pub fn with_gop(mut self, gop: u32) -> TranscodeRequest {
        self.gop = gop;
        self
    }

    /// Enables B frames.
    pub fn with_bframes(mut self) -> TranscodeRequest {
        self.bframes = true;
        self
    }

    /// Disables the in-loop deblocking filter.
    pub fn without_deblock(mut self) -> TranscodeRequest {
        self.deblock = false;
        self
    }

    /// Forces an entropy backend.
    pub fn with_entropy_backend(mut self, backend: EntropyBackend) -> TranscodeRequest {
        self.entropy_override = Some(backend);
        self
    }

    /// Caps the streaming path's resident-frame window (see
    /// [`TranscodeRequest::stream_window`]).
    pub fn with_window(mut self, window: usize) -> TranscodeRequest {
        self.stream_window = Some(window);
        self
    }

    /// The software encoder configuration this request's knobs describe
    /// for `family` under `rate`.
    fn encoder_config(&self, family: CodecFamily, rate: RateControl) -> EncoderConfig {
        let mut cfg = EncoderConfig::new(family, self.preset, rate).with_gop(self.gop);
        if self.bframes {
            cfg = cfg.with_bframes();
        }
        if !self.deblock {
            cfg = cfg.without_deblock();
        }
        if let Some(backend) = self.entropy_override {
            cfg = cfg.with_entropy_backend(backend);
        }
        cfg
    }
}

/// A completed transcode.
#[derive(Clone, Debug)]
pub struct TranscodeOutcome {
    /// Bitstream, reconstruction, and work statistics.
    pub output: EncodeOutput,
    /// The transcode's position in speed / bitrate / quality space.
    /// Software speed is measured wall time; hardware speed is the
    /// pipeline model's throughput.
    pub measurement: Measurement,
    /// Where the wall-clock time goes. Software encodes charge everything
    /// to the pipeline stage; hardware splits submission / PCIe transfer /
    /// pipeline per its model.
    pub timings: StageSeconds,
    /// The bitrate the rate policy operated at: the requested rate for
    /// fixed-bitrate modes, the bisected (or fallback) rate for
    /// [`RateMode::QualityTarget`], `None` for constant quality.
    pub chosen_bps: Option<u64>,
}

/// A completed *streaming* transcode. Unlike [`TranscodeOutcome`] there
/// is no reconstruction clip — the bounded pipeline dropped every frame
/// the moment it stopped being referenceable — so the raw encode fields
/// (bitstream, stats) are carried directly, plus the peak frame
/// residency the encode actually reached.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// The bitstream; byte-identical to the in-memory path's for the
    /// same source content and request.
    pub bytes: Vec<u8>,
    /// Work and timing statistics.
    pub stats: vcodec::EncodeStats,
    /// The transcode's position in speed / bitrate / quality space.
    /// Bitrate and quality are bit-identical to the in-memory path's.
    pub measurement: Measurement,
    /// Where the wall-clock time goes (see [`TranscodeOutcome::timings`]).
    pub timings: StageSeconds,
    /// The bitrate the rate policy operated at (see
    /// [`TranscodeOutcome::chosen_bps`]).
    pub chosen_bps: Option<u64>,
    /// The most frames simultaneously resident at any point in the
    /// request, including bisection probes. Bounded by
    /// [`vcodec::required_window`] on the software streaming path; equal
    /// to the clip length on backends that materialize.
    pub peak_resident_frames: usize,
}

/// Why a transcode could not produce a valid outcome.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TranscodeError {
    /// The underlying encoder rejected its input.
    Encode(EncodeError),
    /// An axis of the resulting measurement was non-positive or
    /// non-finite.
    InvalidMeasurement(InvalidMeasurement),
    /// A [`RateMode::QualityTarget`] without a fallback could not reach
    /// its target within the bitrate bounds.
    UnreachableTarget {
        /// The quality target in dB.
        target_db: f64,
        /// The bitrate ceiling that still missed it (bits/s).
        hi_bps: u64,
    },
    /// The backend does not implement the requested rate mode (e.g.
    /// two-pass rate control on a single-pass ASIC).
    UnsupportedRate {
        /// Backend display name.
        backend: &'static str,
        /// Human-readable mode name.
        mode: &'static str,
    },
    /// A request was routed to an engine for the other backend kind.
    BackendMismatch {
        /// The engine that received the request.
        engine: &'static str,
    },
    /// A fault-injection plan failed this attempt on purpose (see
    /// [`vfault::FaultPlan`] and [`crate::resilience`]).
    Injected(vfault::InjectedFault),
}

impl TranscodeError {
    /// True for failures worth retrying: the transient class. Injected
    /// permanent faults and structurally invalid requests (unsupported
    /// rate modes, backend mismatches, zero bitrates) fail the same way
    /// on every attempt, so retrying them only burns fleet time.
    pub fn is_retryable(&self) -> bool {
        match self {
            TranscodeError::Injected(f) => f.kind != vfault::FaultKind::Permanent,
            TranscodeError::Encode(_)
            | TranscodeError::UnsupportedRate { .. }
            | TranscodeError::BackendMismatch { .. }
            | TranscodeError::UnreachableTarget { .. }
            | TranscodeError::InvalidMeasurement(_) => false,
        }
    }
}

impl std::fmt::Display for TranscodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranscodeError::Encode(e) => write!(f, "encode failed: {e}"),
            TranscodeError::InvalidMeasurement(e) => write!(f, "invalid measurement: {e}"),
            TranscodeError::UnreachableTarget { target_db, hi_bps } => {
                write!(f, "quality target {target_db:.2} dB unreachable even at {hi_bps} bit/s")
            }
            TranscodeError::UnsupportedRate { backend, mode } => {
                write!(f, "{backend} does not implement {mode} rate control")
            }
            TranscodeError::BackendMismatch { engine } => {
                write!(f, "request routed to the {engine} engine for the wrong backend")
            }
            TranscodeError::Injected(fault) => fault.fmt(f),
        }
    }
}

impl std::error::Error for TranscodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TranscodeError::Encode(e) => Some(e),
            TranscodeError::InvalidMeasurement(e) => Some(e),
            TranscodeError::Injected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for TranscodeError {
    fn from(e: EncodeError) -> TranscodeError {
        TranscodeError::Encode(e)
    }
}

impl From<InvalidMeasurement> for TranscodeError {
    fn from(e: InvalidMeasurement) -> TranscodeError {
        TranscodeError::InvalidMeasurement(e)
    }
}

/// Anything that can execute a [`TranscodeRequest`]. Object safe and
/// `Sync` so the transcode farm can share one engine across worker
/// threads (`&dyn Transcoder` / `Box<dyn Transcoder>`).
pub trait Transcoder: Sync {
    /// Runs one transcode.
    fn transcode(
        &self,
        src: &Video,
        req: &TranscodeRequest,
    ) -> Result<TranscodeOutcome, TranscodeError>;

    /// Runs one transcode by *pulling* frames from a source instead of
    /// holding the whole clip. Results are byte- and value-identical to
    /// [`Transcoder::transcode`] on the materialized clip; only the
    /// memory profile differs.
    ///
    /// The default implementation materializes the source and delegates,
    /// so every [`Transcoder`] supports streaming requests (with
    /// `peak_resident_frames` equal to the clip length). Backends with a
    /// real streaming path — [`SoftwareEngine`] — override it to keep
    /// residency bounded by [`vcodec::required_window`].
    fn transcode_stream(
        &self,
        src: &mut dyn FrameSource,
        req: &TranscodeRequest,
    ) -> Result<StreamOutcome, TranscodeError> {
        let video = collect_video(src);
        let peak = video.len();
        let outcome = self.transcode(&video, req)?;
        Ok(StreamOutcome {
            bytes: outcome.output.bytes,
            stats: outcome.output.stats,
            measurement: outcome.measurement,
            timings: outcome.timings,
            chosen_bps: outcome.chosen_bps,
            peak_resident_frames: peak,
        })
    }
}

/// Opens the per-request telemetry span every leaf engine emits, tagged
/// with the request shape. The closing fields (frames, bits, seconds,
/// PSNR) are recorded by [`finish_transcode_span`] on success.
fn open_transcode_span(src: &Video, req: &TranscodeRequest) -> vtrace::SpanGuard {
    open_request_span(src.len(), req)
}

/// [`open_transcode_span`] from source metadata alone, for the streaming
/// path where no [`Video`] exists.
fn open_request_span(frames: usize, req: &TranscodeRequest) -> vtrace::SpanGuard {
    let mut span = vtrace::span("transcode");
    if span.id().is_some() {
        span.record(
            "backend",
            match req.backend {
                Backend::Software(_) => "software",
                Backend::Hardware(_) => "hardware",
            },
        );
        span.record("codec", req.backend.name());
        span.record("preset", req.preset.to_string());
        span.record("rate_mode", req.rate.name());
        span.record("frames", frames);
        vtrace::counter("engine.requests", 1);
    }
    span
}

/// Records the outcome side of the `transcode` span. `encode_secs` is the
/// request's total stage time ([`StageSeconds::total`]) so that summing
/// span-recorded seconds reproduces the farm's `cpu_secs` exactly.
fn finish_transcode_span(
    span: &mut vtrace::SpanGuard,
    outcome: &TranscodeOutcome,
    chosen_bps: Option<u64>,
) {
    span.record("bits", (outcome.output.bytes.len() as u64) * 8);
    span.record("encode_secs", outcome.timings.total());
    span.record("psnr_db", outcome.measurement.quality_db);
    if let Some(bps) = chosen_bps {
        span.record("chosen_bps", bps);
    }
    vtrace::counter("engine.frames_encoded", outcome.output.stats.frames as u64);
}

/// [`finish_transcode_span`] for the streaming path.
fn finish_stream_span(span: &mut vtrace::SpanGuard, outcome: &StreamOutcome) {
    span.record("bits", (outcome.bytes.len() as u64) * 8);
    span.record("encode_secs", outcome.timings.total());
    span.record("psnr_db", outcome.measurement.quality_db);
    span.record("peak_resident_frames", outcome.peak_resident_frames);
    if let Some(bps) = outcome.chosen_bps {
        span.record("chosen_bps", bps);
    }
    vtrace::counter("engine.frames_encoded", outcome.stats.frames as u64);
}

/// Builds the outcome measurement through the checked constructor so the
/// engine path never panics on degenerate axes.
fn outcome_measurement(
    src: &Video,
    output: &EncodeOutput,
    speed_pps: f64,
) -> Result<Measurement, TranscodeError> {
    Ok(Measurement::try_new(
        speed_pps,
        stream_bpps(src, output.bytes.len()),
        psnr_video(src, &output.recon),
    )?)
}

/// The software backend: runs [`vcodec`] with the requested family,
/// preset, and knobs. Speed is measured wall time, so it is the one
/// nondeterministic axis; bitstream, bitrate, and quality are exactly
/// reproducible.
#[derive(Clone, Copy, Default, Debug)]
pub struct SoftwareEngine;

impl Transcoder for SoftwareEngine {
    fn transcode(
        &self,
        src: &Video,
        req: &TranscodeRequest,
    ) -> Result<TranscodeOutcome, TranscodeError> {
        let Backend::Software(family) = req.backend else {
            return Err(TranscodeError::BackendMismatch { engine: "software" });
        };
        let mut span = open_transcode_span(src, req);
        let (rate, chosen_bps) = match req.rate {
            RateMode::ConstQuality { crf } => (RateControl::ConstQuality { crf }, None),
            RateMode::Bitrate { bps } => (RateControl::Bitrate { bps }, Some(bps)),
            RateMode::TwoPassBitrate { bps } => (RateControl::TwoPassBitrate { bps }, Some(bps)),
            RateMode::QualityTarget { target_db, lo_bps, hi_bps, fallback_bps } => {
                // Table 5's loop: probe two-pass encodes until quality
                // matches the reference, fall back to the ladder rate.
                let found = bisect_bitrate(lo_bps, hi_bps, target_db, SOFTWARE_BISECT_ITERS, |b| {
                    let cfg = req.encoder_config(family, RateControl::TwoPassBitrate { bps: b });
                    psnr_video(src, &vcodec::encode(src, &cfg).recon)
                });
                let bps = match found {
                    Some(r) => r.bitrate_bps,
                    None => fallback_bps
                        .ok_or(TranscodeError::UnreachableTarget { target_db, hi_bps })?,
                };
                (RateControl::TwoPassBitrate { bps }, Some(bps))
            }
        };
        let output = vcodec::try_encode(src, &req.encoder_config(family, rate))?;
        let speed = output.stats.pixels_per_second(src.total_pixels());
        let measurement = outcome_measurement(src, &output, speed)?;
        let timings =
            StageSeconds { submission: 0.0, transfer: 0.0, pipeline: output.stats.encode_seconds };
        let outcome = TranscodeOutcome { output, measurement, timings, chosen_bps };
        finish_transcode_span(&mut span, &outcome, chosen_bps);
        Ok(outcome)
    }

    fn transcode_stream(
        &self,
        src: &mut dyn FrameSource,
        req: &TranscodeRequest,
    ) -> Result<StreamOutcome, TranscodeError> {
        let Backend::Software(family) = req.backend else {
            return Err(TranscodeError::BackendMismatch { engine: "software" });
        };
        let mut span = open_request_span(src.len(), req);
        let window = req.stream_window;
        // Validate the window up front: bisection probes run before the
        // final encode, and their failure mode is a panic (matching the
        // in-memory probe path), so a structurally undersized window must
        // surface as a typed error first.
        if let Some(w) = window {
            let probe_cfg = req.encoder_config(family, RateControl::ConstQuality { crf: 30.0 });
            let required = vcodec::required_window(&probe_cfg);
            if w < required {
                return Err(EncodeError::WindowTooSmall { required, window: w }.into());
            }
        }
        if src.is_empty() {
            return Err(EncodeError::EmptySource.into());
        }
        // Peak residency across every encode the request runs, probes
        // included — the figure the `encode.peak_resident_frames` gauge
        // and the farm summary report.
        let probe_peak = Cell::new(0usize);
        let (rate, chosen_bps) = match req.rate {
            RateMode::ConstQuality { crf } => (RateControl::ConstQuality { crf }, None),
            RateMode::Bitrate { bps } => (RateControl::Bitrate { bps }, Some(bps)),
            RateMode::TwoPassBitrate { bps } => (RateControl::TwoPassBitrate { bps }, Some(bps)),
            RateMode::QualityTarget { target_db, lo_bps, hi_bps, fallback_bps } => {
                // Table 5's loop, re-pulling the source per probe: each
                // probe is a fresh bounded two-pass encode, so the
                // bisection never needs the clip resident either. The
                // probe's streaming PSNR is bit-identical to the
                // in-memory `psnr_video`, so the bisected bitrate is too.
                let found = bisect_bitrate(lo_bps, hi_bps, target_db, SOFTWARE_BISECT_ITERS, |b| {
                    let cfg = req.encoder_config(family, RateControl::TwoPassBitrate { bps: b });
                    src.reset();
                    let probe =
                        vcodec::encode_stream(src, &cfg, window).expect("validated stream probe");
                    probe_peak.set(probe_peak.get().max(probe.peak_resident_frames));
                    probe.quality_db
                });
                let bps = match found {
                    Some(r) => r.bitrate_bps,
                    None => fallback_bps
                        .ok_or(TranscodeError::UnreachableTarget { target_db, hi_bps })?,
                };
                (RateControl::TwoPassBitrate { bps }, Some(bps))
            }
        };
        src.reset();
        let out = vcodec::encode_stream(src, &req.encoder_config(family, rate), window)?;
        let total_pixels = src.resolution().pixels() * src.len() as u64;
        let measurement = Measurement::try_new(
            out.stats.pixels_per_second(total_pixels),
            source_bpps(src.resolution(), src.fps(), src.len(), out.bytes.len()),
            out.quality_db,
        )?;
        let timings =
            StageSeconds { submission: 0.0, transfer: 0.0, pipeline: out.stats.encode_seconds };
        let outcome = StreamOutcome {
            peak_resident_frames: probe_peak.get().max(out.peak_resident_frames),
            bytes: out.bytes,
            stats: out.stats,
            measurement,
            timings,
            chosen_bps,
        };
        finish_stream_span(&mut span, &outcome);
        Ok(outcome)
    }
}

/// The hardware backend: runs the [`vhw`] ASIC model for the requested
/// vendor. Fully deterministic, including the modelled speed.
#[derive(Clone, Copy, Default, Debug)]
pub struct HardwareEngine;

impl Transcoder for HardwareEngine {
    fn transcode(
        &self,
        src: &Video,
        req: &TranscodeRequest,
    ) -> Result<TranscodeOutcome, TranscodeError> {
        let Backend::Hardware(vendor) = req.backend else {
            return Err(TranscodeError::BackendMismatch { engine: "hardware" });
        };
        let mut span = open_transcode_span(src, req);
        let hw = HwEncoder::new(vendor);
        let (result, chosen_bps) = match req.rate {
            RateMode::ConstQuality { crf } => (hw.encode_quality(src, crf), None),
            RateMode::Bitrate { bps } => (hw.encode_bitrate(src, bps), Some(bps)),
            RateMode::TwoPassBitrate { .. } => {
                return Err(TranscodeError::UnsupportedRate {
                    backend: vendor.name(),
                    mode: "two-pass",
                });
            }
            RateMode::QualityTarget { target_db, lo_bps, hi_bps, fallback_bps } => {
                // Tables 3/4's loop: 12 single-pass probes, fall back to
                // the ladder rate when even max bitrate misses.
                match hw.encode_to_quality_target_with_rate(src, target_db, lo_bps, hi_bps) {
                    Some((result, bps)) => (result, Some(bps)),
                    None => match fallback_bps {
                        Some(bps) => (hw.encode_bitrate(src, bps), Some(bps)),
                        None => {
                            return Err(TranscodeError::UnreachableTarget { target_db, hi_bps })
                        }
                    },
                }
            }
        };
        let measurement = outcome_measurement(src, &result.output, result.speed_pixels_per_sec)?;
        let outcome = TranscodeOutcome {
            output: result.output,
            measurement,
            timings: result.stages,
            chosen_bps,
        };
        finish_transcode_span(&mut span, &outcome, chosen_bps);
        Ok(outcome)
    }
}

/// The dispatching engine every consumer uses: routes each request to
/// [`SoftwareEngine`] or [`HardwareEngine`] by its backend.
#[derive(Clone, Copy, Default, Debug)]
pub struct Engine;

impl Transcoder for Engine {
    fn transcode(
        &self,
        src: &Video,
        req: &TranscodeRequest,
    ) -> Result<TranscodeOutcome, TranscodeError> {
        let result = match req.backend {
            Backend::Software(_) => SoftwareEngine.transcode(src, req),
            Backend::Hardware(_) => HardwareEngine.transcode(src, req),
        };
        if let Err(e) = &result {
            vtrace::counter("engine.errors", 1);
            vtrace::debug("engine", || format!("transcode failed: {e}"));
        }
        result
    }

    fn transcode_stream(
        &self,
        src: &mut dyn FrameSource,
        req: &TranscodeRequest,
    ) -> Result<StreamOutcome, TranscodeError> {
        let result = match req.backend {
            Backend::Software(_) => SoftwareEngine.transcode_stream(src, req),
            // The ASIC models consume whole clips; the default
            // materializing path keeps them correct under streaming
            // requests.
            Backend::Hardware(_) => HardwareEngine.transcode_stream(src, req),
        };
        if let Err(e) = &result {
            vtrace::counter("engine.errors", 1);
            vtrace::debug("engine", || format!("transcode failed: {e}"));
        }
        result
    }
}

/// Convenience free function: one transcode through the dispatching
/// [`Engine`].
pub fn transcode(src: &Video, req: &TranscodeRequest) -> Result<TranscodeOutcome, TranscodeError> {
    Engine.transcode(src, req)
}

/// Convenience free function: one *streaming* transcode through the
/// dispatching [`Engine`].
pub fn transcode_stream(
    src: &mut dyn FrameSource,
    req: &TranscodeRequest,
) -> Result<StreamOutcome, TranscodeError> {
    Engine.transcode_stream(src, req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;

    fn clip(frames: usize) -> Video {
        let res = Resolution::new(64, 64);
        let fs = (0..frames)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * 3 + y * 2 + 5 * t as u32) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(fs, 30.0)
    }

    #[test]
    fn software_request_reproduces_direct_encode() {
        let v = clip(4);
        let cfg = EncoderConfig::new(
            CodecFamily::Hevc,
            Preset::Fast,
            RateControl::ConstQuality { crf: 30.0 },
        );
        let direct = vcodec::encode(&v, &cfg);
        let outcome = transcode(&v, &TranscodeRequest::from_config(&cfg)).expect("valid request");
        assert_eq!(outcome.output.bytes, direct.bytes);
        assert_eq!(outcome.chosen_bps, None);
        assert!(outcome.timings.pipeline > 0.0);
    }

    #[test]
    fn hardware_request_reports_modelled_stages() {
        let v = clip(4);
        let req = TranscodeRequest::hardware(HwVendor::Qsv, RateMode::Bitrate { bps: 400_000 });
        let outcome = transcode(&v, &req).expect("valid request");
        assert!(outcome.timings.submission > 0.0 && outcome.timings.transfer > 0.0);
        assert_eq!(outcome.chosen_bps, Some(400_000));
        assert!(outcome.measurement.speed_pps > 1e6, "hardware is fast");
    }

    #[test]
    fn invalid_request_is_a_typed_error() {
        // A zero-bitrate target used to panic deep inside the rate
        // controller; the engine surfaces it as a typed error instead.
        let req = TranscodeRequest::software(
            CodecFamily::Avc,
            Preset::Fast,
            RateMode::Bitrate { bps: 0 },
        );
        assert_eq!(
            transcode(&clip(3), &req).unwrap_err(),
            TranscodeError::Encode(EncodeError::ZeroBitrate)
        );
    }

    #[test]
    fn hardware_rejects_two_pass() {
        let v = clip(3);
        let req =
            TranscodeRequest::hardware(HwVendor::Nvenc, RateMode::TwoPassBitrate { bps: 400_000 });
        assert!(matches!(
            transcode(&v, &req),
            Err(TranscodeError::UnsupportedRate { backend: "NVENC", .. })
        ));
    }

    #[test]
    fn unreachable_target_without_fallback_errors() {
        let v = clip(3);
        let req = TranscodeRequest::hardware(
            HwVendor::Nvenc,
            RateMode::QualityTarget {
                target_db: 99.0,
                lo_bps: 1_000,
                hi_bps: 50_000,
                fallback_bps: None,
            },
        );
        assert!(matches!(
            transcode(&v, &req),
            Err(TranscodeError::UnreachableTarget { hi_bps: 50_000, .. })
        ));
    }

    #[test]
    fn unreachable_target_with_fallback_encodes_at_fallback() {
        let v = clip(3);
        let req = TranscodeRequest::hardware(
            HwVendor::Nvenc,
            RateMode::QualityTarget {
                target_db: 99.0,
                lo_bps: 1_000,
                hi_bps: 50_000,
                fallback_bps: Some(120_000),
            },
        );
        let outcome = transcode(&v, &req).expect("fallback saves the request");
        assert_eq!(outcome.chosen_bps, Some(120_000));
    }

    #[test]
    fn streaming_software_request_is_byte_identical() {
        let v = clip(8);
        let req = TranscodeRequest::software(
            CodecFamily::Avc,
            Preset::Fast,
            RateMode::TwoPassBitrate { bps: 300_000 },
        )
        .with_gop(4)
        .with_bframes();
        let full = transcode(&v, &req).expect("in-memory transcode");
        let mut src = vframe::source::VideoSource::new(&v);
        let streamed = transcode_stream(&mut src, &req).expect("streaming transcode");
        assert_eq!(streamed.bytes, full.output.bytes);
        assert_eq!(streamed.measurement.bitrate_bpps, full.measurement.bitrate_bpps);
        assert_eq!(streamed.measurement.quality_db, full.measurement.quality_db);
        assert_eq!(streamed.chosen_bps, full.chosen_bps);
        assert!(
            streamed.peak_resident_frames < v.len(),
            "bounded path held {} of {} frames",
            streamed.peak_resident_frames,
            v.len()
        );
    }

    #[test]
    fn streaming_hardware_request_materializes() {
        let v = clip(5);
        let req = TranscodeRequest::hardware(HwVendor::Nvenc, RateMode::Bitrate { bps: 400_000 });
        let full = transcode(&v, &req).expect("in-memory transcode");
        let mut src = vframe::source::VideoSource::new(&v);
        let streamed = transcode_stream(&mut src, &req).expect("streaming transcode");
        assert_eq!(streamed.bytes, full.output.bytes);
        assert_eq!(streamed.peak_resident_frames, v.len(), "ASIC models hold the clip");
    }

    #[test]
    fn stream_window_below_structural_minimum_is_typed() {
        let v = clip(4);
        let req = TranscodeRequest::software(
            CodecFamily::Avc,
            Preset::Fast,
            RateMode::ConstQuality { crf: 30.0 },
        )
        .with_window(2);
        let mut src = vframe::source::VideoSource::new(&v);
        assert_eq!(
            transcode_stream(&mut src, &req).unwrap_err(),
            TranscodeError::Encode(EncodeError::WindowTooSmall { required: 3, window: 2 })
        );
    }

    #[test]
    fn backend_mismatch_is_detected() {
        let v = clip(2);
        let sw = TranscodeRequest::software(
            CodecFamily::Avc,
            Preset::Fast,
            RateMode::ConstQuality { crf: 30.0 },
        );
        assert!(matches!(
            HardwareEngine.transcode(&v, &sw),
            Err(TranscodeError::BackendMismatch { engine: "hardware" })
        ));
    }
}
