//! Data-only figures: the growth comparison of Figure 1.
//!
//! Figure 1 plots hours of video uploaded to YouTube per minute against
//! median SPECRate2006 results, both normalized to mid-2007. The upload
//! series follows public YouTube statements (8 h/min in 2007 through
//! 500 h/min in 2015 [Tubular Insights]); the SPEC series approximates the
//! published median growth of SPECint Rate 2006 results. Both are
//! embedded here as constants — this is the one paper artifact that is
//! data, not measurement.

/// One year of Figure 1.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GrowthPoint {
    /// Calendar year.
    pub year: u32,
    /// YouTube upload rate, hours of video per minute.
    pub upload_hours_per_min: f64,
    /// Median SPECRate2006 result, arbitrary units.
    pub specrate_median: f64,
}

/// The Figure 1 series, 2006–2016.
pub const GROWTH_SERIES: [GrowthPoint; 11] = [
    GrowthPoint { year: 2006, upload_hours_per_min: 4.0, specrate_median: 0.8 },
    GrowthPoint { year: 2007, upload_hours_per_min: 6.0, specrate_median: 1.0 },
    GrowthPoint { year: 2008, upload_hours_per_min: 12.0, specrate_median: 1.4 },
    GrowthPoint { year: 2009, upload_hours_per_min: 20.0, specrate_median: 2.0 },
    GrowthPoint { year: 2010, upload_hours_per_min: 35.0, specrate_median: 2.9 },
    GrowthPoint { year: 2011, upload_hours_per_min: 48.0, specrate_median: 4.0 },
    GrowthPoint { year: 2012, upload_hours_per_min: 72.0, specrate_median: 5.6 },
    GrowthPoint { year: 2013, upload_hours_per_min: 100.0, specrate_median: 7.6 },
    GrowthPoint { year: 2014, upload_hours_per_min: 300.0, specrate_median: 10.0 },
    GrowthPoint { year: 2015, upload_hours_per_min: 500.0, specrate_median: 13.0 },
    GrowthPoint { year: 2016, upload_hours_per_min: 500.0, specrate_median: 17.0 },
];

/// Both series normalized to their June-2007 values, as the figure plots
/// them: `(year, upload_growth, spec_growth)`.
pub fn normalized_growth() -> Vec<(u32, f64, f64)> {
    let base = GROWTH_SERIES.iter().find(|p| p.year == 2007).expect("2007 present in series");
    GROWTH_SERIES
        .iter()
        .map(|p| {
            (
                p.year,
                p.upload_hours_per_min / base.upload_hours_per_min,
                p.specrate_median / base.specrate_median,
            )
        })
        .collect()
}

/// The figure's takeaway: the factor by which upload growth outpaced CPU
/// throughput growth over the series.
pub fn growth_gap() -> f64 {
    let g = normalized_growth();
    let last = g.last().expect("series is non-empty");
    last.1 / last.2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_anchors_2007_at_one() {
        let g = normalized_growth();
        let p2007 = g.iter().find(|p| p.0 == 2007).unwrap();
        assert!((p2007.1 - 1.0).abs() < 1e-12);
        assert!((p2007.2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uploads_outpace_cpus() {
        // The paper's Figure 1 claim: a growing burden on infrastructure.
        assert!(growth_gap() > 3.0, "gap {}", growth_gap());
        let g = normalized_growth();
        let last = g.last().unwrap();
        assert!(last.1 > 50.0, "upload growth {}", last.1);
        assert!(last.2 < 30.0, "cpu growth {}", last.2);
    }

    #[test]
    fn both_series_are_monotone() {
        for pair in GROWTH_SERIES.windows(2) {
            assert!(pair[1].upload_hours_per_min >= pair[0].upload_hours_per_min);
            assert!(pair[1].specrate_median > pair[0].specrate_median);
        }
    }
}
