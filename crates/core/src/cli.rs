//! Tracing and exit plumbing shared by the workspace binaries.
//!
//! `vbench` and `tablegen` grew identical copies of the trace-flush and
//! exit helpers; this module is the single home for both, so the exit
//! contract cannot drift between tools. The convention, shared by every
//! binary:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | runtime failure (transcode, I/O, batch) — trace still flushed |
//! | 2    | usage error — before any work ran |
//! | 3    | simulated crash (scripted `crash=` fault fired; journal intact) |
//! | 4    | quality gate: `vprof compare` regression findings, or a |
//! |      | service run whose shed rate exceeded `--max-shed-rate` |
//! | 5    | infeasible plan: `vbench plan` found a job no catalog |
//! |      | instance can finish inside the scenario deadline |
//! | 6    | chaos invariant violation: `vbench chaos` caught a |
//! |      | recovery bug (report written with the reproducing seeds) |
//!
//! Telemetry only ever goes to stderr and the `--trace-out` file;
//! stdout belongs to report output and stays byte-identical with
//! tracing on or off.

use std::sync::OnceLock;

/// Exit code for success.
pub const EXIT_OK: i32 = 0;
/// Exit code for a runtime failure (transcode, I/O, batch).
pub const EXIT_RUNTIME: i32 = 1;
/// Exit code for a usage error (bad command line; no work ran).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for a simulated crash (scripted `crash=` fault fired).
pub const EXIT_CRASH: i32 = 3;
/// Exit code for a failed quality gate (perf regression found, or a
/// service shed rate above `--max-shed-rate`).
pub const EXIT_GATE: i32 = 4;
/// Exit code for an infeasible fleet plan: at the scenario's own
/// deadline, some job fits no catalog instance.
pub const EXIT_INFEASIBLE: i32 = 5;
/// Exit code for a chaos-audit invariant violation: `vbench chaos`
/// found a trial where recovery broke a durability guarantee.
pub const EXIT_CHAOS: i32 = 6;

/// The `--trace-out` destination, stashed at init so the error path
/// ([`fail`]) can flush the trace too.
static TRACE_OUT: OnceLock<Option<String>> = OnceLock::new();

/// Initialises tracing from the standard telemetry flags: `level_flag`
/// is the raw `--log-level` value (unset = off), `trace_out` the
/// `--trace-out` path. A trace destination implies at least `summary`
/// level. Dies with a usage error on an unknown level.
///
/// Invariant: each binary's `main` calls this exactly once, before any
/// command runs.
pub fn init_tracing(tool: &'static str, level_flag: Option<&str>, trace_out: Option<String>) {
    let mut level = match level_flag {
        None => vtrace::Level::Off,
        Some(s) => vtrace::Level::parse(s).unwrap_or_else(|| {
            die(tool, &format!("unknown log level '{s}' (off|summary|verbose)"))
        }),
    };
    if trace_out.is_some() && level == vtrace::Level::Off {
        level = vtrace::Level::Summary;
    }
    vtrace::set_level(level);
    TRACE_OUT.set(trace_out).expect("tracing initialised once");
}

/// Drains the trace: JSONL to `--trace-out` (if one was given to
/// [`init_tracing`]) and the human-readable span-tree / metrics summary
/// to stderr. Stdout is never touched, so report output stays
/// byte-identical with tracing on or off.
pub fn finish_tracing(tool: &'static str) {
    if !vtrace::enabled() {
        return;
    }
    let report = vtrace::drain();
    if let Some(Some(path)) = TRACE_OUT.get() {
        if let Err(e) = report.write_jsonl(path) {
            eprintln!("[error] {tool}: write trace {path}: {e}");
            std::process::exit(EXIT_RUNTIME);
        }
    }
    eprint!("{}", report.summary());
}

/// Usage error: bad command line. Exit [`EXIT_USAGE`], before any work
/// ran — nothing to flush.
pub fn die(tool: &'static str, msg: &str) -> ! {
    eprintln!("{tool}: {msg}");
    std::process::exit(EXIT_USAGE);
}

/// Runtime failure: a transcode, I/O, or batch operation failed. Logged
/// through vtrace (always reaches stderr) and the trace — including the
/// `--trace-out` JSONL — is still flushed before exit [`EXIT_RUNTIME`],
/// so a failed run leaves the same telemetry artifacts a successful one
/// would. Distinct from usage errors so scripts and CI can tell them
/// apart.
pub fn fail(tool: &'static str, msg: &str) -> ! {
    vtrace::error(tool, msg);
    finish_tracing(tool);
    std::process::exit(EXIT_RUNTIME);
}

/// Quality-gate failure: the run completed and its artifacts are valid,
/// but a gate tripped (service shed rate above `--max-shed-rate`).
/// Flushes the trace and exits [`EXIT_GATE`] — distinct from runtime
/// failures so CI can treat "worked, but over budget" specially.
pub fn fail_gate(tool: &'static str, msg: &str) -> ! {
    vtrace::error(tool, msg);
    finish_tracing(tool);
    std::process::exit(EXIT_GATE);
}

/// Infeasible-plan failure: the planner ran to completion and wrote its
/// report, but at the scenario's own deadline (multiplier 1.0) some job
/// fits no catalog instance. Flushes the trace and exits
/// [`EXIT_INFEASIBLE`] — the report is still valid and replayable, so
/// CI can both archive it and flag the capacity gap.
pub fn fail_infeasible(tool: &'static str, msg: &str) -> ! {
    vtrace::error(tool, msg);
    finish_tracing(tool);
    std::process::exit(EXIT_INFEASIBLE);
}

/// Chaos-audit failure: the fault-injection trials completed and the
/// `CHAOS_*.json` report (with each trial's reproducing fault schedule)
/// was written, but at least one recovery invariant was violated.
/// Flushes the trace and exits [`EXIT_CHAOS`] — distinct from runtime
/// failures because the run itself worked; it is the *recovery
/// guarantee* that is broken.
pub fn fail_chaos(tool: &'static str, msg: &str) -> ! {
    vtrace::error(tool, msg);
    finish_tracing(tool);
    std::process::exit(EXIT_CHAOS);
}
