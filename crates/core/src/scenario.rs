//! The five vbench scoring scenarios (Table 1 of the paper).
//!
//! Each scenario models one stage of a video-sharing pipeline (Section
//! 2.5), eliminates one measurement dimension with a hard QoS constraint,
//! and scores the remaining two as a product:
//!
//! | Scenario | Constraint | Score |
//! |---|---|---|
//! | Upload | B > 0.2 | S × Q |
//! | Live | real-time speed | B × Q |
//! | VOD | Q ≥ 1 or ≥ 50 dB | S × B |
//! | Popular | B, Q ≥ 1 and S ≥ 0.1 | B × Q |
//! | Platform | B = Q = 1 | S |

use crate::measure::{Measurement, Ratios};
use vframe::{Resolution, Video};

/// The five scenarios.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scenario {
    /// Ingest transcode to the universal format: fast and faithful; size
    /// barely matters (it is a temporary file).
    Upload,
    /// Live streaming: the transcoder must keep up with the output pixel
    /// rate.
    Live,
    /// Video-on-demand archival: never degrade quality; trade speed and
    /// size.
    Vod,
    /// High-effort re-transcode of popular videos: strictly better
    /// compression *and* quality, speed nearly irrelevant.
    Popular,
    /// Same encoder, new platform (compiler/ISA/microarchitecture): only
    /// speed may change.
    Platform,
}

impl Scenario {
    /// All scenarios in the paper's order.
    pub const ALL: [Scenario; 5] =
        [Scenario::Upload, Scenario::Live, Scenario::Vod, Scenario::Popular, Scenario::Platform];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Upload => "Upload",
            Scenario::Live => "Live",
            Scenario::Vod => "VOD",
            Scenario::Popular => "Popular",
            Scenario::Platform => "Platform",
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tolerance band for the Platform scenario's `B = Q = 1` equality (the
/// encoder is unchanged; tiny measurement jitter is allowed).
const PLATFORM_TOLERANCE: f64 = 0.01;

/// A scored comparison of one transcode against its reference.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScenarioScore {
    /// The scenario scored.
    pub scenario: Scenario,
    /// The S/B/Q ratios (always reported, per Section 4.3).
    pub ratios: Ratios,
    /// Whether the scenario's constraint was met.
    pub valid: bool,
    /// The score, when the constraint was met (`None` otherwise — the
    /// paper leaves invalid cells empty and flags them red).
    pub score: Option<f64>,
}

/// Scores `new` against `reference` under `scenario` (Table 1).
///
/// `live_required_pps` is the real-time pixel rate the Live scenario must
/// sustain — `video.resolution().pixels() × fps`; pass the actual clip via
/// [`score_with_video`] to have it derived.
pub fn score(
    scenario: Scenario,
    new: &Measurement,
    reference: &Measurement,
    live_required_pps: f64,
) -> ScenarioScore {
    let r = Ratios::of(new, reference);
    let (valid, value) = match scenario {
        Scenario::Upload => (r.b > 0.2, r.s * r.q),
        Scenario::Live => (new.speed_pps >= live_required_pps, r.b * r.q),
        Scenario::Vod => (r.q >= 1.0 || new.quality_db >= 50.0, r.s * r.b),
        Scenario::Popular => (r.b >= 1.0 && r.q >= 1.0 && r.s >= 0.1, r.b * r.q),
        Scenario::Platform => (
            (r.b - 1.0).abs() <= PLATFORM_TOLERANCE && (r.q - 1.0).abs() <= PLATFORM_TOLERANCE,
            r.s,
        ),
    };
    if vtrace::enabled() {
        vtrace::counter("scenario.cells_scored", 1);
        vtrace::counter(if valid { "scenario.cells_valid" } else { "scenario.cells_invalid" }, 1);
    }
    ScenarioScore { scenario, ratios: r, valid, score: valid.then_some(value) }
}

/// The Live scenario's per-job encode deadline, in seconds: the clip's
/// play-out duration, derived from the same real-time pixel rate the
/// scoring constraint uses (`total pixels ÷ (pixels/frame × fps)`). A
/// transcode that takes longer than the clip lasts cannot keep up with a
/// live stream; feed this to
/// [`crate::farm::EngineJob::with_deadline`] to make the farm enforce it.
pub fn live_deadline_secs(video: &Video) -> f64 {
    live_deadline_secs_for(video.resolution(), video.fps(), video.len())
}

/// [`live_deadline_secs`] from source metadata alone, for streaming jobs
/// whose clips are never materialized. Same arithmetic, so the deadline a
/// streamed Live job runs under matches the in-memory one exactly.
pub fn live_deadline_secs_for(resolution: Resolution, fps: f64, frames: usize) -> f64 {
    let required_pps = resolution.pixels() as f64 * fps;
    let total_pixels = resolution.pixels() * frames as u64;
    total_pixels as f64 / required_pps.max(1e-9)
}

/// Scores with the Live real-time requirement derived from the clip.
pub fn score_with_video(
    scenario: Scenario,
    video: &Video,
    new: &Measurement,
    reference: &Measurement,
) -> ScenarioScore {
    let required = video.resolution().pixels() as f64 * video.fps();
    score(scenario, new, reference, required)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Measurement {
        Measurement::new(10e6, 2.0, 40.0)
    }

    #[test]
    fn upload_requires_bounded_bitrate() {
        let reference = reference();
        // 2x speed, same quality, 6x larger output: B = 1/6 < 0.2 -> invalid.
        let bloated = Measurement::new(20e6, 12.0, 40.0);
        let s = score(Scenario::Upload, &bloated, &reference, 0.0);
        assert!(!s.valid);
        assert_eq!(s.score, None);
        // 4x larger is within the allowance; score = S x Q = 2 x 1.
        let ok = Measurement::new(20e6, 8.0, 40.0);
        let s = score(Scenario::Upload, &ok, &reference, 0.0);
        assert!(s.valid);
        assert!((s.score.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn live_requires_realtime() {
        let reference = reference();
        let new = Measurement::new(5e6, 1.0, 41.0);
        // Requirement 6 Mpix/s: 5 Mpix/s transcoder fails.
        let s = score(Scenario::Live, &new, &reference, 6e6);
        assert!(!s.valid);
        // Requirement 4 Mpix/s: passes; score = B x Q = 2 x 1.025.
        let s = score(Scenario::Live, &new, &reference, 4e6);
        assert!(s.valid);
        assert!((s.score.unwrap() - 2.0 * 1.025).abs() < 1e-9);
    }

    #[test]
    fn vod_quality_gate_has_lossless_escape() {
        let reference = reference();
        // Slightly worse quality, below 50 dB: invalid.
        let worse = Measurement::new(40e6, 2.0, 39.0);
        assert!(!score(Scenario::Vod, &worse, &reference, 0.0).valid);
        // Worse *ratio* but visually lossless (>= 50 dB): valid.
        let hi_ref = Measurement::new(10e6, 2.0, 52.0);
        let lossless = Measurement::new(40e6, 2.0, 51.0);
        let s = score(Scenario::Vod, &lossless, &hi_ref, 0.0);
        assert!(s.valid);
        assert!((s.score.unwrap() - 4.0).abs() < 1e-12); // S x B = 4 x 1
    }

    #[test]
    fn popular_demands_strict_improvement() {
        let reference = reference();
        // Better B but slightly worse Q: invalid.
        let half = Measurement::new(1e6 + 1.0, 1.0, 39.9);
        assert!(!score(Scenario::Popular, &half, &reference, 0.0).valid);
        // Better on both, 5x slower (S = 0.2 >= 0.1): valid, B x Q.
        let good = Measurement::new(2e6, 1.0, 41.0);
        let s = score(Scenario::Popular, &good, &reference, 0.0);
        assert!(s.valid);
        assert!((s.score.unwrap() - 2.0 * 1.025).abs() < 1e-9);
        // 20x slower: speed floor S >= 0.1 violated.
        let slow = Measurement::new(0.4e6, 1.0, 41.0);
        assert!(!score(Scenario::Popular, &slow, &reference, 0.0).valid);
    }

    #[test]
    fn platform_requires_identical_output() {
        let reference = reference();
        let same_output_faster = Measurement::new(15e6, 2.0, 40.0);
        let s = score(Scenario::Platform, &same_output_faster, &reference, 0.0);
        assert!(s.valid);
        assert!((s.score.unwrap() - 1.5).abs() < 1e-12);
        let changed_output = Measurement::new(15e6, 1.5, 40.0);
        assert!(!score(Scenario::Platform, &changed_output, &reference, 0.0).valid);
    }

    #[test]
    fn ratios_reported_even_when_invalid() {
        let reference = reference();
        let bad = Measurement::new(1e6, 100.0, 10.0);
        let s = score(Scenario::Popular, &bad, &reference, 0.0);
        assert!(!s.valid);
        assert!(s.ratios.b < 1.0 && s.ratios.q < 1.0);
    }

    #[test]
    fn live_deadline_is_clip_duration() {
        use vframe::color::{frame_from_fn, Yuv};
        use vframe::Resolution;
        let res = Resolution::new(32, 16);
        let frames = (0..60).map(|_| frame_from_fn(res, |_, _| Yuv::new(0, 128, 128))).collect();
        let v = Video::new(frames, 30.0);
        // 60 frames at 30 fps: the real-time bound is the 2 s play-out.
        assert!((live_deadline_secs(&v) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn live_deadline_boundaries_stay_finite() {
        use vframe::Resolution;
        let tiny = Resolution::new(2, 2);
        // A zero-frame clip has nothing to play out: deadline 0, not NaN.
        assert_eq!(live_deadline_secs_for(tiny, 30.0, 0), 0.0);
        // Zero fps would divide by zero; the pixel-rate floor keeps the
        // deadline finite (absurdly long, which is the honest answer).
        let stalled = live_deadline_secs_for(tiny, 0.0, 10);
        assert!(stalled.is_finite() && stalled > 0.0);
        // Zero fps AND zero frames: 0/0 territory, still exactly 0.
        assert_eq!(live_deadline_secs_for(tiny, 0.0, 0), 0.0);
        // Resolution cancels out: the deadline is frames / fps for any
        // frame size, tiny or 8K.
        let small = live_deadline_secs_for(tiny, 24.0, 48);
        assert!((small - 2.0).abs() < 1e-9);
        let huge = live_deadline_secs_for(Resolution::new(7680, 4320), 24.0, 48);
        assert!((huge - small).abs() < 1e-9);
        // Extreme fps: a 240 fps 8K stream still gets frames/fps without
        // precision collapse.
        let fast = live_deadline_secs_for(Resolution::new(7680, 4320), 240.0, 240_000);
        assert!((fast - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn all_scenarios_have_unique_names() {
        let mut names: Vec<_> = Scenario::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
