//! The bounded per-class admission queue.
//!
//! Deliberately dumb: a FIFO with a hard depth bound and two targeted
//! eviction helpers (minimum value, minimum deadline slack) for the
//! shed policies. All *policy* — who to shed, when to degrade — lives
//! in [`super::sim`]; the queue only guarantees the bound. The
//! occupancy invariant (`len() <= depth()` always, checked on every
//! mutation) is what the satellite property test hammers.

use std::collections::VecDeque;

use super::arrivals::Arrival;

/// One admitted job waiting for a virtual server.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// The arrival that was admitted.
    pub arrival: Arrival,
    /// Estimated service demand in virtual microseconds at its
    /// *undegraded* preset (the shed policies compare against this; the
    /// dispatcher recomputes demand after degradation).
    pub est_service_us: u64,
}

/// A bounded FIFO of admitted jobs.
#[derive(Debug)]
pub struct BoundedQueue {
    depth: usize,
    entries: VecDeque<QueuedJob>,
    peak: usize,
}

impl BoundedQueue {
    /// An empty queue bounded at `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero — a service with no queue at all
    /// cannot absorb any burst and every metric degenerates.
    pub fn new(depth: usize) -> BoundedQueue {
        assert!(depth > 0, "queue depth must be positive");
        BoundedQueue { depth, entries: VecDeque::with_capacity(depth), peak: 0 }
    }

    /// The configured bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the next push would exceed the bound.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.depth
    }

    /// The highest occupancy ever reached.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Occupancy as a fraction of the bound (the overload controller's
    /// degradation signal).
    pub fn occupancy(&self) -> f64 {
        self.entries.len() as f64 / self.depth as f64
    }

    /// Appends a job, or reports the bound.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is full — the caller's shed
    /// policy decides what happens next; the queue never exceeds its
    /// bound.
    pub fn try_push(&mut self, job: QueuedJob) -> Result<(), QueuedJob> {
        if self.is_full() {
            return Err(job);
        }
        self.entries.push_back(job);
        self.peak = self.peak.max(self.entries.len());
        debug_assert!(self.entries.len() <= self.depth, "bound invariant");
        Ok(())
    }

    /// Removes and returns the oldest job.
    pub fn pop_front(&mut self) -> Option<QueuedJob> {
        self.entries.pop_front()
    }

    /// A view of the queued jobs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.entries.iter()
    }

    /// Evicts the queued job minimizing `key`, breaking ties toward the
    /// oldest entry so the decision is deterministic. Returns `None` on
    /// an empty queue.
    pub fn evict_min_by_key<K: PartialOrd>(
        &mut self,
        key: impl Fn(&QueuedJob) -> K,
    ) -> Option<QueuedJob> {
        let mut min_index = 0;
        let mut min_key = key(self.entries.front()?);
        for (i, job) in self.entries.iter().enumerate().skip(1) {
            let k = key(job);
            if k < min_key {
                min_key = k;
                min_index = i;
            }
        }
        self.entries.remove(min_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(index: u64, value: f64) -> QueuedJob {
        QueuedJob {
            arrival: Arrival {
                index,
                at_us: index * 10,
                video: 0,
                rank: 0,
                value,
                deadline_us: None,
                heavy: false,
            },
            est_service_us: 100,
        }
    }

    #[test]
    fn the_bound_is_hard() {
        let mut q = BoundedQueue::new(2);
        assert!(q.try_push(job(0, 1.0)).is_ok());
        assert!(q.try_push(job(1, 1.0)).is_ok());
        let bounced = q.try_push(job(2, 1.0));
        assert!(bounced.is_err());
        assert_eq!(bounced.unwrap_err().arrival.index, 2, "the job comes back");
        assert_eq!((q.len(), q.peak()), (2, 2));
        q.pop_front();
        assert!(q.try_push(job(3, 1.0)).is_ok());
        assert_eq!(q.peak(), 2, "peak tracks the high-water mark");
    }

    #[test]
    fn min_value_eviction_is_deterministic_and_oldest_wins_ties() {
        let mut q = BoundedQueue::new(4);
        for (i, v) in [(0, 0.5), (1, 0.2), (2, 0.9), (3, 0.2)] {
            q.try_push(job(i, v)).unwrap();
        }
        let victim = q.evict_min_by_key(|j| j.arrival.value).unwrap();
        assert_eq!(victim.arrival.index, 1, "strictly-minimum value evicted, oldest on ties");
        assert_eq!(q.len(), 3);
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn zero_depth_is_rejected() {
        BoundedQueue::new(0);
    }
}
