//! The virtual-time service loop: admission, overload control, and
//! scheduling as one deterministic discrete-event simulation.
//!
//! Time is integer microseconds on a [`VirtualClock`]; events are
//! ordered by `(time, dispatch sequence)` so the loop has no ties to
//! break nondeterministically. Service demand is modelled, not
//! measured: a job costs its clip's play-out duration times a
//! per-preset effort factor (UltraFast ≪ real time, VerySlow ≫ real
//! time). That keeps every decision — admit, degrade, shed, complete —
//! a pure function of the [`super::ServiceConfig`], independent of the
//! machine and of the real worker count, which is what makes the
//! saturation study replayable bit-exactly.
//!
//! The overload controller reads queue occupancy at dispatch time and
//! degrades before the service drops anything: ≥ 50% occupancy
//! downshifts one preset notch, ≥ 75% two, ≥ 90% three (along
//! [`crate::resilience::degrade_preset_by`], the same ladder the
//! resilient farm uses on deadline misses). Degradation shrinks service
//! demand, so it genuinely buys capacity. Two refinements keep the
//! shed rate a clean function of offered load:
//!
//! - **Pre-arming.** The front door meters its own ingest, so the
//!   controller starts each run at the cheapest notch level whose
//!   effective utilization stays under 90% of capacity (the full
//!   ladder if none does). Without it, every overloaded run pays a
//!   ramp-up transient — the queue fills and sheds a handful of jobs
//!   before occupancy has taught the controller what the metered rate
//!   already says — and in the band where degradation can absorb the
//!   load those transient sheds are all there is, so the shed *rate*
//!   falls as offered load grows. Pre-armed, that band sheds exactly
//!   zero and shedding begins only past the fully-degraded saturation
//!   point, where it is steady state and strictly increasing.
//! - **Ratcheting.** Within a run, degradation only deepens
//!   (occupancy responses latch onto the pre-armed floor). Without
//!   the latch the controller oscillates between notch levels near
//!   each occupancy threshold, and the oscillation makes effective
//!   capacity — and therefore the shed rate — non-monotone in offered
//!   load: a 4× overload can shed *less* than 3× because it pins the
//!   queue fuller and earns a cheaper preset more of the time.
//!
//! Only a *full* queue sheds, per the class policy; every shed is
//! recorded as a [`ShedEvent`] and a trace counter, never silently.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use super::arrivals::{generate_arrivals, Arrival, HEAVY_FACTOR, US_PER_SEC};
use super::queue::{BoundedQueue, QueuedJob};
use super::{AdmissionError, QosClass, ServiceConfig, VideoProfile};
use crate::resilience::degrade_preset_by;
use vcodec::Preset;

/// Monotonic virtual time in integer microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualClock {
    now_us: u64,
}

impl VirtualClock {
    /// Current virtual time.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Advances to `t_us`.
    ///
    /// # Panics
    ///
    /// Panics if time would move backwards — the event loop feeds this
    /// clock in sorted order by construction, so a violation is a
    /// scheduling bug, not a recoverable condition.
    pub fn advance_to(&mut self, t_us: u64) {
        // Invariant: events are processed in nondecreasing time order;
        // a backwards step means the completion heap and the arrival
        // stream disagree about ordering.
        assert!(t_us >= self.now_us, "virtual clock moved backwards: {} -> {t_us}", self.now_us);
        self.now_us = t_us;
    }
}

/// Why a job was shed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShedReason {
    /// Bulk class, queue full: the incoming arrival was tail-dropped.
    TailDrop,
    /// Weighted class, queue full: this was the lowest-value work
    /// offered (either the incoming arrival or an evicted entry).
    LowValue,
    /// Deadline class: least slack under a full queue, or already
    /// infeasible at dispatch time.
    Infeasible,
}

impl ShedReason {
    /// Stable lowercase tag used in journal records and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ShedReason::TailDrop => "tail-drop",
            ShedReason::LowValue => "low-value",
            ShedReason::Infeasible => "infeasible",
        }
    }
}

/// One shed, fully attributed. The service never drops work silently:
/// each event becomes a `service.shed` trace counter immediately and a
/// durable journal `shed` record when a journal is configured.
#[derive(Clone, Debug)]
pub struct ShedEvent {
    /// Shed sequence number within the run (deterministic ordering).
    pub seq: u64,
    /// Virtual time of the decision.
    pub at_us: u64,
    /// Suite video name of the shed job.
    pub name: &'static str,
    /// Popularity rank (0 outside the Weighted class).
    pub rank: u64,
    /// The job's shed value at decision time.
    pub value: f64,
    /// Policy that selected it.
    pub reason: ShedReason,
}

/// The measured outcome of one simulated service run at one offered
/// load: the row a saturation sweep aggregates.
#[derive(Clone, Debug)]
pub struct ServicePoint {
    /// Mean offered arrival rate, jobs per virtual second.
    pub offered_load: f64,
    /// Arrivals offered inside the admission window.
    pub offered: u64,
    /// Arrivals admitted to the queue.
    pub admitted: u64,
    /// Admitted jobs that completed service.
    pub completed: u64,
    /// Jobs shed by the overload controller (see [`ShedEvent`]).
    pub shed: u64,
    /// Arrivals refused because the service was past its duration
    /// ([`AdmissionError::Draining`]); not sheds.
    pub drained: u64,
    /// Jobs dispatched with a degraded (downshifted) preset.
    pub degraded: u64,
    /// Live completions that finished after their deadline.
    pub deadline_misses: u64,
    /// Highest queue occupancy reached.
    pub queue_peak: usize,
    /// Median sojourn (arrival → completion) in virtual microseconds.
    pub sojourn_p50_us: u64,
    /// 95th-percentile sojourn.
    pub sojourn_p95_us: u64,
    /// 99th-percentile sojourn.
    pub sojourn_p99_us: u64,
    /// Every shed, in decision order.
    pub shed_events: Vec<ShedEvent>,
    /// The deduplicated admitted mix: (video index, degradation
    /// notches) pairs actually dispatched — the real-encode workload.
    pub admitted_mix: BTreeSet<(usize, u32)>,
}

impl ServicePoint {
    /// Sheds per offered job (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Admissions per offered job.
    pub fn admit_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.admitted as f64 / self.offered as f64
        }
    }

    /// Degraded dispatches per offered job.
    pub fn degrade_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.degraded as f64 / self.offered as f64
        }
    }
}

/// Relative service demand of a preset, as a multiple of the clip's
/// play-out duration: UltraFast transcodes far faster than real time,
/// VerySlow far slower. Strictly decreasing toward UltraFast, so every
/// degradation notch buys real capacity.
pub(crate) fn effort_factor(preset: Preset) -> f64 {
    match preset {
        Preset::UltraFast => 0.25,
        Preset::VeryFast => 0.4,
        Preset::Fast => 0.6,
        Preset::Medium => 1.0,
        Preset::Slow => 1.6,
        Preset::VerySlow => 2.5,
    }
}

/// The deepest preset downshift the controller will take before it
/// sheds — the bottom of the occupancy ladder below.
pub(crate) const MAX_DEGRADE_NOTCHES: u32 = 3;

/// Mean modelled service demand over the catalog at `notches`
/// degradation, in seconds. The saturation estimates and the pre-arm
/// controller both read capacity off this curve.
pub(crate) fn mean_service_secs(profiles: &[VideoProfile], notches: u32) -> f64 {
    profiles
        .iter()
        .map(|p| p.play_secs * effort_factor(degrade_preset_by(p.preset, notches)))
        .sum::<f64>()
        / profiles.len() as f64
}

/// The pre-armed degradation floor for a metered offered load: the
/// cheapest notch level whose effective utilization stays under 90%
/// of capacity, or the full ladder if none does (see the module doc
/// for why arming up front, not on occupancy, keeps the shed rate
/// monotone in load).
fn prearm_notches(config: &ServiceConfig, profiles: &[VideoProfile]) -> u32 {
    (0..=MAX_DEGRADE_NOTCHES)
        .find(|&n| {
            config.offered_load * mean_service_secs(profiles, n) <= 0.9 * config.capacity as f64
        })
        .unwrap_or(MAX_DEGRADE_NOTCHES)
}

/// The overload controller's degradation response to queue occupancy
/// at dispatch time.
fn degrade_notches(occupancy: f64) -> u32 {
    if occupancy >= 0.9 {
        3
    } else if occupancy >= 0.75 {
        2
    } else if occupancy >= 0.5 {
        1
    } else {
        0
    }
}

/// Modelled service demand of `arrival` at `notches` degradation, in
/// virtual microseconds (≥ 1).
fn service_us(arrival: &Arrival, profile: &VideoProfile, notches: u32) -> u64 {
    let effort = effort_factor(degrade_preset_by(profile.preset, notches));
    let heavy = if arrival.heavy { HEAVY_FACTOR } else { 1.0 };
    ((profile.play_secs * effort * heavy * US_PER_SEC).round() as u64).max(1)
}

/// A job in service on a virtual server: ordered by completion time,
/// then dispatch sequence, so the event loop is total-ordered.
#[derive(Debug)]
struct InService {
    at_us: u64,
    seq: u64,
    arrival: Arrival,
}

impl PartialEq for InService {
    fn eq(&self, other: &InService) -> bool {
        (self.at_us, self.seq) == (other.at_us, other.seq)
    }
}
impl Eq for InService {}
impl PartialOrd for InService {
    fn partial_cmp(&self, other: &InService) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InService {
    fn cmp(&self, other: &InService) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// Internal mutable state of one simulation run.
struct Sim<'a> {
    profiles: &'a [VideoProfile],
    class: QosClass,
    clock: VirtualClock,
    queue: BoundedQueue,
    busy: BinaryHeap<Reverse<InService>>,
    idle: usize,
    /// The degradation ratchet: the deepest notch level the pre-arm or
    /// occupancy has demanded so far. Dispatch never runs shallower.
    notches_floor: u32,
    /// Cheapest predicted dollars per profile (parallel to `profiles`),
    /// from the cost plane's predictor over the default instance
    /// catalog. The Weighted class sheds by value *per dollar*: a cheap
    /// mid-rank clip can outrank an expensive popular one.
    job_dollars: Vec<f64>,
    dispatch_seq: u64,
    sojourns: Vec<u64>,
    point: ServicePoint,
}

/// Simulates one service run in virtual time. Pure in `(config,
/// profiles)`: no wall clocks, no threads, no I/O — the whole outcome
/// replays bit-exactly anywhere.
pub fn simulate_service(config: &ServiceConfig, profiles: &[VideoProfile]) -> ServicePoint {
    assert!(config.capacity > 0, "service capacity must be positive");
    let duration_us = (config.duration_secs * US_PER_SEC).round() as u64;
    let catalog = vhw::InstanceCatalog::default_fleet();
    let job_dollars = profiles
        .iter()
        .map(|p| crate::fleet::cheapest_job_dollars(&p.features(), &catalog))
        .collect();
    let mut sim = Sim {
        profiles,
        class: QosClass::of(config.scenario),
        clock: VirtualClock::default(),
        queue: BoundedQueue::new(config.queue_depth),
        busy: BinaryHeap::new(),
        idle: config.capacity,
        notches_floor: prearm_notches(config, profiles),
        job_dollars,
        dispatch_seq: 0,
        sojourns: Vec::new(),
        point: ServicePoint {
            offered_load: config.offered_load,
            offered: 0,
            admitted: 0,
            completed: 0,
            shed: 0,
            drained: 0,
            degraded: 0,
            deadline_misses: 0,
            queue_peak: 0,
            sojourn_p50_us: 0,
            sojourn_p95_us: 0,
            sojourn_p99_us: 0,
            shed_events: Vec::new(),
            admitted_mix: BTreeSet::new(),
        },
    };

    for arrival in generate_arrivals(config, profiles) {
        // Free every server whose job completes before (or exactly as)
        // this arrival lands: completions sort first on ties so the
        // freed capacity is visible to the admission decision.
        while sim.busy.peek().is_some_and(|Reverse(c)| c.at_us <= arrival.at_us) {
            sim.complete_next();
            sim.dispatch_ready();
        }
        sim.clock.advance_to(arrival.at_us);
        if arrival.at_us > duration_us {
            // Past the window: the service drains. Refused, not shed.
            sim.point.drained += 1;
            sim.trace_count("service.drained");
            sim.note_refusal(AdmissionError::Draining);
            continue;
        }
        sim.point.offered += 1;
        sim.trace_count("service.offered");
        sim.admit(arrival);
        sim.dispatch_ready();
    }
    // Arrival stream exhausted: drain the queue and the servers.
    while !sim.busy.is_empty() {
        sim.complete_next();
        sim.dispatch_ready();
    }

    sim.point.queue_peak = sim.queue.peak();
    sim.sojourns.sort_unstable();
    sim.point.sojourn_p50_us = percentile(&sim.sojourns, 0.50);
    sim.point.sojourn_p95_us = percentile(&sim.sojourns, 0.95);
    sim.point.sojourn_p99_us = percentile(&sim.sojourns, 0.99);
    sim.point
}

impl Sim<'_> {
    /// Admission decision for one in-window arrival, per the class shed
    /// policy. Errors are consumed into metrics here; unit tests cover
    /// the typed mapping through [`Sim::refuse`].
    fn admit(&mut self, arrival: Arrival) {
        let est = service_us(&arrival, &self.profiles[arrival.video], 0);
        let job = QueuedJob { est_service_us: est, arrival };
        if !self.queue.is_full() {
            self.accept(job);
            return;
        }
        match self.class {
            // All uploads are equal: nothing queued is worth less than
            // the incoming job, so the arrival itself is dropped.
            QosClass::Bulk => {
                let depth = self.queue.depth();
                self.shed(&job, ShedReason::TailDrop);
                self.refuse(job, AdmissionError::QueueFull { depth });
            }
            // Watch-time weighted: shed the work worth the least *per
            // predicted dollar* in sight — watch-time value divided by
            // the cost plane's cheapest predicted encode cost — which
            // may be the incoming arrival itself. (`ShedEvent::value`
            // stays the raw watch-time value; only the ordering is
            // cost-aware.)
            QosClass::Weighted => {
                let dollars = &self.job_dollars;
                let density = |j: &QueuedJob| j.arrival.value / dollars[j.arrival.video];
                let queued_min = self.queue.iter().map(density).fold(f64::INFINITY, f64::min);
                if density(&job) <= queued_min {
                    self.shed(&job, ShedReason::LowValue);
                    self.refuse(job, AdmissionError::Shedding);
                } else {
                    let victim =
                        self.queue.evict_min_by_key(density).expect("full queue has a minimum");
                    self.shed(&victim, ShedReason::LowValue);
                    self.accept(job);
                }
            }
            // Deadline driven: shed whatever is least likely to make
            // its deadline — the entry (queued or incoming) with the
            // smallest slack.
            QosClass::Deadline => {
                let now = self.clock.now_us();
                let slack = |j: &QueuedJob| {
                    j.arrival
                        .deadline_us
                        .map_or(i64::MAX, |d| d as i64 - now as i64 - j.est_service_us as i64)
                };
                let queued_min = self.queue.iter().map(&slack).min().unwrap_or(i64::MAX);
                if slack(&job) <= queued_min {
                    self.shed(&job, ShedReason::Infeasible);
                    self.refuse(job, AdmissionError::Shedding);
                } else {
                    let victim =
                        self.queue.evict_min_by_key(slack).expect("full queue has a minimum");
                    self.shed(&victim, ShedReason::Infeasible);
                    self.accept(job);
                }
            }
        }
    }

    fn accept(&mut self, job: QueuedJob) {
        self.point.admitted += 1;
        self.trace_count("service.admitted");
        self.queue.try_push(job).expect("admission checked the bound");
    }

    /// Starts queued jobs on idle servers. The degradation notches are
    /// read off queue occupancy *before* each pop — the fuller the
    /// queue, the cheaper the preset — then latched through the
    /// ratchet so a run never shifts back up once overload has fired.
    fn dispatch_ready(&mut self) {
        while self.idle > 0 && !self.queue.is_empty() {
            let notches = degrade_notches(self.queue.occupancy()).max(self.notches_floor);
            self.notches_floor = notches;
            let job = self.queue.pop_front().expect("checked non-empty");
            let now = self.clock.now_us();
            let demand = service_us(&job.arrival, &self.profiles[job.arrival.video], notches);
            // A Live job that can no longer make its deadline would
            // waste a server: shed it instead of serving it late.
            if self.class == QosClass::Deadline {
                if let Some(deadline) = job.arrival.deadline_us {
                    if now + demand > deadline {
                        self.shed(&job, ShedReason::Infeasible);
                        continue;
                    }
                }
            }
            if notches > 0 {
                self.point.degraded += 1;
                self.trace_count("service.degraded");
            }
            self.point.admitted_mix.insert((job.arrival.video, notches));
            self.idle -= 1;
            self.busy.push(Reverse(InService {
                at_us: now + demand,
                seq: self.dispatch_seq,
                arrival: job.arrival,
            }));
            self.dispatch_seq += 1;
            if vtrace::enabled() {
                vtrace::gauge("service.queue_depth", self.queue.len() as f64);
            }
        }
    }

    fn complete_next(&mut self) {
        let Reverse(done) = self.busy.pop().expect("caller checked non-empty");
        self.clock.advance_to(done.at_us);
        self.idle += 1;
        self.point.completed += 1;
        self.trace_count("service.completed");
        let sojourn = done.at_us - done.arrival.at_us;
        self.sojourns.push(sojourn);
        if done.arrival.deadline_us.is_some_and(|d| done.at_us > d) {
            self.point.deadline_misses += 1;
            self.trace_count("service.deadline_misses");
        }
        if vtrace::enabled() {
            vtrace::histogram("service.sojourn_us", sojourn);
        }
    }

    fn shed(&mut self, job: &QueuedJob, reason: ShedReason) {
        let event = ShedEvent {
            seq: self.point.shed_events.len() as u64,
            at_us: self.clock.now_us(),
            name: self.profiles[job.arrival.video].name,
            rank: job.arrival.rank,
            value: job.arrival.value,
            reason,
        };
        self.point.shed += 1;
        self.trace_count("service.shed");
        if vtrace::enabled() {
            vtrace::debug("service", || {
                format!(
                    "shed #{} {} ({}) at {} us: {}",
                    event.seq,
                    event.name,
                    event.reason.tag(),
                    event.at_us,
                    AdmissionError::Shedding
                )
            });
        }
        self.point.shed_events.push(event);
    }

    /// The typed refusal an `offer()` caller would observe; the batch
    /// simulation only needs it for telemetry, but keeping the error
    /// constructed here pins the [`AdmissionError`] mapping under test.
    fn refuse(&mut self, _job: QueuedJob, error: AdmissionError) {
        self.note_refusal(error);
    }

    fn note_refusal(&mut self, error: AdmissionError) {
        if vtrace::enabled() {
            vtrace::debug("service", || format!("refused: {error}"));
        }
    }

    fn trace_count(&self, name: &'static str) {
        if vtrace::enabled() {
            vtrace::counter(name, 1);
        }
    }
}

/// Nearest-rank percentile over sorted samples (0 when empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::service::video_profiles;
    use crate::suite::{Suite, SuiteOptions};

    fn profiles(scenario: Scenario) -> Vec<VideoProfile> {
        video_profiles(&Suite::vbench(&SuiteOptions::tiny()), scenario)
    }

    fn config(scenario: Scenario, load: f64) -> ServiceConfig {
        let mut c = ServiceConfig::new(scenario, load, 20.0);
        c.capacity = 2;
        c.queue_depth = 4;
        c
    }

    #[test]
    fn accounting_is_conservative() {
        for scenario in [Scenario::Upload, Scenario::Popular, Scenario::Live] {
            let p = profiles(scenario);
            let point = simulate_service(&config(scenario, 40.0), &p);
            // Every offered job is admitted or shed at admission; every
            // admitted job completes or is shed at dispatch.
            assert_eq!(
                point.admitted + (point.shed_events.len() as u64 - dispatch_sheds(&point)),
                point.offered,
                "{scenario}: admission accounting"
            );
            assert_eq!(
                point.completed + dispatch_sheds(&point),
                point.admitted,
                "{scenario}: dispatch accounting"
            );
            assert_eq!(point.shed, point.shed_events.len() as u64);
            assert!(point.queue_peak <= 4);
        }
    }

    /// Sheds recorded at dispatch time (Live infeasibility) rather than
    /// at admission: completed + these = admitted.
    fn dispatch_sheds(point: &ServicePoint) -> u64 {
        point.admitted.saturating_sub(point.completed)
    }

    #[test]
    fn low_load_never_sheds_and_never_degrades() {
        for scenario in [Scenario::Upload, Scenario::Popular, Scenario::Live] {
            let p = profiles(scenario);
            let sat = crate::service::estimated_saturation_load(&p, 2);
            let point = simulate_service(&config(scenario, sat * 0.2), &p);
            assert!(point.offered > 0);
            assert_eq!(point.shed, 0, "{scenario} shed below saturation");
            assert_eq!(point.completed, point.admitted);
        }
    }

    #[test]
    fn overload_degrades_before_it_drops() {
        let p = profiles(Scenario::Popular);
        let sat = crate::service::estimated_saturation_load(&p, 2);
        // Mild overload: the pre-armed controller degrades, absorbing
        // the excess without shedding anything.
        let warm = simulate_service(&config(Scenario::Popular, sat * 1.2), &p);
        assert!(warm.degraded > 0, "pre-armed degradation fires");
        assert_eq!(warm.shed, 0, "mild overload is absorbed by degradation");
        // Past even the fully-degraded saturation point: shedding
        // starts, and only lowest-value work goes. Every Popular shed
        // carries its rank and weight.
        let sat_deg = crate::service::degraded_saturation_load(&p, 2);
        let hot = simulate_service(&config(Scenario::Popular, sat_deg * 2.0), &p);
        assert!(hot.shed > 0);
        assert!(hot.shed_events.iter().all(|e| e.rank > 0 && e.value > 0.0));
        assert!(hot.shed_events.iter().all(|e| e.reason == ShedReason::LowValue));
        // The shed work is low-value: its mean rank is deep in the tail
        // relative to the admitted head-heavy draw.
        let mean_shed_rank: f64 = hot.shed_events.iter().map(|e| e.rank as f64).sum::<f64>()
            / hot.shed_events.len() as f64;
        assert!(mean_shed_rank > 50.0, "sheds come from the tail, mean rank {mean_shed_rank}");
    }

    #[test]
    fn live_sheds_are_infeasible_first_and_upload_tail_drops() {
        let live = profiles(Scenario::Live);
        let sat = crate::service::degraded_saturation_load(&live, 2);
        let point = simulate_service(&config(Scenario::Live, sat * 2.0), &live);
        assert!(point.shed > 0);
        assert!(point.shed_events.iter().all(|e| e.reason == ShedReason::Infeasible));

        let upload = profiles(Scenario::Upload);
        let sat = crate::service::degraded_saturation_load(&upload, 2);
        let point = simulate_service(&config(Scenario::Upload, sat * 2.0), &upload);
        assert!(point.shed > 0);
        assert!(point.shed_events.iter().all(|e| e.reason == ShedReason::TailDrop));
    }

    #[test]
    fn draining_refuses_late_arrivals_without_shedding_them() {
        let p = profiles(Scenario::Upload);
        let point = simulate_service(&config(Scenario::Upload, 5.0), &p);
        assert!(point.drained > 0, "the overrun window exercises draining");
        // Drained arrivals are not sheds and not offered.
        assert!(point.shed_events.len() as u64 <= point.offered);
    }

    #[test]
    fn replay_is_bit_exact() {
        let p = profiles(Scenario::Popular);
        let a = simulate_service(&config(Scenario::Popular, 30.0), &p);
        let b = simulate_service(&config(Scenario::Popular, 30.0), &p);
        assert_eq!(a.admitted_mix, b.admitted_mix);
        assert_eq!(a.shed_events.len(), b.shed_events.len());
        for (x, y) in a.shed_events.iter().zip(&b.shed_events) {
            assert_eq!(
                (x.seq, x.at_us, x.name, x.rank, x.reason),
                (y.seq, y.at_us, y.name, y.rank, y.reason)
            );
        }
        assert_eq!(
            (a.sojourn_p50_us, a.sojourn_p95_us, a.sojourn_p99_us),
            (b.sojourn_p50_us, b.sojourn_p95_us, b.sojourn_p99_us)
        );
    }

    #[test]
    #[should_panic(expected = "virtual clock moved backwards")]
    fn the_clock_rejects_time_travel() {
        let mut clock = VirtualClock::default();
        clock.advance_to(10);
        clock.advance_to(9);
    }

    #[test]
    fn effort_ladder_is_strictly_decreasing_toward_ultrafast() {
        let ladder = [
            Preset::VerySlow,
            Preset::Slow,
            Preset::Medium,
            Preset::Fast,
            Preset::VeryFast,
            Preset::UltraFast,
        ];
        for pair in ladder.windows(2) {
            assert!(effort_factor(pair[0]) > effort_factor(pair[1]));
        }
    }
}
