//! Deterministic arrival generation for the service front door.
//!
//! One base Poisson process at unit rate is generated per seed and
//! *time-scaled* by the offered load: arrival `i`'s virtual time is its
//! unit-rate time divided by the load. Two consequences make the
//! saturation study well-behaved:
//!
//! * raising the load replays the *same* arrival sequence compressed in
//!   time (a prefix-stable superset within the window), so shed rates
//!   respond to load monotonically instead of jumping between unrelated
//!   sample paths;
//! * every arrival's attributes (video, popularity rank, heaviness) are
//!   drawn from a per-arrival generator keyed on `(seed, index)` alone,
//!   so they never depend on the load or on each other.
//!
//! Popular arrivals draw a catalog rank from `vcorpus`'s power-law
//! watch-time model and carry its weight as their shed value; Live
//! arrivals carry a deadline derived from the clip's real-time pixel
//! rate ([`crate::scenario::live_deadline_secs_for`] arithmetic via the
//! profile's play-out duration) and are occasionally flagged
//! high-motion, which inflates their service demand.

use rand::rngs::SmallRng;
use rand::{process, Rng, SeedableRng};
use vcorpus::PopularityModel;

use super::{QosClass, ServiceConfig, VideoProfile};
use crate::scenario::Scenario;

/// Virtual microseconds per second.
pub(crate) const US_PER_SEC: f64 = 1_000_000.0;

/// How far past the configured duration arrivals keep coming, to
/// exercise the draining path: the window is open for `duration`, then
/// late arrivals (up to 1.25 × duration) are refused with
/// [`super::AdmissionError::Draining`].
pub(crate) const DRAIN_OVERRUN: f64 = 1.25;

/// Slack multiple a Live segment gets on its play-out duration before
/// its deadline expires: a segment is useful until the stream is about
/// to lap it.
pub(crate) const LIVE_SLACK: f64 = 2.0;

/// Probability a Live segment is high-motion (inflated service demand).
const LIVE_HEAVY_P: f64 = 0.2;

/// Service-demand multiplier for a high-motion Live segment.
pub(crate) const HEAVY_FACTOR: f64 = 1.5;

/// One offered job, fully determined at generation time.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Sequence number in the base (unit-rate) process.
    pub index: u64,
    /// Virtual arrival time in microseconds.
    pub at_us: u64,
    /// Index into the service's [`VideoProfile`] catalog slice.
    pub video: usize,
    /// Popularity rank (1-based; 0 for classes without popularity).
    pub rank: u64,
    /// Shed value: the power-law watch weight for Popular, 1.0 for
    /// classes where all jobs are equal.
    pub value: f64,
    /// Completion deadline in virtual microseconds (Live only).
    pub deadline_us: Option<u64>,
    /// High-motion segment: service demand × [`HEAVY_FACTOR`].
    pub heavy: bool,
}

/// Generates the arrival stream for one service run: unit-rate Poisson
/// times scaled by `config.offered_load`, attributes keyed per index.
/// Deterministic in `(config, profiles.len())`.
pub fn generate_arrivals(config: &ServiceConfig, profiles: &[VideoProfile]) -> Vec<Arrival> {
    assert!(!profiles.is_empty(), "service needs at least one video profile");
    assert!(config.offered_load > 0.0, "offered load must be positive");
    let class = QosClass::of(config.scenario);
    let sampler =
        (class == QosClass::Weighted).then(|| PopularityModel::default().sampler(config.catalog));
    let horizon_secs = config.duration_secs * DRAIN_OVERRUN;
    let mut base_rng = SmallRng::seed_from_u64(config.seed);
    let mut base_t = 0.0f64;
    let mut out = Vec::new();
    for index in 0u64.. {
        // Exponential(1) inter-arrival gap off the shared base-process
        // sampler (one uniform draw; bit-identical to the inline inverse
        // CDF this generator was calibrated with).
        base_t += process::exp_gap(&mut base_rng);
        let t_secs = base_t / config.offered_load;
        if t_secs > horizon_secs {
            break;
        }
        let mut attr_rng = attr_rng(config.seed, index);
        let at_us = (t_secs * US_PER_SEC).round() as u64;
        let (video, rank, value) = match &sampler {
            // Popularity decides both which video is re-transcoded and
            // how much shedding it is worth avoiding.
            Some(s) => {
                let rank = s.sample(&mut attr_rng);
                let video = ((rank - 1) % profiles.len() as u64) as usize;
                (video, rank, PopularityModel::default().watch_weight(rank))
            }
            None => (attr_rng.gen_range(0..profiles.len()), 0, 1.0),
        };
        let (deadline_us, heavy) = match config.scenario {
            Scenario::Live => {
                let deadline =
                    at_us + (profiles[video].play_secs * LIVE_SLACK * US_PER_SEC).round() as u64;
                (Some(deadline), attr_rng.gen_bool(LIVE_HEAVY_P))
            }
            _ => (None, false),
        };
        out.push(Arrival { index, at_us, video, rank, value, deadline_us, heavy });
    }
    out
}

/// The per-arrival attribute generator: keyed on `(seed, index)` alone
/// (the shared [`rand::process::substream`] layout) so attributes are
/// independent of the offered load (which only rescales arrival *times*)
/// and of every other arrival.
fn attr_rng(seed: u64, index: u64) -> SmallRng {
    process::substream(seed, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::video_profiles;
    use crate::suite::{Suite, SuiteOptions};

    fn profiles(scenario: Scenario) -> Vec<VideoProfile> {
        video_profiles(&Suite::vbench(&SuiteOptions::tiny()), scenario)
    }

    fn config(scenario: Scenario, load: f64) -> ServiceConfig {
        ServiceConfig::new(scenario, load, 10.0)
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let p = profiles(Scenario::Upload);
        let a = generate_arrivals(&config(Scenario::Upload, 2.0), &p);
        let b = generate_arrivals(&config(Scenario::Upload, 2.0), &p);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.at_us, x.video, x.rank, x.heavy), (y.at_us, y.video, y.rank, y.heavy));
        }
    }

    /// Doubling the load compresses the same base sequence: arrival `i`
    /// keeps its attributes and halves its timestamp.
    #[test]
    fn load_rescales_times_but_not_attributes() {
        let p = profiles(Scenario::Popular);
        let slow = generate_arrivals(&config(Scenario::Popular, 1.0), &p);
        let fast = generate_arrivals(&config(Scenario::Popular, 2.0), &p);
        assert!(fast.len() >= slow.len(), "higher load offers at least as many jobs");
        for (s, f) in slow.iter().zip(&fast) {
            assert_eq!((s.video, s.rank), (f.video, f.rank));
            assert!((s.value - f.value).abs() < 1e-12);
            // Rounded independently, so allow 1 us of slack.
            assert!((f.at_us as i64 - (s.at_us / 2) as i64).abs() <= 1);
        }
    }

    #[test]
    fn popular_ranks_follow_the_head_heavy_law() {
        let p = profiles(Scenario::Popular);
        let mut cfg = config(Scenario::Popular, 50.0);
        cfg.duration_secs = 40.0;
        let arrivals = generate_arrivals(&cfg, &p);
        assert!(arrivals.len() > 500);
        let head = arrivals.iter().filter(|a| a.rank <= cfg.catalog / 10).count();
        assert!(
            head * 2 > arrivals.len(),
            "top 10% of the catalog should draw most arrivals, got {head}/{}",
            arrivals.len()
        );
        assert!(arrivals.iter().all(|a| (1..=cfg.catalog).contains(&a.rank)));
        // Value is the watch weight, so ranks order values.
        let w1 = PopularityModel::default().watch_weight(1);
        assert!(arrivals.iter().all(|a| a.value <= w1));
    }

    #[test]
    fn live_arrivals_carry_deadlines_and_heavy_flags() {
        let p = profiles(Scenario::Live);
        let mut cfg = config(Scenario::Live, 20.0);
        cfg.duration_secs = 30.0;
        let arrivals = generate_arrivals(&cfg, &p);
        assert!(arrivals.iter().all(|a| a.deadline_us.is_some()));
        let heavy = arrivals.iter().filter(|a| a.heavy).count();
        assert!(heavy > 0, "some segments are high-motion");
        assert!(heavy * 2 < arrivals.len(), "most are not");
        for a in &arrivals {
            let slack = a.deadline_us.unwrap() - a.at_us;
            let play_us = (p[a.video].play_secs * LIVE_SLACK * US_PER_SEC).round() as u64;
            assert_eq!(slack, play_us);
        }
    }

    #[test]
    fn the_window_includes_the_drain_overrun() {
        let p = profiles(Scenario::Upload);
        let cfg = config(Scenario::Upload, 20.0);
        let arrivals = generate_arrivals(&cfg, &p);
        let duration_us = (cfg.duration_secs * US_PER_SEC) as u64;
        assert!(arrivals.iter().any(|a| a.at_us > duration_us), "late arrivals exercise draining");
        let horizon_us = (cfg.duration_secs * DRAIN_OVERRUN * US_PER_SEC).round() as u64;
        assert!(arrivals.iter().all(|a| a.at_us <= horizon_us + 1));
    }
}
