//! The `SAT_<scenario>.json` saturation report.
//!
//! The serializer is hand-rolled on purpose: key order is fixed, floats
//! are formatted with Rust's shortest round-trip `{:?}` (the same rule
//! the journal and trace writers use), and no map iteration order or
//! locale can leak in. Byte-identical output across worker counts and
//! machines is an acceptance criterion, not a nicety — CI diffs two
//! independently produced reports with `cmp`.

use super::sim::ServicePoint;
use super::{EncodeProof, ServiceConfig};

/// Report format version; bump on any schema change.
pub const SAT_VERSION: u32 = 1;

/// One row of the saturation study: the virtual-time outcome at one
/// offered load, reduced to rates and quantiles.
#[derive(Clone, Debug, PartialEq)]
pub struct SatPoint {
    /// Mean offered arrival rate, jobs per virtual second.
    pub offered_load: f64,
    /// Arrivals offered inside the admission window.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Admitted jobs that completed service.
    pub completed: u64,
    /// Jobs dispatched at a degraded preset.
    pub degraded: u64,
    /// Jobs shed (tail drop, low value, or infeasible).
    pub shed: u64,
    /// Late arrivals refused while draining.
    pub drained: u64,
    /// Live completions past their deadline.
    pub deadline_misses: u64,
    /// Queue high-water mark.
    pub queue_peak: usize,
    /// Median sojourn in virtual microseconds.
    pub sojourn_p50_us: u64,
    /// 95th-percentile sojourn.
    pub sojourn_p95_us: u64,
    /// 99th-percentile sojourn.
    pub sojourn_p99_us: u64,
    /// Sheds per offered job.
    pub shed_rate: f64,
    /// Admissions per offered job.
    pub admit_rate: f64,
    /// Degraded dispatches per offered job.
    pub degrade_rate: f64,
}

impl SatPoint {
    fn from_point(point: &ServicePoint) -> SatPoint {
        SatPoint {
            offered_load: point.offered_load,
            offered: point.offered,
            admitted: point.admitted,
            completed: point.completed,
            degraded: point.degraded,
            shed: point.shed,
            drained: point.drained,
            deadline_misses: point.deadline_misses,
            queue_peak: point.queue_peak,
            sojourn_p50_us: point.sojourn_p50_us,
            sojourn_p95_us: point.sojourn_p95_us,
            sojourn_p99_us: point.sojourn_p99_us,
            shed_rate: point.shed_rate(),
            admit_rate: point.admit_rate(),
            degrade_rate: point.degrade_rate(),
        }
    }
}

/// The full saturation report: configuration echo, encode proof, and
/// one [`SatPoint`] per swept load.
#[derive(Clone, Debug, PartialEq)]
pub struct SatReport {
    /// Scenario the sweep ran under.
    pub scenario: String,
    /// Virtual fleet size.
    pub capacity: usize,
    /// Class-queue bound.
    pub queue_depth: usize,
    /// Admission-window length in virtual seconds.
    pub duration_secs: f64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Popular catalog size.
    pub catalog: u64,
    /// Real-encode fingerprint over the union admitted mix.
    pub proof: EncodeProof,
    /// Sweep rows, in the order the loads were given.
    pub points: Vec<SatPoint>,
}

impl SatReport {
    /// Assembles the report from the swept points and the encode proof.
    pub fn new(config: &ServiceConfig, points: &[ServicePoint], proof: EncodeProof) -> SatReport {
        SatReport {
            scenario: config.scenario.name().to_ascii_lowercase(),
            capacity: config.capacity,
            queue_depth: config.queue_depth,
            duration_secs: config.duration_secs,
            seed: config.seed,
            catalog: config.catalog,
            proof,
            points: points.iter().map(SatPoint::from_point).collect(),
        }
    }

    /// The maximum shed rate across the sweep (the QoS-gate input).
    pub fn max_shed_rate(&self) -> f64 {
        self.points.iter().map(|p| p.shed_rate).fold(0.0, f64::max)
    }

    /// Serializes to the stable single-line JSON document (trailing
    /// newline included). Equal reports produce equal bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.points.len() * 256);
        out.push_str(&format!(
            "{{\"kind\":\"sat\",\"version\":{},\"scenario\":\"{}\",\"capacity\":{},\
             \"queue_depth\":{},\"duration_secs\":{},\"seed\":{},\"catalog\":{},\
             \"unique_encodes\":{},\"encode_crc32\":{},\"encoded_bytes\":{},\"points\":[",
            SAT_VERSION,
            self.scenario,
            self.capacity,
            self.queue_depth,
            jf64(self.duration_secs),
            self.seed,
            self.catalog,
            self.proof.unique_encodes,
            self.proof.encode_crc32,
            self.proof.encoded_bytes,
        ));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"offered_load\":{},\"offered\":{},\"admitted\":{},\"completed\":{},\
                 \"degraded\":{},\"shed\":{},\"drained\":{},\"deadline_misses\":{},\
                 \"queue_peak\":{},\"sojourn_p50_us\":{},\"sojourn_p95_us\":{},\
                 \"sojourn_p99_us\":{},\"shed_rate\":{},\"admit_rate\":{},\"degrade_rate\":{}}}",
                jf64(p.offered_load),
                p.offered,
                p.admitted,
                p.completed,
                p.degraded,
                p.shed,
                p.drained,
                p.deadline_misses,
                p.queue_peak,
                p.sojourn_p50_us,
                p.sojourn_p95_us,
                p.sojourn_p99_us,
                jf64(p.shed_rate),
                jf64(p.admit_rate),
                jf64(p.degrade_rate),
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// JSON float formatting: shortest round-trip via `{:?}`, `null` for
/// non-finite values (matching the journal writer's convention).
fn jf64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::service::simulate_service;
    use crate::service::video_profiles;
    use crate::suite::{Suite, SuiteOptions};

    fn report() -> SatReport {
        let suite = Suite::vbench(&SuiteOptions::tiny());
        let profiles = video_profiles(&suite, Scenario::Popular);
        let config = ServiceConfig::new(Scenario::Popular, 0.0, 10.0);
        let points: Vec<ServicePoint> = [5.0, 20.0]
            .iter()
            .map(|&load| {
                simulate_service(&ServiceConfig { offered_load: load, ..config }, &profiles)
            })
            .collect();
        let proof = EncodeProof { unique_encodes: 3, encode_crc32: 0xDEAD, encoded_bytes: 999 };
        SatReport::new(&config, &points, proof)
    }

    #[test]
    fn serialization_is_byte_stable() {
        let r = report();
        assert_eq!(r.to_json(), r.to_json());
        assert_eq!(r, r.clone());
    }

    #[test]
    fn the_document_parses_and_round_trips_key_fields() {
        let r = report();
        let json = r.to_json();
        let doc = vtrace::json::parse(json.trim()).expect("valid JSON");
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("sat"));
        assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(SAT_VERSION as u64));
        assert_eq!(doc.get("scenario").and_then(|v| v.as_str()), Some("popular"));
        assert_eq!(doc.get("unique_encodes").and_then(|v| v.as_u64()), Some(3));
        let points = match doc.get("points") {
            Some(vtrace::json::Value::Array(items)) => items,
            other => panic!("points should be an array, got {other:?}"),
        };
        assert_eq!(points.len(), 2);
        let first = &points[0];
        assert_eq!(first.get("offered").and_then(|v| v.as_u64()), Some(r.points[0].offered));
        assert!(first.get("shed_rate").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    fn max_shed_rate_takes_the_sweep_maximum() {
        let r = report();
        let max = r.max_shed_rate();
        assert!(r.points.iter().all(|p| p.shed_rate <= max));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(jf64(f64::NAN), "null");
        assert_eq!(jf64(1.5), "1.5");
        assert_eq!(jf64(2.0), "2.0");
    }
}
