//! The admission-controlled transcoding service: a bounded front door
//! over the executor core.
//!
//! Everything below the batch layer runs *closed* workloads: every job
//! is accepted and the farm grinds until done. A production ingest tier
//! is the opposite shape — an open arrival stream whose offered load
//! does not care about capacity — and the paper's three service
//! scenarios (Upload, Popular, Live) are exactly the QoS classes such a
//! tier must keep apart. This module adds that front door:
//!
//! * [`arrivals`] — deterministic arrival generators, seeded through
//!   `vrand`: Poisson arrivals whose popularity (for Popular) comes
//!   from `vcorpus`'s power-law watch-time model and whose deadlines
//!   (for Live) come from [`crate::scenario::live_deadline_secs_for`].
//! * [`queue`] — one bounded FIFO per QoS class. Admission never
//!   blocks: a full queue answers with a typed [`AdmissionError`].
//! * [`sim`] — the virtual-time service loop. Time is integer
//!   microseconds on a [`sim::VirtualClock`]; service demand is a
//!   deterministic model (play-out duration × per-preset effort), so
//!   every admit / degrade / shed decision — and therefore the whole
//!   saturation study — is a pure function of the configuration and
//!   replays bit-exactly at any worker count.
//! * [`report`] — the `SAT_<scenario>.json` document: admit / degrade /
//!   shed rates, queue occupancy, and sojourn-latency quantiles versus
//!   offered load, rendered by `vprof sat`.
//!
//! The overload controller degrades before it drops: rising queue
//! occupancy first downshifts presets along the resilience layer's
//! degradation ladder ([`crate::resilience::degrade_preset_by`]), which
//! genuinely adds capacity because a faster preset has a smaller
//! service demand; only a full queue sheds, and it sheds lowest-value
//! work — popularity-weighted for Popular, deadline-infeasible-first
//! for Live, tail drop for Upload. No shed is silent: each one is a
//! trace event and (when a journal is configured) a durable `shed`
//! record.
//!
//! Virtual time decides *what* runs; real encodes prove the work. After
//! the simulation, the admitted mix is deduplicated to its unique
//! (video, degradation) pairs and pushed through
//! [`crate::farm::transcode_batch_resilient`] on real worker threads.
//! The worker count only changes wall-clock time — the report embeds
//! the deterministic CRC-32 of the produced bitstreams, so a replay at
//! a different `--workers` must be byte-identical end to end.

pub mod arrivals;
pub mod queue;
pub mod report;
pub mod sim;

use std::collections::BTreeSet;

use crate::engine::Transcoder;
use crate::farm::{transcode_batch_resilient, BatchError, EngineJob, JobSource};
use crate::journal::{run_batch_journaled, JournalConfig, JournalError};
use crate::reference::reference_request_for;
use crate::resilience::{degraded_request, ResilienceConfig};
use crate::scenario::{live_deadline_secs_for, Scenario};
use crate::suite::Suite;
use vcodec::Preset;
use vsynth::SourceSpec;

pub use report::{SatPoint, SatReport, SAT_VERSION};
pub use sim::{simulate_service, ServicePoint, ShedEvent, ShedReason};

/// Which quality-of-service contract an arrival stream runs under. Each
/// paper scenario that describes a service (rather than a measurement)
/// maps to one class; the class picks the queue's shed policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QosClass {
    /// Upload ingest: all jobs are equal, a full queue tail-drops the
    /// incoming arrival ([`AdmissionError::QueueFull`]).
    Bulk,
    /// Popular re-transcode: jobs carry a watch-time value from the
    /// power-law popularity model; a full queue sheds the
    /// lowest-value work first.
    Weighted,
    /// Live segments: jobs carry deadlines; a full queue sheds the
    /// deadline-infeasible (least-slack) work first.
    Deadline,
}

impl QosClass {
    /// The class a scenario's arrival stream runs under.
    ///
    /// # Panics
    ///
    /// Panics for Vod/Platform: those scenarios score offline
    /// measurements and have no arrival process to admit.
    pub fn of(scenario: Scenario) -> QosClass {
        match scenario {
            Scenario::Upload => QosClass::Bulk,
            Scenario::Popular => QosClass::Weighted,
            Scenario::Live => QosClass::Deadline,
            other => panic!("{other} is not a service scenario (upload|popular|live)"),
        }
    }
}

/// Why an arrival was refused admission. Typed so callers (and tests)
/// can tell backpressure modes apart instead of pattern-matching
/// strings.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AdmissionError {
    /// The class queue is full and the policy does not preempt queued
    /// work (Bulk tail drop).
    QueueFull {
        /// The configured queue bound that was hit.
        depth: usize,
    },
    /// The queue is full and the incoming arrival lost the value /
    /// slack comparison against everything already queued — the service
    /// is shedding and this job was the lowest-value work offered.
    Shedding,
    /// The service is past its configured duration and drains: queued
    /// work completes, new arrivals are refused.
    Draining,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            AdmissionError::Shedding => write!(f, "shedding: offered work is lowest-value"),
            AdmissionError::Draining => write!(f, "draining: past service duration"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Configuration of one service run: the arrival model and the virtual
/// fleet it is offered to. Everything here is part of the deterministic
/// model — two runs with equal configs produce identical reports at any
/// worker count.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The arrival stream's scenario (Upload, Popular, or Live).
    pub scenario: Scenario,
    /// Mean arrival rate in jobs per virtual second.
    pub offered_load: f64,
    /// Virtual seconds the front door accepts arrivals for; after this
    /// the service drains ([`AdmissionError::Draining`]).
    pub duration_secs: f64,
    /// Virtual transcode servers (the modelled fleet size — *not* the
    /// real thread count, which never changes results).
    pub capacity: usize,
    /// Bound of the class queue; admission beyond it degrades to the
    /// shed policy.
    pub queue_depth: usize,
    /// Arrival-process seed.
    pub seed: u64,
    /// Popular catalog size: ranks are drawn from `1..=catalog` under
    /// the power-law model.
    pub catalog: u64,
}

impl ServiceConfig {
    /// A small deterministic default: 2 virtual servers, depth-8 queue,
    /// 1000-video catalog. Offered load and duration still need values.
    pub fn new(scenario: Scenario, offered_load: f64, duration_secs: f64) -> ServiceConfig {
        ServiceConfig {
            scenario,
            offered_load,
            duration_secs,
            capacity: 2,
            queue_depth: 8,
            seed: 0x5eed,
            catalog: 1000,
        }
    }
}

/// One suite video as the service model sees it: enough metadata to
/// derive service demand, deadlines, and the real encode request, with
/// no clip materialized.
#[derive(Clone, Debug)]
pub struct VideoProfile {
    /// Suite video name.
    pub name: &'static str,
    /// The synthetic source (frames render on demand for real encodes).
    pub spec: SourceSpec,
    /// Published category resolution in kilopixels (drives the
    /// reference request's native-resolution hint).
    pub kpixels: u32,
    /// Play-out duration in seconds — the service-demand basis and the
    /// Live deadline, both from the same real-time pixel-rate
    /// arithmetic as the scoring constraint.
    pub play_secs: f64,
    /// Published category entropy (bits/pixel at visually lossless) —
    /// the content-complexity feature the cost predictor consumes.
    pub entropy: f64,
    /// The scenario's reference preset for this video (the undegraded
    /// operating point the overload controller downshifts from).
    pub preset: Preset,
}

impl VideoProfile {
    /// The profile as the cost predictor sees it: resolution, length,
    /// rate, entropy, and the scenario preset.
    pub fn features(&self) -> crate::fleet::JobFeatures {
        crate::fleet::JobFeatures {
            pixels_per_frame: self.spec.resolution.pixels(),
            frames: self.spec.frames as u64,
            fps: self.spec.fps,
            entropy: self.entropy,
            preset: self.preset,
        }
    }
}

/// Builds the service's video catalog from the suite for one scenario.
/// Arrivals index into this slice; tests may truncate it to shrink the
/// encode mix.
pub fn video_profiles(suite: &Suite, scenario: Scenario) -> Vec<VideoProfile> {
    suite
        .iter()
        .map(|v| VideoProfile {
            name: v.name,
            spec: v.spec.clone(),
            kpixels: v.category.kpixels,
            play_secs: live_deadline_secs_for(v.spec.resolution, v.spec.fps, v.spec.frames),
            entropy: v.category.entropy,
            preset: reference_request_for(scenario, v.spec.resolution, v.category.kpixels).preset,
        })
        .collect()
}

/// The offered load at which the modelled fleet saturates: capacity
/// divided by the mean undegraded service demand over the catalog.
/// Deterministic in `(profiles, capacity)`, so sweep grids derived from
/// it replay bit-exactly.
pub fn estimated_saturation_load(profiles: &[VideoProfile], capacity: usize) -> f64 {
    assert!(!profiles.is_empty(), "service needs at least one video profile");
    capacity as f64 / sim::mean_service_secs(profiles, 0).max(1e-9)
}

/// Estimated saturation throughput with the degradation ladder fully
/// spent: the offered load (jobs/second) at which even maximally
/// downshifted presets keep every virtual server busy. Below this the
/// controller can absorb overload by degrading; above it, shedding is
/// steady state and climbs with load. Saturation sweeps extend past
/// this point so their shed column actually moves.
pub fn degraded_saturation_load(profiles: &[VideoProfile], capacity: usize) -> f64 {
    assert!(!profiles.is_empty(), "service needs at least one video profile");
    capacity as f64 / sim::mean_service_secs(profiles, sim::MAX_DEGRADE_NOTCHES).max(1e-9)
}

/// Deterministic proof that real transcodes backed a service run: the
/// deduplicated admitted mix, encoded once each, fingerprinted.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EncodeProof {
    /// Unique (video, degradation-notches) pairs encoded.
    pub unique_encodes: usize,
    /// CRC-32 over the per-job bitstream CRCs, in mix order — identical
    /// at any worker count by the farm's determinism contract.
    pub encode_crc32: u32,
    /// Total bitstream bytes produced.
    pub encoded_bytes: u64,
}

/// What a full service run produced: the virtual-time point plus the
/// real-encode proof.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The simulated admission/scheduling outcome.
    pub point: ServicePoint,
    /// The real-encode fingerprint for the admitted mix.
    pub proof: EncodeProof,
}

/// Errors a service run can surface: the real-encode batch failing, or
/// its durability journal rejecting the run.
#[derive(Debug)]
pub enum ServiceError {
    /// The deduplicated encode batch failed.
    Batch(BatchError),
    /// The journal layer refused or crashed the encode batch.
    Journal(JournalError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Batch(e) => write!(f, "service encode batch: {e}"),
            ServiceError::Journal(e) => write!(f, "service journal: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<BatchError> for ServiceError {
    fn from(e: BatchError) -> ServiceError {
        ServiceError::Batch(e)
    }
}

impl From<JournalError> for ServiceError {
    fn from(e: JournalError) -> ServiceError {
        ServiceError::Journal(e)
    }
}

/// Runs the service once at `config.offered_load`: simulate admission
/// in virtual time, then encode the admitted mix for real (deduplicated
/// to unique (video, notches) pairs) on `workers` OS threads. With a
/// journal, the encode batch is crash-consistent and every shed is
/// appended as a durable `shed` record after the batch commits.
///
/// # Errors
///
/// [`ServiceError`] when the encode batch or its journal fails; the
/// virtual-time simulation itself cannot fail.
pub fn run_service(
    config: &ServiceConfig,
    profiles: &[VideoProfile],
    engine: &dyn Transcoder,
    workers: usize,
    journal: Option<&JournalConfig>,
) -> Result<ServiceOutcome, ServiceError> {
    let point = simulate_service(config, profiles);
    let proof = encode_mix(config, profiles, &point.admitted_mix, engine, workers, journal)?;
    if let Some(journal) = journal {
        crate::journal::append_shed_records(&journal.path, &point.shed_events)?;
    }
    Ok(ServiceOutcome { point, proof })
}

/// Sweeps offered load and assembles the saturation report. Each sweep
/// point is an independent virtual-time run; the real encode pass runs
/// once over the union of every point's admitted mix, so the report
/// cost does not multiply with the grid.
///
/// # Errors
///
/// [`ServiceError`] when the union encode batch or its journal fails.
pub fn run_saturation(
    config: &ServiceConfig,
    loads: &[f64],
    profiles: &[VideoProfile],
    engine: &dyn Transcoder,
    workers: usize,
    journal: Option<&JournalConfig>,
) -> Result<SatReport, ServiceError> {
    let mut points = Vec::with_capacity(loads.len());
    let mut mix: BTreeSet<(usize, u32)> = BTreeSet::new();
    let mut sheds: Vec<ShedEvent> = Vec::new();
    for &load in loads {
        let point_config = ServiceConfig { offered_load: load, ..*config };
        let point = simulate_service(&point_config, profiles);
        mix.extend(point.admitted_mix.iter().copied());
        sheds.extend(point.shed_events.iter().cloned());
        points.push(point);
    }
    let proof = encode_mix(config, profiles, &mix, engine, workers, journal)?;
    if let Some(journal) = journal {
        crate::journal::append_shed_records(&journal.path, &sheds)?;
    }
    Ok(SatReport::new(config, &points, proof))
}

/// Encodes the deduplicated admitted mix through the executor core.
/// Jobs stream off their synthetic sources (nothing is materialized up
/// front) under the scenario's reference request, downshifted by the
/// overload controller's notches exactly as the virtual model assumed.
fn encode_mix(
    config: &ServiceConfig,
    profiles: &[VideoProfile],
    mix: &BTreeSet<(usize, u32)>,
    engine: &dyn Transcoder,
    workers: usize,
    journal: Option<&JournalConfig>,
) -> Result<EncodeProof, ServiceError> {
    let jobs: Vec<EngineJob> = mix
        .iter()
        .map(|&(video, notches)| {
            let p = &profiles[video];
            let request = reference_request_for(config.scenario, p.spec.resolution, p.kpixels);
            EngineJob::streaming(
                format!("{}+d{notches}", p.name),
                JobSource::Synth(p.spec.clone()),
                degraded_request(&request, notches),
            )
        })
        .collect();
    let policy = ResilienceConfig::default();
    let report = match journal {
        None => transcode_batch_resilient(engine, &jobs, workers, &policy)?,
        Some(config) => run_batch_journaled(engine, &jobs, workers, &policy, config)?,
    };
    let report = report.require_complete()?;
    // Fold the per-job bitstream CRCs (mix order) into one fingerprint:
    // equal bytes at any worker count, or the report is not replayable.
    let mut folded = Vec::with_capacity(report.results.len() * 4);
    let mut encoded_bytes = 0u64;
    for r in &report.results {
        if let Ok(outcome) = &r.outcome {
            folded.extend_from_slice(&vpack::crc32(outcome.bytes()).to_be_bytes());
            encoded_bytes += outcome.bytes().len() as u64;
        }
    }
    Ok(EncodeProof {
        unique_encodes: jobs.len(),
        encode_crc32: vpack::crc32(&folded),
        encoded_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::suite::SuiteOptions;

    fn profiles() -> Vec<VideoProfile> {
        let suite = Suite::vbench(&SuiteOptions::tiny());
        let mut p = video_profiles(&suite, Scenario::Popular);
        p.truncate(3);
        p
    }

    #[test]
    fn qos_class_maps_service_scenarios() {
        assert_eq!(QosClass::of(Scenario::Upload), QosClass::Bulk);
        assert_eq!(QosClass::of(Scenario::Popular), QosClass::Weighted);
        assert_eq!(QosClass::of(Scenario::Live), QosClass::Deadline);
    }

    #[test]
    #[should_panic(expected = "not a service scenario")]
    fn vod_has_no_arrival_process() {
        QosClass::of(Scenario::Vod);
    }

    #[test]
    fn saturation_estimate_scales_with_capacity() {
        let p = profiles();
        let one = estimated_saturation_load(&p, 1);
        let four = estimated_saturation_load(&p, 4);
        assert!(one > 0.0);
        assert!((four / one - 4.0).abs() < 1e-9);
    }

    #[test]
    fn run_service_ties_the_sim_to_real_encodes() {
        let p = profiles();
        let mut config = ServiceConfig::new(Scenario::Popular, 1.0, 4.0);
        config.capacity = 1;
        let out = run_service(&config, &p, &Engine, 2, None).expect("service run");
        assert!(out.point.offered > 0);
        assert!(out.proof.unique_encodes > 0);
        assert!(out.proof.encoded_bytes > 0);
        // Same config, different worker count: identical proof.
        let again = run_service(&config, &p, &Engine, 1, None).expect("service rerun");
        assert_eq!(out.proof, again.proof);
    }
}
