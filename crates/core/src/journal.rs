//! Crash-consistent durability journal for batch execution.
//!
//! A transcode batch is long-running cloud work: a killed process (OOM,
//! preemption, instance loss) must not forfeit the encodes that already
//! finished. This module wraps the farm scheduler in a write-ahead
//! journal — one JSONL file that records the batch *manifest* (a
//! fingerprint of the jobs, engine requests, and resilience policy,
//! fault plan included) followed by one fsync'd record per completed or
//! failed job, each carrying the [`vpack::crc32`] of its output
//! bitstream.
//!
//! On restart with [`JournalConfig::resume`], [`run_batch_journaled`]
//! replays the journal instead of re-encoding:
//!
//! * a job with a valid record is loaded back as
//!   [`JobOutcome::Replayed`] (successes) or
//!   [`crate::farm::JobError::ReplayedFailure`] (failures) — its
//!   bitstream is CRC-verified on load and byte-identical to the
//!   original encode, and zero encode work runs for it;
//! * a torn trailing line (the process died mid-append) or interleaved
//!   garbage is *quarantined*: dropped, counted, and compacted away —
//!   resume never crashes on a corrupt journal, it re-encodes exactly
//!   the jobs whose records did not survive;
//! * a manifest that does not match the offered batch (different jobs,
//!   config, or fault-plan seed) is the typed
//!   [`JournalError::ManifestMismatch`] — never silent reuse of another
//!   batch's outputs.
//!
//! Crash-consistency contract: a job's journal record is its commit
//! point. The record is appended and `fdatasync`'d *before* the job is
//! published to the batch (the farm's `after_job` hook runs under the
//! job's slot lock), so any journal state a crash can leave behind is
//! either "record durable" (job replays) or "record absent/torn" (job
//! re-encodes). Both resumes converge on the same byte-identical
//! outputs because encodes are deterministic functions of
//! `(source, request, degradation)`.
//!
//! Scripted crashes ([`vfault::CrashPoint`]) make that contract
//! testable in-process at any worker count: the driver consults
//! [`vfault::FaultPlan::decide_crash`] with the journal's *run index*
//! (the count of prior invocations recorded in the file), aborts at the
//! scripted point, and — because resume increments the run index — the
//! same plan does not re-fire on the next run.
//!
//! Multi-process execution ([`crate::exec::dispatch`]) shares this
//! exact file and commit point: worker processes append ephemeral
//! lease / expire / heartbeat records (skipped by resume scans,
//! scrubbed by compaction — they are coordination state, not results)
//! and commit the same fsync'd job records, so worker-loss recovery and
//! `--resume` are one code path.
//!
//! Every durable byte goes through the [`crate::exec::io::JournalIo`]
//! seam — appends retried on transient EIO with capped backoff (never
//! a failed fsync; see the fsync-gate rule there), compaction written
//! to a uniquely-named temp, synced, renamed, and dir-synced — so the
//! storage fault layer ([`crate::exec::FaultedIo`]) and the `vbench
//! chaos` auditor can prove this module's recovery claims under torn
//! writes, ENOSPC, lying fsyncs, and power cuts.
//!
//! Telemetry: `journal.records_written`, `journal.records_replayed`,
//! and `journal.records_quarantined` counters, a `journal.io_retries`
//! counter over transient append retries, plus a `journal.fsync_us`
//! histogram over the per-record commit latency.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::engine::Transcoder;
use crate::exec::io::{
    append_retrying, remove_stale_temps, unique_temp, DurableFile, JournalIo, StdIo,
};
use crate::exec::local::{run_engine_batch, BatchHooks};
use crate::exec::ChainResult;
use crate::farm::{
    BatchError, EngineBatchReport, EngineJob, JobError, JobOutcome, ReplayedOutcome,
};
use crate::measure::Measurement;
use crate::resilience::ResilienceConfig;
use vcodec::EncodeStats;
use vfault::{CrashPoint, FileClass};
use vhw::StageSeconds;
use vtrace::json::Value;
use vtrace::FieldValue;

/// The journal file format version this build writes and accepts.
const JOURNAL_VERSION: u64 = 1;

/// Where the journal lives and whether to replay it.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// The JSONL journal file. Created (or truncated) on a fresh run.
    pub path: PathBuf,
    /// Replay an existing journal instead of starting over: completed
    /// jobs load from their records, everything else re-encodes.
    pub resume: bool,
}

impl JournalConfig {
    /// A fresh-run configuration (no resume).
    pub fn new(path: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig { path: path.into(), resume: false }
    }

    /// Sets the resume flag.
    pub fn with_resume(mut self, resume: bool) -> JournalConfig {
        self.resume = resume;
        self
    }
}

/// Why a journaled batch could not produce a report.
#[derive(Debug)]
pub enum JournalError {
    /// The journal file could not be read, written, or synced.
    Io {
        /// What the driver was doing.
        context: String,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// The journal on disk was written by a different batch: its
    /// manifest fingerprint does not match the offered jobs + policy.
    /// Resuming would silently serve another batch's outputs, so this
    /// is fatal; re-run without `--resume` to start over.
    ManifestMismatch {
        /// The fingerprint of the offered batch.
        expected: u32,
        /// The fingerprint recorded in the journal.
        found: u32,
    },
    /// A scripted [`vfault::CrashPoint`] fault aborted the run — the
    /// in-process stand-in for the process dying. The journal is left
    /// exactly as a real crash at that point would leave it; resume
    /// with the same plan to continue.
    Crashed {
        /// The job whose crash fault fired.
        job: usize,
        /// Where in the pipeline it fired.
        point: CrashPoint,
    },
    /// The underlying batch could not run (e.g. zero workers).
    Batch(BatchError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { context, source } => write!(f, "journal {context}: {source}"),
            JournalError::ManifestMismatch { expected, found } => write!(
                f,
                "journal belongs to a different batch \
                 (manifest fingerprint {found:#010x}, expected {expected:#010x})"
            ),
            JournalError::Crashed { job, point } => {
                write!(f, "simulated crash at {point} of job {job}")
            }
            JournalError::Batch(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::Batch(e) => Some(e),
            _ => None,
        }
    }
}

/// [`crate::farm::transcode_batch_resilient`] with durability: journal
/// every completed job to `journal.path` and, when `journal.resume` is
/// set, replay an existing journal instead of re-encoding.
///
/// Resume invariant: for any prefix of completed jobs — however the
/// previous run died — the resumed batch's per-job bitstreams are
/// byte-identical (and CRC-equal) to an uninterrupted run's, replayed
/// jobs run zero encode work, and [`crate::BatchSummary::replayed`]
/// counts them.
///
/// # Errors
///
/// [`JournalError::ManifestMismatch`] when resuming a journal written
/// by a different batch; [`JournalError::Io`] on filesystem failures;
/// [`JournalError::Crashed`] when a scripted crash fault fired;
/// [`JournalError::Batch`] for underlying scheduler errors.
pub fn run_batch_journaled(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
    journal: &JournalConfig,
) -> Result<EngineBatchReport, JournalError> {
    run_batch_journaled_with_io(engine, jobs, workers, policy, journal, &StdIo)
}

/// [`run_batch_journaled`] with an explicit durable-IO layer. Production
/// callers pass [`crate::exec::StdIo`]; `vbench chaos` passes a
/// [`crate::exec::FaultedIo`] so every append, fsync, and rename the
/// journal performs can fail (or lie) on a scripted, replayable
/// schedule.
pub fn run_batch_journaled_with_io(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
    journal: &JournalConfig,
    io: &dyn JournalIo,
) -> Result<EngineBatchReport, JournalError> {
    let fingerprint = manifest_fingerprint(jobs, policy);
    let opened = open_journal(journal, fingerprint, jobs, io)?;
    if opened.replayed > 0 {
        vtrace::counter("journal.records_replayed", opened.replayed);
    }
    if opened.quarantined > 0 {
        vtrace::counter("journal.records_quarantined", opened.quarantined);
    }
    let run_index = opened.run_index;
    let plan = &policy.fault_plan;
    let writer = Mutex::new(opened.file);
    // Which scripted crash fired (there is at most one: the first one
    // aborts the batch), and any journal-append IO error.
    let crash_cell: Mutex<Option<(usize, CrashPoint)>> = Mutex::new(None);
    let io_cell: Mutex<Option<std::io::Error>> = Mutex::new(None);

    let before_job = |job: usize| -> bool {
        if plan.decide_crash(job, run_index) == Some(CrashPoint::PreEncode) {
            *crash_cell.lock().expect("crash cell") = Some((job, CrashPoint::PreEncode));
            return false;
        }
        true
    };
    let after_job = |job: usize, chain: &ChainResult| -> bool {
        match plan.decide_crash(job, run_index) {
            Some(point @ CrashPoint::PostEncode) => {
                // Died after the encode, before any journal bytes: the
                // work is lost, the journal is clean.
                *crash_cell.lock().expect("crash cell") = Some((job, point));
                false
            }
            Some(point @ CrashPoint::PreJournalFlush) => {
                // Died mid-append: leave a torn (partial, unsynced)
                // line for resume to quarantine. A disk error *during*
                // the simulated crash is a different event than the
                // crash itself — surface it through the IO cell so it
                // cannot silently change the test's meaning.
                let line = job_record_line(job, &jobs[job].name, chain);
                let torn = &line.as_bytes()[..line.len() / 2];
                let mut file = writer.lock().expect("journal writer");
                match file.append(torn) {
                    Ok(()) => *crash_cell.lock().expect("crash cell") = Some((job, point)),
                    Err(e) => *io_cell.lock().expect("io cell") = Some(e),
                }
                false
            }
            _ => {
                // One write per record (line + newline in a single
                // syscall): concurrent appenders — multi-process workers
                // share this journal in O_APPEND mode — can interleave
                // *records*, never bytes within one. Transient write
                // errors retry with capped backoff; a sync error never
                // does (the bytes it failed on are unaccounted for).
                let mut line = job_record_line(job, &jobs[job].name, chain);
                line.push('\n');
                let mut file = writer.lock().expect("journal writer");
                let t0 = Instant::now();
                let wrote =
                    append_retrying(file.as_mut(), line.as_bytes()).and_then(|_| file.sync());
                match wrote {
                    Ok(()) => {
                        vtrace::histogram("journal.fsync_us", t0.elapsed().as_micros() as u64);
                        vtrace::counter("journal.records_written", 1);
                        true
                    }
                    Err(e) => {
                        *io_cell.lock().expect("io cell") = Some(e);
                        false
                    }
                }
            }
        }
    };
    let hooks = BatchHooks {
        prefilled: opened.prefilled,
        before_job: Some(&before_job),
        after_job: Some(&after_job),
    };
    match run_engine_batch(engine, jobs, workers, policy, hooks) {
        Ok(report) => Ok(report),
        Err(BatchError::Aborted) => {
            if let Some((job, point)) = crash_cell.into_inner().expect("crash cell") {
                Err(JournalError::Crashed { job, point })
            } else if let Some(source) = io_cell.into_inner().expect("io cell") {
                Err(JournalError::Io { context: "append job record".to_string(), source })
            } else {
                Err(JournalError::Batch(BatchError::Aborted))
            }
        }
        Err(e) => Err(JournalError::Batch(e)),
    }
}

/// The batch's identity: a CRC-32 over a canonical description of every
/// job (name, request, streaming flag, deadline, source shape) and the
/// full resilience policy (fault plan and seed included). Any
/// difference that could change an output bitstream changes the
/// fingerprint.
fn manifest_fingerprint(jobs: &[EngineJob], policy: &ResilienceConfig) -> u32 {
    let mut canonical = String::new();
    for job in jobs {
        canonical.push_str(&format!(
            "{}|{:?}|{}|{:?}|{}|{}\n",
            job.name,
            job.request,
            job.stream,
            job.deadline_secs,
            job.source.frames(),
            job.source.total_pixels(),
        ));
    }
    canonical.push_str(&format!("{policy:?}"));
    vpack::crc32(canonical.as_bytes())
}

/// A journal opened (and, on resume, scanned) for one invocation.
/// `pub(crate)`: the multi-process dispatcher opens its shared journal
/// through the exact same path, so resume and worker-loss recovery
/// share one commit-point implementation.
pub(crate) struct OpenedJournal {
    /// Positioned at end-of-file, ready to append job records.
    pub(crate) file: Box<dyn DurableFile>,
    /// Replayed chains to seed the scheduler with.
    pub(crate) prefilled: Vec<(usize, ChainResult)>,
    /// This invocation's run index: the count of *prior* run records,
    /// the key scripted crashes fire on.
    pub(crate) run_index: u32,
    /// Job records successfully replayed.
    pub(crate) replayed: u64,
    /// Lines dropped as torn, corrupt, mismatched, or CRC-failed.
    pub(crate) quarantined: u64,
}

/// Opens the journal: fresh-initializes it (truncate, manifest, run
/// record) when not resuming or when nothing usable exists, otherwise
/// scans, validates the manifest, quarantines corruption, compacts if
/// needed, and appends this invocation's run record.
pub(crate) fn open_journal(
    config: &JournalConfig,
    fingerprint: u32,
    jobs: &[EngineJob],
    io: &dyn JournalIo,
) -> Result<OpenedJournal, JournalError> {
    // A writer that crashed mid-compaction (or mid-snapshot) leaves a
    // uniquely-named temp sibling behind; scrub them before this run
    // makes its own.
    remove_stale_temps(&config.path);
    let existing = if config.resume {
        match io.read(FileClass::Journal, &config.path) {
            Ok(bytes) if !bytes.is_empty() => Some(bytes),
            Ok(_) => None,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("read journal", e)),
        }
    } else {
        None
    };
    let Some(bytes) = existing else {
        let file = init_fresh(&config.path, fingerprint, jobs.len(), io)?;
        return Ok(OpenedJournal {
            file,
            prefilled: Vec::new(),
            run_index: 0,
            replayed: 0,
            quarantined: 0,
        });
    };

    let scan = scan_journal(&bytes, fingerprint, jobs)?;
    let prior_runs = scan.prior_runs;
    let replayed = scan.prefilled.len() as u64;
    // Compact whenever anything was dropped — quarantined corruption or
    // stale lease/heartbeat records from a dead dispatcher (a stale
    // lease left in place would wedge the next multi-process run) — and
    // whenever the tail is not newline-terminated (a torn line would
    // otherwise merge with the next append).
    let needs_compact = scan.quarantined > 0 || scan.ephemeral > 0 || bytes.last() != Some(&b'\n');
    let mut file = if needs_compact {
        compact(&config.path, fingerprint, jobs.len(), &scan.kept_lines, io)?
    } else {
        io.open_append(FileClass::Journal, &config.path)
            .map_err(|e| io_err("open journal for append", e))?
    };
    append_run_record(file.as_mut(), prior_runs)?;
    Ok(OpenedJournal {
        file,
        prefilled: scan.prefilled,
        run_index: prior_runs,
        replayed,
        quarantined: scan.quarantined,
    })
}

/// What a resume scan recovered from the journal bytes.
struct ScanOutcome {
    prefilled: Vec<(usize, ChainResult)>,
    prior_runs: u32,
    quarantined: u64,
    /// Valid but ephemeral coordination records (lease / expire /
    /// heartbeat) from a multi-process run: never replayed, dropped on
    /// compaction, and *not* corruption.
    ephemeral: u64,
    /// The surviving raw lines (run and job records, manifest excluded),
    /// in file order — what a compaction rewrites.
    kept_lines: Vec<String>,
}

/// Walks every journal line: validates the manifest, counts run
/// records, loads job records (last record wins for a job index), and
/// quarantines everything unreadable. Never fails on corruption — only
/// on a *valid* manifest that belongs to a different batch.
fn scan_journal(
    bytes: &[u8],
    fingerprint: u32,
    jobs: &[EngineJob],
) -> Result<ScanOutcome, JournalError> {
    // Corruption can inject arbitrary bytes; decode lossily so a bad
    // region quarantines its line rather than poisoning the whole scan.
    let text = String::from_utf8_lossy(bytes);
    let terminated = text.ends_with('\n');
    let lines: Vec<&str> = text.split('\n').collect();
    // `split` yields a trailing "" for a terminated file; drop it. An
    // unterminated final line is real (torn) content.
    let line_count = if terminated { lines.len() - 1 } else { lines.len() };

    let mut quarantined = 0u64;
    let mut ephemeral = 0u64;
    let mut prior_runs = 0u32;
    let mut manifest_seen = false;
    let mut records: Vec<Option<ChainResult>> = Vec::new();
    records.resize_with(jobs.len(), || None);
    let mut kept_lines: Vec<String> = Vec::new();

    for (index, line) in lines[..line_count].iter().enumerate() {
        let torn_tail = !terminated && index == line_count - 1;
        let parsed = match vtrace::json::parse(line) {
            Ok(v) => v,
            Err(_) => {
                quarantined += 1;
                continue;
            }
        };
        match parsed.get("kind").and_then(Value::as_str) {
            Some("manifest") if !manifest_seen => {
                let found = parsed.get("fingerprint").and_then(Value::as_u64);
                let version = parsed.get("version").and_then(Value::as_u64);
                match (found, version) {
                    (Some(found), Some(JOURNAL_VERSION)) if found as u32 == fingerprint => {
                        manifest_seen = true;
                    }
                    (Some(found), Some(JOURNAL_VERSION)) => {
                        return Err(JournalError::ManifestMismatch {
                            expected: fingerprint,
                            found: found as u32,
                        });
                    }
                    _ => quarantined += 1,
                }
            }
            // A record before any valid manifest cannot be trusted to
            // belong to this batch.
            _ if !manifest_seen => quarantined += 1,
            // Ephemeral records: multi-process coordination (lease /
            // expire / heartbeat, meaningful only while their dispatcher
            // is alive) and service shed events (telemetry about work
            // that was *refused*, so there is nothing to replay).
            // Skipped silently — they are not corruption — and not
            // kept, so compaction scrubs them before the next run
            // builds a fresh ledger.
            Some("lease" | "expire" | "hb" | "shed") if !torn_tail => ephemeral += 1,
            Some("run") if !torn_tail => {
                prior_runs += 1;
                kept_lines.push((*line).to_string());
            }
            Some("job") if !torn_tail => match load_job_record(&parsed, jobs) {
                Some(rec) => {
                    // Last record wins: a quarantined-then-re-encoded
                    // job appends a fresh record after its stale one.
                    records[rec.job] = Some(ChainResult::replayed(rec.outcome));
                    kept_lines.push((*line).to_string());
                }
                None => quarantined += 1,
            },
            // A torn tail that happens to parse is still torn: its
            // fsync never completed, so it never committed.
            _ => quarantined += 1,
        }
    }
    if !manifest_seen {
        // Nothing usable (empty, fully torn, or foreign file without a
        // parseable manifest): resume degenerates to a fresh start.
        return Ok(ScanOutcome {
            prefilled: Vec::new(),
            prior_runs: 0,
            quarantined,
            ephemeral,
            kept_lines: Vec::new(),
        });
    }
    let prefilled = records
        .into_iter()
        .enumerate()
        .filter_map(|(job, chain)| chain.map(|c| (job, c)))
        .collect();
    Ok(ScanOutcome { prefilled, prior_runs, quarantined, ephemeral, kept_lines })
}

/// A job record parsed and verified from the journal: the outcome plus
/// the resilience history and provenance the record carries.
/// `pub(crate)`: the multi-process dispatcher assembles its batch report
/// from these.
pub(crate) struct LoadedRecord {
    /// The job's index in the batch manifest.
    pub(crate) job: usize,
    /// The journaled outcome (CRC-verified success or replayed failure).
    pub(crate) outcome: Result<JobOutcome, JobError>,
    /// Attempts the recording run made.
    pub(crate) attempts: u32,
    /// Effort notches shed by deadline-miss degradation.
    pub(crate) degraded: u32,
    /// Whether any attempt missed its deadline.
    pub(crate) deadline_missed: bool,
    /// The run index that wrote the record (tagged by multi-process
    /// workers; `None` for in-process records).
    pub(crate) run: Option<u32>,
}

/// Parses and verifies one job record. `None` = quarantine it.
pub(crate) fn load_job_record(record: &Value, jobs: &[EngineJob]) -> Option<LoadedRecord> {
    let job = record.get("job").and_then(Value::as_u64)? as usize;
    let name = record.get("name").and_then(Value::as_str)?;
    if job >= jobs.len() || name != jobs[job].name {
        return None;
    }
    let attempts = record.get("attempts").and_then(Value::as_u64)? as u32;
    let degraded = record.get("degraded").and_then(Value::as_u64)? as u32;
    let deadline_missed = matches!(record.get("deadline_missed"), Some(Value::Bool(true)));
    let run = record.get("run").and_then(Value::as_u64).map(|r| r as u32);
    let outcome = match record.get("status").and_then(Value::as_str)? {
        "ok" => {
            let crc = record.get("crc32").and_then(Value::as_u64)? as u32;
            let bytes = hex_decode(record.get("bytes").and_then(Value::as_str)?)?;
            if vpack::crc32(&bytes) != crc {
                // The recorded stream does not match its checksum: the
                // record lies, so the job must re-encode.
                return None;
            }
            let f = |key: &str| record.get(key).and_then(Value::as_f64);
            let u = |key: &str| record.get(key).and_then(Value::as_u64);
            let measurement = Measurement {
                speed_pps: f("speed_pps")?,
                bitrate_bpps: f("bitrate_bpps")?,
                quality_db: f("quality_db")?,
            };
            let timings = StageSeconds {
                submission: f("submission")?,
                transfer: f("transfer")?,
                pipeline: f("pipeline")?,
            };
            let chosen_bps = match record.get("chosen_bps") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_u64()?),
            };
            let stats = EncodeStats {
                encode_seconds: f("encode_seconds")?,
                bitstream_bytes: u("bitstream_bytes")?,
                frames: u("frames")? as u32,
                sb_intra: u("sb_intra")?,
                sb_inter: u("sb_inter")?,
                sb_skip: u("sb_skip")?,
                sb_split: u("sb_split")?,
                avg_qp: f("avg_qp")?,
                kernels: Default::default(),
            };
            Ok(JobOutcome::Replayed(ReplayedOutcome {
                bytes,
                crc32: crc,
                measurement,
                timings,
                chosen_bps,
                stats,
            }))
        }
        "failed" => {
            let message = record.get("message").and_then(Value::as_str)?.to_string();
            Err(JobError::ReplayedFailure { message })
        }
        _ => return None,
    };
    Some(LoadedRecord { job, outcome, attempts, degraded, deadline_missed, run })
}

/// Creates (or truncates) the journal and commits the manifest plus the
/// first run record.
fn init_fresh(
    path: &Path,
    fingerprint: u32,
    jobs: usize,
    io: &dyn JournalIo,
) -> Result<Box<dyn DurableFile>, JournalError> {
    let mut file = io.create(FileClass::Journal, path).map_err(|e| io_err("create journal", e))?;
    append_retrying(file.as_mut(), manifest_line(fingerprint, jobs).as_bytes())
        .and_then(|_| file.sync())
        .map_err(|e| io_err("write manifest", e))?;
    append_run_record(file.as_mut(), 0)?;
    Ok(file)
}

/// Rewrites the journal as manifest + surviving lines (atomic via a
/// uniquely-named sibling temp file — synced before the rename — and a
/// parent-directory sync after it), dropping everything quarantined.
fn compact(
    path: &Path,
    fingerprint: u32,
    jobs: usize,
    kept_lines: &[String],
    io: &dyn JournalIo,
) -> Result<Box<dyn DurableFile>, JournalError> {
    let tmp = unique_temp(path);
    let mut file =
        io.create(FileClass::Journal, &tmp).map_err(|e| io_err("create compacted journal", e))?;
    let mut contents = manifest_line(fingerprint, jobs);
    for line in kept_lines {
        contents.push_str(line);
        contents.push('\n');
    }
    append_retrying(file.as_mut(), contents.as_bytes())
        .and_then(|_| file.sync())
        .map_err(|e| io_err("write compacted journal", e))?;
    drop(file);
    io.rename(FileClass::Journal, &tmp, path)
        .and_then(|_| io.sync_parent_dir(path))
        .map_err(|e| io_err("swap compacted journal", e))?;
    io.open_append(FileClass::Journal, path).map_err(|e| io_err("reopen journal", e))
}

/// Appends and syncs one run record (one per driver invocation; the
/// count of these is the crash-fault run index).
fn append_run_record(file: &mut dyn DurableFile, index: u32) -> Result<(), JournalError> {
    let line = format!("{{\"kind\":\"run\",\"index\":{index}}}\n");
    append_retrying(file, line.as_bytes())
        .and_then(|_| file.sync())
        .map_err(|e| io_err("write run record", e))
}

fn manifest_line(fingerprint: u32, jobs: usize) -> String {
    format!(
        "{{\"kind\":\"manifest\",\"version\":{JOURNAL_VERSION},\
         \"fingerprint\":{fingerprint},\"jobs\":{jobs}}}\n"
    )
}

/// Serializes one finished chain as a journal record (no trailing
/// newline). Multi-process workers extend this line with provenance
/// tags via [`tagged_job_record_line`].
pub(crate) fn job_record_line(job: usize, name: &str, chain: &ChainResult) -> String {
    let mut line = format!(
        "{{\"kind\":\"job\",\"job\":{job},\"name\":{},\"attempts\":{},\
         \"degraded\":{},\"deadline_missed\":{}",
        jstr(name),
        chain.attempts,
        chain.degraded,
        chain.deadline_missed,
    );
    match &chain.outcome {
        Ok(outcome) => {
            let m = outcome.measurement();
            let t = outcome.timings();
            let s = outcome.stats();
            let crc = vpack::crc32(outcome.bytes());
            line.push_str(&format!(
                ",\"status\":\"ok\",\"crc32\":{crc},\"speed_pps\":{},\"bitrate_bpps\":{},\
                 \"quality_db\":{},\"submission\":{},\"transfer\":{},\"pipeline\":{}",
                jf64(m.speed_pps),
                jf64(m.bitrate_bpps),
                jf64(m.quality_db),
                jf64(t.submission),
                jf64(t.transfer),
                jf64(t.pipeline),
            ));
            line.push_str(&match outcome.chosen_bps() {
                Some(bps) => format!(",\"chosen_bps\":{bps}"),
                None => ",\"chosen_bps\":null".to_string(),
            });
            line.push_str(&format!(
                ",\"encode_seconds\":{},\"bitstream_bytes\":{},\"frames\":{},\"sb_intra\":{},\
                 \"sb_inter\":{},\"sb_skip\":{},\"sb_split\":{},\"avg_qp\":{},\"bytes\":{}",
                jf64(s.encode_seconds),
                s.bitstream_bytes,
                s.frames,
                s.sb_intra,
                s.sb_inter,
                s.sb_skip,
                s.sb_split,
                jf64(s.avg_qp),
                jstr(&hex_encode(outcome.bytes())),
            ));
        }
        Err(error) => {
            line.push_str(&format!(
                ",\"status\":\"failed\",\"message\":{}",
                jstr(&error.to_string())
            ));
        }
    }
    line.push('}');
    line
}

/// [`job_record_line`] plus the multi-process provenance tags: which
/// worker wrote the record, in which run. The dispatcher uses `run` to
/// tell live results from replays; `worker` is for the per-worker
/// completion breakdown.
pub(crate) fn tagged_job_record_line(
    job: usize,
    name: &str,
    chain: &ChainResult,
    worker: usize,
    run: u32,
) -> String {
    let mut line = job_record_line(job, name, chain);
    // The line closes with '}'; splice the tags in before it.
    line.pop();
    line.push_str(&format!(",\"worker\":{worker},\"run\":{run}}}"));
    line
}

/// Serializes one service shed event as a journal record (no trailing
/// newline). Shed records are durable telemetry — "this work was
/// refused, here is why" — not replayable state: resume scans classify
/// them as ephemeral and compaction scrubs them.
pub(crate) fn shed_record_line(event: &crate::service::ShedEvent) -> String {
    format!(
        "{{\"kind\":\"shed\",\"seq\":{},\"at_us\":{},\"name\":{},\"rank\":{},\
         \"value\":{},\"reason\":{}}}",
        event.seq,
        event.at_us,
        jstr(event.name),
        event.rank,
        jf64(event.value),
        jstr(event.reason.tag()),
    )
}

/// Appends the service's shed events to an existing journal, one fsync
/// for the whole batch. The service never sheds silently: after the
/// encode batch commits, every shed decision lands here as a durable
/// `shed` record alongside the job records it displaced.
///
/// # Errors
///
/// [`JournalError::Io`] when the journal cannot be reopened or written.
pub(crate) fn append_shed_records(
    path: &std::path::Path,
    events: &[crate::service::ShedEvent],
) -> Result<(), JournalError> {
    if events.is_empty() {
        return Ok(());
    }
    let io = StdIo;
    let mut file = io
        .open_append(FileClass::Journal, path)
        .map_err(|e| io_err("reopen journal for shed records", e))?;
    let mut buf = String::with_capacity(events.len() * 96);
    for event in events {
        buf.push_str(&shed_record_line(event));
        buf.push('\n');
    }
    append_retrying(file.as_mut(), buf.as_bytes())
        .and_then(|_| file.sync())
        .map_err(|e| io_err("write shed records", e))
}

pub(crate) fn io_err(context: &str, source: std::io::Error) -> JournalError {
    JournalError::Io { context: context.to_string(), source }
}

/// The manifest fingerprint this batch would write — exposed so worker
/// processes can verify they were pointed at the journal their
/// dispatcher opened (same jobs, same policy) before leasing anything.
pub(crate) fn batch_fingerprint(jobs: &[EngineJob], policy: &ResilienceConfig) -> u32 {
    manifest_fingerprint(jobs, policy)
}

/// JSON string literal via vtrace's escaper (the same one the trace
/// sink uses, so the journal parses with [`vtrace::json`]).
fn jstr(s: &str) -> String {
    FieldValue::Str(s.to_string()).to_json()
}

/// JSON number literal with exact f64 round-trip.
fn jf64(v: f64) -> String {
    FieldValue::F64(v).to_json()
}

fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    s.as_bytes().chunks(2).map(|pair| Some(digit(pair[0])? << 4 | digit(pair[1])?)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RateMode, TranscodeRequest};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vcodec::{CodecFamily, Preset};
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::{Resolution, Video};

    /// A per-test scratch journal path, removed on drop.
    struct TempJournal(PathBuf);

    impl TempJournal {
        fn new(tag: &str) -> TempJournal {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("vbench-journal-{tag}-{}-{n}.jsonl", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempJournal(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempJournal {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(self.0.with_extension("compact-tmp"));
        }
    }

    fn source(seed: u32) -> Video {
        let res = Resolution::new(64, 48);
        let frames = (0..6)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * (3 + seed) + y * 2 + 5 * t) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(frames, 30.0)
    }

    fn jobs(n: u32) -> Vec<EngineJob> {
        (0..n)
            .map(|i| {
                EngineJob::new(
                    format!("job{i}"),
                    source(i),
                    TranscodeRequest::software(
                        CodecFamily::Avc,
                        Preset::Fast,
                        RateMode::ConstQuality { crf: 30.0 },
                    ),
                )
            })
            .collect()
    }

    fn run(
        jobs: &[EngineJob],
        policy: &ResilienceConfig,
        config: &JournalConfig,
    ) -> Result<EngineBatchReport, JournalError> {
        run_batch_journaled(&Engine, jobs, 2, policy, config)
    }

    #[test]
    fn fresh_run_journals_every_job_and_resume_replays_them() {
        let temp = TempJournal::new("fresh");
        let jobs = jobs(3);
        let policy = ResilienceConfig::default();
        let config = JournalConfig::new(temp.path());
        let first = run(&jobs, &policy, &config).expect("fresh run");
        assert_eq!(first.summary.completed, 3);
        assert_eq!(first.summary.replayed, 0);

        let resumed = run(&jobs, &policy, &config.clone().with_resume(true)).expect("resume");
        assert_eq!(resumed.summary.completed, 3);
        assert_eq!(resumed.summary.replayed, 3, "every job replays");
        assert!(resumed.cpu_secs == 0.0, "no encode work on full replay");
        for (a, b) in first.results.iter().zip(&resumed.results) {
            let (a, b) = (a.success().expect("ok"), b.success().expect("ok"));
            assert_eq!(a.bytes(), b.bytes(), "replayed bitstream byte-identical");
        }
    }

    #[test]
    fn shed_records_are_durable_telemetry_not_replay_state() {
        let temp = TempJournal::new("shed");
        let jobs = jobs(3);
        let policy = ResilienceConfig::default();
        let config = JournalConfig::new(temp.path());
        run(&jobs, &policy, &config).expect("fresh run");
        let events = [
            crate::service::ShedEvent {
                seq: 0,
                at_us: 1_500,
                name: "chicken",
                rank: 812,
                value: 0.004,
                reason: crate::service::ShedReason::LowValue,
            },
            crate::service::ShedEvent {
                seq: 1,
                at_us: 2_750,
                name: "bike",
                rank: 990,
                value: 0.003,
                reason: crate::service::ShedReason::Infeasible,
            },
        ];
        append_shed_records(temp.path(), &events).expect("append sheds");
        let text = std::fs::read_to_string(temp.path()).expect("journal readable");
        assert_eq!(text.matches("\"kind\":\"shed\"").count(), 2);
        let line = text.lines().find(|l| l.contains("\"kind\":\"shed\"")).expect("shed line");
        let parsed = vtrace::json::parse(line).expect("shed record is valid JSON");
        assert_eq!(parsed.get("reason").and_then(Value::as_str), Some("low-value"));
        assert_eq!(parsed.get("rank").and_then(Value::as_u64), Some(812));

        // Resume replays every job — shed records are ephemeral, never
        // quarantined, and compaction scrubs them.
        let resumed = run(&jobs, &policy, &config.with_resume(true)).expect("resume");
        assert_eq!(resumed.summary.completed, 3);
        assert_eq!(resumed.summary.replayed, 3, "sheds must not disturb replay");
        let compacted = std::fs::read_to_string(temp.path()).expect("journal readable");
        assert!(!compacted.contains("\"kind\":\"shed\""), "compaction scrubs shed records");
    }

    #[test]
    fn torn_final_line_is_quarantined_not_fatal() {
        let temp = TempJournal::new("torn");
        let jobs = jobs(3);
        let policy = ResilienceConfig::default();
        let config = JournalConfig::new(temp.path());
        run(&jobs, &policy, &config).expect("fresh run");
        // Tear the tail: chop the last record's line in half.
        let text = std::fs::read_to_string(temp.path()).expect("journal readable");
        let full = text.trim_end_matches('\n');
        let keep = full.len() - full.len() / 4;
        std::fs::write(temp.path(), &full.as_bytes()[..keep]).expect("tear journal");

        let resumed =
            run(&jobs, &policy, &config.clone().with_resume(true)).expect("resume survives tear");
        assert_eq!(resumed.summary.completed, 3);
        assert_eq!(resumed.summary.replayed, 2, "torn record re-encodes, others replay");
        // The compacted journal must be clean for a further resume.
        let again = run(&jobs, &policy, &config.with_resume(true)).expect("second resume");
        assert_eq!(again.summary.replayed, 3);
    }

    #[test]
    fn interleaved_garbage_bytes_are_quarantined() {
        let temp = TempJournal::new("garbage");
        let jobs = jobs(2);
        let policy = ResilienceConfig::default();
        let config = JournalConfig::new(temp.path());
        run(&jobs, &policy, &config).expect("fresh run");
        // Splice binary garbage lines between the valid records.
        let text = std::fs::read_to_string(temp.path()).expect("journal readable");
        let mut spliced = Vec::new();
        for line in text.lines() {
            spliced.extend_from_slice(line.as_bytes());
            spliced.push(b'\n');
            spliced.extend_from_slice(b"\x00\xff{{{not json\n");
        }
        std::fs::write(temp.path(), &spliced).expect("splice garbage");

        let resumed =
            run(&jobs, &policy, &config.with_resume(true)).expect("resume survives garbage");
        assert_eq!(resumed.summary.replayed, 2, "valid records still replay");
    }

    #[test]
    fn crc_mismatch_forces_reencode_of_just_that_job() {
        let temp = TempJournal::new("crc");
        let jobs = jobs(3);
        let policy = ResilienceConfig::default();
        let config = JournalConfig::new(temp.path());
        let first = run(&jobs, &policy, &config).expect("fresh run");
        // Flip one hex digit inside job 1's recorded bitstream.
        let text = std::fs::read_to_string(temp.path()).expect("journal readable");
        let tampered: Vec<String> = text
            .lines()
            .map(|line| {
                if line.contains("\"job\":1") {
                    match line.rfind("00") {
                        Some(i) => format!("{}42{}", &line[..i], &line[i + 2..]),
                        None => line.replace("\"crc32\":", "\"crc32\":1"),
                    }
                } else {
                    line.to_string()
                }
            })
            .collect();
        std::fs::write(temp.path(), tampered.join("\n") + "\n").expect("tamper journal");

        let resumed = run(&jobs, &policy, &config.with_resume(true)).expect("resume");
        assert_eq!(resumed.summary.replayed, 2, "only the untampered jobs replay");
        assert_eq!(resumed.summary.completed, 3);
        // The re-encoded job converges on the original bitstream.
        let (orig, redo) = (&first.results[1], &resumed.results[1]);
        assert!(redo.attempts > 0, "job 1 was re-encoded");
        assert_eq!(
            orig.success().expect("ok").bytes(),
            redo.success().expect("ok").bytes(),
            "re-encode is byte-identical to the original"
        );
    }

    #[test]
    fn manifest_mismatch_is_a_typed_error() {
        let temp = TempJournal::new("manifest");
        let policy = ResilienceConfig::default();
        let config = JournalConfig::new(temp.path());
        run(&jobs(2), &policy, &config).expect("fresh run");
        // Same journal, different batch (an extra job).
        let err = run(&jobs(3), &policy, &config.with_resume(true)).unwrap_err();
        assert!(
            matches!(err, JournalError::ManifestMismatch { expected, found } if expected != found),
            "got {err:?}"
        );
    }

    #[test]
    fn resume_without_existing_journal_is_a_fresh_start() {
        let temp = TempJournal::new("missing");
        let jobs = jobs(2);
        let report = run(
            &jobs,
            &ResilienceConfig::default(),
            &JournalConfig::new(temp.path()).with_resume(true),
        )
        .expect("resume of nothing runs fresh");
        assert_eq!(report.summary.completed, 2);
        assert_eq!(report.summary.replayed, 0);
    }

    #[test]
    fn journaled_failures_replay_as_failures() {
        let temp = TempJournal::new("failure");
        let jobs = jobs(2);
        let policy =
            ResilienceConfig::default().with_fault_plan(vfault::FaultPlan::new().with_permanent(1));
        let config = JournalConfig::new(temp.path());
        let first = run(&jobs, &policy, &config).expect("batch runs with a failed slot");
        assert_eq!(first.summary.failed, 1);

        let resumed = run(&jobs, &policy, &config.with_resume(true)).expect("resume");
        assert_eq!(resumed.summary.replayed, 2, "failures replay too");
        assert!(
            matches!(
                resumed.results[1].error(),
                Some(JobError::ReplayedFailure { message }) if message.contains("permanent")
            ),
            "failure message survives the journal"
        );
    }
}
