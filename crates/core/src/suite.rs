//! The vbench video suite (Table 2 of the paper).
//!
//! Fifteen videos, algorithmically selected from a commercial corpus,
//! spanning four resolutions and entropies from 0.2 to 7.7
//! bits/pixel/second. The original clips are YouTube uploads; this
//! reproduction synthesizes each one with a content generator whose class
//! and complexity are calibrated to the video's published category (see
//! DESIGN.md for the substitution argument).

use vcorpus::datasets::vbench_table2;
use vcorpus::VideoCategory;
use vframe::{Resolution, Video};
use vsynth::{Complexity, ContentClass, SourceSpec};

/// One suite entry: the published category plus the synthetic source that
/// stands in for the original clip.
#[derive(Clone, Debug)]
pub struct SuiteVideo {
    /// The paper's video name ("cat", "desktop", …).
    pub name: &'static str,
    /// Published category (resolution / framerate / entropy).
    pub category: VideoCategory,
    /// The synthetic source specification.
    pub spec: SourceSpec,
}

impl SuiteVideo {
    /// Generates the clip (deterministic).
    pub fn generate(&self) -> Video {
        self.spec.generate()
    }
}

/// Generation options for the suite.
///
/// The paper's clips are 5 seconds at native resolution — ideal for a real
/// measurement machine, heavy for CI. `scale` divides both dimensions and
/// `seconds` shortens clips, preserving each video's content class and
/// relative complexity; the *ratios* vbench scores are built on survive
/// scaling, the absolute Mpixels/s numbers do not (EXPERIMENTS.md reports
/// which scale each result used).
#[derive(Clone, Copy, Debug)]
pub struct SuiteOptions {
    /// Clip length in seconds (paper: 5.0).
    pub seconds: f64,
    /// Resolution divisor (1 = native; 4 = quarter dimensions).
    pub scale: u32,
    /// Generation seed.
    pub seed: u64,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions { seconds: 5.0, scale: 1, seed: 0x7bec }
    }
}

impl SuiteOptions {
    /// A configuration small enough for debug-mode tests: quarter-ish
    /// resolution, one second.
    pub fn tiny() -> SuiteOptions {
        SuiteOptions { seconds: 0.4, scale: 8, seed: 0x7bec }
    }

    /// A configuration for release-mode experiments: half resolution,
    /// 2 seconds.
    pub fn experiment() -> SuiteOptions {
        SuiteOptions { seconds: 2.0, scale: 4, seed: 0x7bec }
    }
}

/// The full vbench suite.
#[derive(Clone, Debug)]
pub struct Suite {
    videos: Vec<SuiteVideo>,
}

/// Content class each Table 2 video maps to, by name.
fn class_for(name: &str) -> ContentClass {
    match name {
        "desktop" | "presentation" => ContentClass::ScreenCapture,
        "bike" | "funny" => ContentClass::Animation,
        "cricket" | "house" | "girl" | "landscape" | "chicken" => ContentClass::Natural,
        "game1" | "game2" | "game3" => ContentClass::Gaming,
        "cat" | "holi" | "hall" => ContentClass::Sports,
        _ => ContentClass::Natural,
    }
}

/// Typical entropy (bits/pixel/s) of a class at its default knobs; used to
/// scale complexity toward a target entropy.
fn class_typical_entropy(class: ContentClass) -> f64 {
    match class {
        ContentClass::Slideshow => 0.1,
        ContentClass::ScreenCapture => 0.25,
        ContentClass::Animation => 1.2,
        ContentClass::Natural => 3.5,
        ContentClass::Gaming => 5.5,
        ContentClass::Sports => 8.0,
    }
}

/// Calibrates a class's complexity knobs toward a target entropy using a
/// sub-linear scaling (entropy responds roughly like knobs^1.4).
pub fn complexity_for_entropy(class: ContentClass, target_entropy: f64) -> Complexity {
    let base = class.default_complexity();
    let factor = (target_entropy / class_typical_entropy(class)).powf(0.7);
    base.scaled(factor.clamp(0.3, 2.5))
}

/// Infers a content class from an entropy value alone — used when
/// synthesizing videos for dataset profiles (Netflix/Xiph/SPEC) whose
/// members have no published content class.
pub fn class_for_entropy(entropy: f64) -> ContentClass {
    match entropy {
        e if e < 0.5 => ContentClass::ScreenCapture,
        e if e < 1.5 => ContentClass::Animation,
        e if e < 4.5 => ContentClass::Natural,
        e if e < 7.0 => ContentClass::Gaming,
        _ => ContentClass::Sports,
    }
}

/// Builds a synthetic clip specification for an arbitrary video category —
/// the generator behind dataset-profile studies (e.g. reproducing the
/// Netflix/Xiph bias overlay of Figure 5).
pub fn synthetic_for_category(
    name: &'static str,
    category: &VideoCategory,
    opts: &SuiteOptions,
) -> SuiteVideo {
    let class = class_for_entropy(category.entropy);
    let res = resolution_for(category.kpixels, opts.scale);
    let frames = ((opts.seconds * f64::from(category.fps)).round() as usize).max(2);
    let spec = SourceSpec::new(
        res,
        f64::from(category.fps),
        frames,
        class,
        opts.seed ^ (category.kpixels as u64) << 20 ^ (category.entropy * 10.0) as u64,
    )
    .with_complexity(complexity_for_entropy(class, category.entropy));
    SuiteVideo { name, category: *category, spec }
}

/// Picture dimensions for a kilopixel category at a scale divisor.
fn resolution_for(kpixels: u32, scale: u32) -> Resolution {
    let (w, h) = match kpixels {
        410 => (854u32, 480u32),
        922 => (1280, 720),
        2074 => (1920, 1080),
        8294 => (3840, 2160),
        other => {
            // Generic 16:9 reconstruction for non-ladder categories.
            let pixels = f64::from(other) * 1000.0;
            let w = (pixels * 16.0 / 9.0).sqrt().round() as u32;
            (w, (pixels / f64::from(w.max(1))).round() as u32)
        }
    };
    Resolution::new((w / scale).max(16) & !1, (h / scale).max(16) & !1)
}

impl Suite {
    /// Builds the suite at the given options.
    ///
    /// # Panics
    ///
    /// Panics if the options produce zero-length clips.
    pub fn vbench(opts: &SuiteOptions) -> Suite {
        let videos = vbench_table2()
            .videos
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let class = class_for(v.name);
                let res = resolution_for(v.category.kpixels, opts.scale);
                let frames = ((opts.seconds * f64::from(v.category.fps)).round() as usize).max(2);
                let spec = SourceSpec::new(
                    res,
                    f64::from(v.category.fps),
                    frames,
                    class,
                    opts.seed ^ ((i as u64) << 8),
                )
                .with_complexity(complexity_for_entropy(class, v.category.entropy));
                SuiteVideo { name: v.name, category: v.category, spec }
            })
            .collect();
        Suite { videos }
    }

    /// The suite entries, sorted as in Table 2 (by resolution, then
    /// entropy).
    pub fn videos(&self) -> &[SuiteVideo] {
        &self.videos
    }

    /// Looks up a video by its paper name.
    pub fn by_name(&self, name: &str) -> Option<&SuiteVideo> {
        self.videos.iter().find(|v| v.name == name)
    }

    /// Number of videos (15 for the vbench suite).
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Whether the suite is empty (never, for [`Suite::vbench`]).
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Iterates the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, SuiteVideo> {
        self.videos.iter()
    }
}

impl<'a> IntoIterator for &'a Suite {
    type Item = &'a SuiteVideo;
    type IntoIter = std::slice::Iter<'a, SuiteVideo>;

    fn into_iter(self) -> Self::IntoIter {
        self.videos.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifteen_entries() {
        let suite = Suite::vbench(&SuiteOptions::tiny());
        assert_eq!(suite.len(), 15);
        assert!(suite.by_name("desktop").is_some());
        assert!(suite.by_name("nonexistent").is_none());
    }

    #[test]
    fn resolutions_follow_table2_at_native_scale() {
        let suite = Suite::vbench(&SuiteOptions { seconds: 0.1, scale: 1, seed: 1 });
        let cat = suite.by_name("cat").unwrap();
        assert_eq!(cat.spec.resolution, Resolution::new(854, 480));
        let chicken = suite.by_name("chicken").unwrap();
        assert_eq!(chicken.spec.resolution, Resolution::new(3840, 2160));
    }

    #[test]
    fn scaled_resolutions_preserve_ordering() {
        let suite = Suite::vbench(&SuiteOptions::tiny());
        let cat = suite.by_name("cat").unwrap().spec.resolution;
        let chicken = suite.by_name("chicken").unwrap().spec.resolution;
        assert!(chicken.pixels() > cat.pixels());
    }

    #[test]
    fn frame_counts_respect_fps() {
        let suite = Suite::vbench(&SuiteOptions { seconds: 1.0, scale: 8, seed: 1 });
        assert_eq!(suite.by_name("game3").unwrap().spec.frames, 60); // 60 fps
        assert_eq!(suite.by_name("house").unwrap().spec.frames, 24); // 24 fps
    }

    #[test]
    fn low_entropy_videos_get_lower_complexity() {
        let desktop = complexity_for_entropy(ContentClass::ScreenCapture, 0.2);
        let sports = complexity_for_entropy(ContentClass::Sports, 7.7);
        assert!(desktop.motion < sports.motion);
        assert!(desktop.detail < sports.detail);
    }

    #[test]
    fn generation_is_deterministic() {
        let suite = Suite::vbench(&SuiteOptions::tiny());
        let a = suite.by_name("girl").unwrap().generate();
        let b = suite.by_name("girl").unwrap().generate();
        assert_eq!(a.frame(0), b.frame(0));
    }

    #[test]
    fn class_inference_orders_by_entropy() {
        assert_eq!(class_for_entropy(0.2), ContentClass::ScreenCapture);
        assert_eq!(class_for_entropy(1.0), ContentClass::Animation);
        assert_eq!(class_for_entropy(3.0), ContentClass::Natural);
        assert_eq!(class_for_entropy(5.0), ContentClass::Gaming);
        assert_eq!(class_for_entropy(9.0), ContentClass::Sports);
    }

    #[test]
    fn synthetic_for_category_generates() {
        let cat = vcorpus::VideoCategory::new(922, 30, 2.5);
        let sv = synthetic_for_category("probe", &cat, &SuiteOptions::tiny());
        let v = sv.generate();
        assert!(v.len() >= 2);
        assert_eq!(sv.category, cat);
    }

    #[test]
    fn generic_resolution_reconstruction_is_even() {
        let r = resolution_for(1234, 1);
        assert!(r.width().is_multiple_of(2) && r.height().is_multiple_of(2));
        let kpix_err = (f64::from(r.kpixels()) - 1234.0).abs() / 1234.0;
        assert!(kpix_err < 0.1, "kpixels {} vs 1234", r.kpixels());
    }
}
