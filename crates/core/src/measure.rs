//! The three vbench measurement axes (Section 2.3 of the paper).
//!
//! Every transcode reduces to a [`Measurement`]: speed in pixels/second,
//! bitrate in bits/pixel/second (video-length- and resolution-normalized),
//! and quality as average YCbCr PSNR in dB.

use vcodec::EncodeOutput;
use vframe::metrics::psnr_video;
use vframe::{Resolution, Video};

/// One transcode's position in the speed / size / quality space.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Measurement {
    /// Transcoding speed in pixels per second.
    pub speed_pps: f64,
    /// Bitrate in bits per pixel per second (bits/s divided by pixels per
    /// frame).
    pub bitrate_bpps: f64,
    /// Average YCbCr PSNR against the source, in dB.
    pub quality_db: f64,
}

/// A measurement axis carried a non-positive or non-finite value.
///
/// Produced by [`Measurement::try_new`]; the engine path surfaces this as
/// `TranscodeError::InvalidMeasurement` instead of panicking.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InvalidMeasurement {
    /// Which axis was invalid: `"speed"`, `"bitrate"`, or `"quality"`.
    pub axis: &'static str,
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for InvalidMeasurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} must be positive and finite, got {}", self.axis, self.value)
    }
}

impl std::error::Error for InvalidMeasurement {}

impl Measurement {
    /// Builds a measurement from raw values.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-positive or not finite. Use
    /// [`Measurement::try_new`] where the inputs are not statically known
    /// to be valid.
    pub fn new(speed_pps: f64, bitrate_bpps: f64, quality_db: f64) -> Measurement {
        match Measurement::try_new(speed_pps, bitrate_bpps, quality_db) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked constructor: every axis must be positive and finite.
    pub fn try_new(
        speed_pps: f64,
        bitrate_bpps: f64,
        quality_db: f64,
    ) -> Result<Measurement, InvalidMeasurement> {
        for (axis, value) in
            [("speed", speed_pps), ("bitrate", bitrate_bpps), ("quality", quality_db)]
        {
            if !(value.is_finite() && value > 0.0) {
                return Err(InvalidMeasurement { axis, value });
            }
        }
        Ok(Measurement { speed_pps, bitrate_bpps, quality_db })
    }

    /// Derives the measurement of a software encode: speed from measured
    /// wall time, bitrate from the produced stream, quality from the
    /// reconstruction.
    pub fn from_encode(source: &Video, out: &EncodeOutput) -> Measurement {
        let speed = out.stats.pixels_per_second(source.total_pixels());
        Measurement::new(
            speed,
            stream_bpps(source, out.bytes.len()),
            psnr_video(source, &out.recon),
        )
    }

    /// Like [`Measurement::from_encode`] but with an externally supplied
    /// speed — used by hardware models whose throughput is not the wall
    /// time of the simulation.
    pub fn from_encode_with_speed(
        source: &Video,
        out: &EncodeOutput,
        speed_pps: f64,
    ) -> Measurement {
        Measurement::new(
            speed_pps,
            stream_bpps(source, out.bytes.len()),
            psnr_video(source, &out.recon),
        )
    }

    /// Speed in megapixels per second (the unit of the paper's tables).
    pub fn speed_mpps(&self) -> f64 {
        self.speed_pps / 1e6
    }
}

/// Bitrate of a `bytes`-long stream for `source`, in bits/pixel/second.
pub fn stream_bpps(source: &Video, bytes: usize) -> f64 {
    source_bpps(source.resolution(), source.fps(), source.len(), bytes)
}

/// [`stream_bpps`] from source metadata alone — the streaming data path's
/// variant, for sources whose frames are never materialized as a
/// [`Video`]. The arithmetic is identical operation for operation, so the
/// two agree bit-for-bit on the same clip.
pub fn source_bpps(resolution: Resolution, fps: f64, frames: usize, bytes: usize) -> f64 {
    let duration_secs = frames as f64 / fps;
    let bits_per_sec = bytes as f64 * 8.0 / duration_secs;
    bits_per_sec / resolution.pixels() as f64
}

/// Ratios of a candidate measurement against a reference, oriented so that
/// **greater than 1 is better** in every dimension (Section 4.2):
/// `S = speed_new/speed_ref`, `B = bitrate_ref/bitrate_new`,
/// `Q = quality_new/quality_ref`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Ratios {
    /// Speed ratio (higher = faster than reference).
    pub s: f64,
    /// Bitrate ratio (higher = smaller output than reference).
    pub b: f64,
    /// Quality ratio (higher = better fidelity than reference).
    pub q: f64,
}

impl Ratios {
    /// Computes ratios of `new` against `reference`.
    pub fn of(new: &Measurement, reference: &Measurement) -> Ratios {
        Ratios {
            s: new.speed_pps / reference.speed_pps,
            b: reference.bitrate_bpps / new.bitrate_bpps,
            q: new.quality_db / reference.quality_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vframe::{Frame, Resolution};

    fn flat_video() -> Video {
        Video::new(vec![Frame::black(Resolution::new(64, 64)); 30], 30.0)
    }

    #[test]
    fn bpps_normalizes_by_duration_and_resolution() {
        let v = flat_video(); // 1 second, 4096 pixels/frame
                              // 512 bytes = 4096 bits over 1 s => 1 bit/pixel/s.
        assert!((stream_bpps(&v, 512) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_orientation() {
        let reference = Measurement::new(1e6, 2.0, 40.0);
        // Faster, smaller, better candidate: all ratios > 1.
        let better = Measurement::new(2e6, 1.0, 44.0);
        let r = Ratios::of(&better, &reference);
        assert!(r.s > 1.0 && r.b > 1.0 && r.q > 1.0);
        assert!((r.s - 2.0).abs() < 1e-12);
        assert!((r.b - 2.0).abs() < 1e-12);
        assert!((r.q - 1.1).abs() < 1e-12);
        // The reference against itself is all ones.
        let unit = Ratios::of(&reference, &reference);
        assert!((unit.s - 1.0).abs() < 1e-12 && (unit.b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_encode_produces_consistent_fields() {
        let v = flat_video();
        let cfg = vcodec::EncoderConfig::new(
            vcodec::CodecFamily::Avc,
            vcodec::Preset::UltraFast,
            vcodec::RateControl::ConstQuality { crf: 30.0 },
        );
        let out = vcodec::encode(&v, &cfg);
        let m = Measurement::from_encode(&v, &out);
        assert!(m.speed_pps > 0.0);
        assert!((m.bitrate_bpps - stream_bpps(&v, out.bytes.len())).abs() < 1e-12);
        assert!(m.quality_db > 30.0, "flat video should encode near-losslessly");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_measurement_rejected() {
        let _ = Measurement::new(0.0, 1.0, 30.0);
    }
}
