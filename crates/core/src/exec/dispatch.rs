//! The dispatcher half of the multi-process backend: owns the journal,
//! spawns worker processes, monitors liveness, reaps leases, and
//! assembles the batch report from the journal's durable records.
//!
//! `run_dispatch` opens (or resumes) the shared journal through the
//! exact same [`crate::journal`] path as in-process journaled execution
//! — manifest fingerprint validation, corruption quarantine, compaction
//! — then spawns `procs` worker processes that lease jobs through the
//! ledger ([`super::ledger`]) and commit fsync'd job records.
//!
//! Worker-loss recovery: the dispatcher polls the journal and
//! `waitpid`s its children. When a child exits with jobs still leased,
//! the dispatcher appends an `expire` record per dangling lease —
//! *after* the reap, so a process provably gone can never publish a
//! record for a job someone else re-leases. A surviving (or respawned)
//! worker re-claims the freed job and re-encodes it; determinism makes
//! the late output byte-identical to what the dead worker would have
//! produced. A live child whose heartbeats stop advancing for too long
//! is killed and recovered the same way.
//!
//! The final report is read back from the journal, not from worker
//! IPC: a record tagged with this invocation's run index is live work,
//! anything else is a replay — the same distinction `--resume` draws.

use std::fs::OpenOptions;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use super::io::{JournalIo, StdIo};
use super::ledger::{append_record, expire_line, replay_ledger};
use super::status;
use crate::farm::{BatchError, BatchSummary, EngineBatchReport, EngineJob, EngineJobResult};
use crate::journal::{
    batch_fingerprint, io_err, load_job_record, open_journal, JournalConfig, JournalError,
    LoadedRecord,
};
use crate::resilience::ResilienceConfig;
use vfault::FileClass;
use vtrace::json::{self, Value};

/// Journal poll cadence for the monitor loop.
const POLL: Duration = Duration::from_millis(20);
/// How long a live child's heartbeats may stall before the dispatcher
/// kills it and reclaims its leases (workers heartbeat every ~100ms).
const HEARTBEAT_STALL: Duration = Duration::from_secs(10);
/// Replacement-worker budget: a batch that keeps losing workers past
/// this is failing environmentally, not transiently.
const MAX_RESPAWNS: usize = 8;

/// How a dispatcher runs a batch across worker processes.
#[derive(Clone, Debug)]
pub struct DispatchOptions {
    /// Worker processes to keep alive (each runs its own thread pool).
    pub procs: usize,
    /// The executable to spawn as workers (normally
    /// `std::env::current_exe()` — `vbench worker`).
    pub worker_exe: PathBuf,
    /// Full worker argv (subcommand, journal path, thread count, and
    /// the job-defining flags); the dispatcher appends `--worker-id`,
    /// `--run`, and per-worker `--trace-out`.
    pub worker_args: Vec<String>,
    /// When set, worker `N` writes its trace to `{base}.w{N}` for the
    /// dispatcher to merge after its own trace is flushed.
    pub worker_trace_base: Option<String>,
    /// The shared journal (and whether to resume it).
    pub journal: JournalConfig,
    /// When set, the dispatcher periodically writes a `status.json`
    /// snapshot here (atomic temp-file rename; see [`super::status`]),
    /// plus a final snapshot when the batch completes.
    pub status_out: Option<PathBuf>,
    /// When set, the *initial wave* of workers (ids `0..procs`) is
    /// launched with `--io-fault-plan <spec>` so their journal IO runs
    /// through the storage-fault layer. Replacement workers always run
    /// clean — the respawn budget bounds fault-driven worker churn, and
    /// the chaos auditor cares that recovery converges, not that faults
    /// repeat forever.
    pub worker_io_fault_spec: Option<String>,
}

/// What a dispatch run produced: the assembled batch report plus the
/// per-worker trace files written (merge them with
/// [`merge_trace_files`] *after* the dispatcher's own trace is
/// flushed).
#[derive(Debug)]
pub struct DispatchReport {
    /// The batch outcome, assembled from the journal's durable records.
    pub report: EngineBatchReport,
    /// Trace files of every worker spawned (including replacements);
    /// entries may not exist on disk when a worker died before its
    /// trace flush.
    pub worker_traces: Vec<PathBuf>,
}

/// One live child and its liveness bookkeeping.
struct WorkerProc {
    id: usize,
    child: Child,
    hb_seen: u64,
    hb_at: Instant,
}

/// Runs `jobs` across `opts.procs` worker processes coordinating
/// through the shared journal. Blocks until every job has a durable
/// record (reaping, expiring, and replacing lost workers along the
/// way), then assembles the batch report from those records.
///
/// # Errors
///
/// [`JournalError::ManifestMismatch`] on a resume of a different
/// batch's journal, [`JournalError::Io`] on filesystem or process
/// failures (including a worker-loss cascade past the respawn budget),
/// [`JournalError::Batch`] for zero processes.
pub fn run_dispatch(
    jobs: &[EngineJob],
    policy: &ResilienceConfig,
    opts: &DispatchOptions,
) -> Result<DispatchReport, JournalError> {
    run_dispatch_with_io(jobs, policy, opts, &StdIo)
}

/// [`run_dispatch`] with an explicit durable-IO backend for the
/// dispatcher's own journal and status writes — the seam the chaos
/// auditor uses; production callers go through [`run_dispatch`].
pub fn run_dispatch_with_io(
    jobs: &[EngineJob],
    policy: &ResilienceConfig,
    opts: &DispatchOptions,
    io: &dyn JournalIo,
) -> Result<DispatchReport, JournalError> {
    if opts.procs == 0 {
        return Err(JournalError::Batch(BatchError::NoWorkers));
    }
    let started = Instant::now();
    let fingerprint = batch_fingerprint(jobs, policy);
    let opened = open_journal(&opts.journal, fingerprint, jobs, io)?;
    if opened.replayed > 0 {
        vtrace::counter("journal.records_replayed", opened.replayed);
    }
    if opened.quarantined > 0 {
        vtrace::counter("journal.records_quarantined", opened.quarantined);
    }
    let run = opened.run_index;
    // Reopen in O_APPEND mode: the handle from `open_journal` tracks its
    // own write position, which is wrong the moment workers append
    // concurrently. Expire records must land at the true end of file.
    drop(opened.file);
    let mut ledger_file = io
        .open_append(FileClass::Journal, &opts.journal.path)
        .map_err(|e| io_err("reopen journal for ledger", e))?;
    if let Some(path) = &opts.status_out {
        // Scrub temp files abandoned by a dispatcher that died mid-snapshot.
        status::remove_stale_status_temps(path);
    }

    let mut span = vtrace::span("exec.dispatch");
    let mut workers: Vec<WorkerProc> = Vec::with_capacity(opts.procs);
    let mut worker_traces: Vec<PathBuf> = Vec::new();
    let mut next_id = 0usize;
    let mut respawns = 0usize;
    let mut expired = 0u64;

    // Status snapshots every ~25 polls (~500ms): frequent enough for a
    // live view, cheap enough to never matter next to the encode work.
    const STATUS_EVERY: u32 = 25;
    let mut polls = 0u32;
    let write_status = |text: &str| {
        let Some(path) = &opts.status_out else { return };
        if let Some(snap) = status::snapshot_from_text(text) {
            let now_ms = std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            // Best-effort: a failed snapshot write must not kill the
            // batch the snapshot exists to observe.
            let _ = status::write_atomic_io(
                io,
                path,
                &snap.to_json(now_ms, started.elapsed().as_secs_f64()),
            );
        }
    };

    let result = (|| -> Result<(), JournalError> {
        for _ in 0..opts.procs {
            workers.push(spawn_worker(opts, run, &mut next_id, &mut worker_traces)?);
        }
        loop {
            let text = io
                .read(FileClass::Journal, &opts.journal.path)
                .map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
                .map_err(|e| io_err("poll journal", e))?;
            let view = replay_ledger(&text, jobs.len());
            if polls.is_multiple_of(STATUS_EVERY) || view.all_done() {
                write_status(&text);
            }
            polls += 1;
            if view.all_done() {
                return Ok(());
            }

            // Reap exited children first; only then expire their
            // leases, from a journal snapshot taken *after* the reap —
            // a dead process can append nothing further, so that
            // snapshot is guaranteed to contain its every lease.
            let mut dead: Vec<u64> = Vec::new();
            let mut i = 0;
            while i < workers.len() {
                match workers[i].child.try_wait().map_err(|e| io_err("wait for worker", e))? {
                    Some(_status) => {
                        let gone = workers.remove(i);
                        dead.push(u64::from(gone.child.id()));
                    }
                    None => {
                        let seen =
                            view.heartbeats.get(&(workers[i].id as u64)).copied().unwrap_or(0);
                        if seen > workers[i].hb_seen {
                            workers[i].hb_seen = seen;
                            workers[i].hb_at = Instant::now();
                        } else if workers[i].hb_at.elapsed() > HEARTBEAT_STALL {
                            // Stuck (alive but silent): kill it; the
                            // next iteration reaps and expires it like
                            // any other dead worker.
                            let _ = workers[i].child.kill();
                        }
                        i += 1;
                    }
                }
            }
            if !dead.is_empty() {
                let text = io
                    .read(FileClass::Journal, &opts.journal.path)
                    .map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
                    .map_err(|e| io_err("re-read journal after reap", e))?;
                let view = replay_ledger(&text, jobs.len());
                for pid in dead {
                    for (job, lease) in view.leases_of_pid(pid) {
                        append_record(ledger_file.as_mut(), &expire_line(job, lease))
                            .map_err(|e| io_err("append expire record", e))?;
                        vtrace::counter("exec.leases_expired", 1);
                        expired += 1;
                    }
                }
            }

            if workers.len() < opts.procs {
                if respawns >= MAX_RESPAWNS {
                    return Err(io_err(
                        "respawn worker",
                        std::io::Error::other(
                            "worker respawn budget exhausted with jobs outstanding",
                        ),
                    ));
                }
                respawns += 1;
                workers.push(spawn_worker(opts, run, &mut next_id, &mut worker_traces)?);
            }
            std::thread::sleep(POLL);
        }
    })();

    match result {
        Ok(()) => {
            // Batch complete: workers observe all-done and exit on
            // their own; collect them so none outlive the dispatcher.
            for mut w in workers.drain(..) {
                let _ = w.child.wait();
            }
        }
        Err(e) => {
            for mut w in workers.drain(..) {
                let _ = w.child.kill();
                let _ = w.child.wait();
            }
            return Err(e);
        }
    }

    if span.id().is_some() {
        span.record("jobs", jobs.len());
        span.record("procs", opts.procs);
        span.record("respawns", respawns as u64);
        span.record("leases_expired", expired);
    }
    drop(span);

    let report = assemble_report(jobs, &opts.journal, run, started)?;
    Ok(DispatchReport { report, worker_traces })
}

/// Spawns one worker process, assigning it the next fresh worker id
/// (replacement workers get fresh ids so their leases, heartbeats, and
/// trace files never collide with a dead predecessor's).
fn spawn_worker(
    opts: &DispatchOptions,
    run: u32,
    next_id: &mut usize,
    worker_traces: &mut Vec<PathBuf>,
) -> Result<WorkerProc, JournalError> {
    let id = *next_id;
    *next_id += 1;
    let mut cmd = Command::new(&opts.worker_exe);
    cmd.args(&opts.worker_args)
        .arg("--worker-id")
        .arg(id.to_string())
        .arg("--run")
        .arg(run.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if let Some(spec) = &opts.worker_io_fault_spec {
        // Initial wave only: replacements for fault-killed workers must
        // run clean or a deterministic fault would re-fire forever.
        if id < opts.procs {
            cmd.arg("--io-fault-plan").arg(spec);
        }
    }
    if let Some(base) = &opts.worker_trace_base {
        let trace = format!("{base}.w{id}");
        cmd.arg("--trace-out").arg(&trace);
        worker_traces.push(PathBuf::from(trace));
    }
    let child = cmd.spawn().map_err(|e| io_err("spawn worker", e))?;
    Ok(WorkerProc { id, child, hb_seen: 0, hb_at: Instant::now() })
}

/// Reads the completed journal back into an [`EngineBatchReport`]: one
/// verified record per job (last record wins), live records (tagged
/// with this run's index) contributing attempts and CPU-seconds,
/// everything else counted as replayed.
fn assemble_report(
    jobs: &[EngineJob],
    journal: &JournalConfig,
    run: u32,
    started: Instant,
) -> Result<EngineBatchReport, JournalError> {
    let text =
        std::fs::read_to_string(&journal.path).map_err(|e| io_err("read journal for report", e))?;
    let mut records: Vec<Option<LoadedRecord>> = Vec::new();
    records.resize_with(jobs.len(), || None);
    for line in text.lines() {
        let Ok(parsed) = json::parse(line) else { continue };
        if parsed.get("kind").and_then(Value::as_str) == Some("job") {
            if let Some(rec) = load_job_record(&parsed, jobs) {
                let slot = rec.job;
                records[slot] = Some(rec);
            }
        }
    }

    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let mut summary = BatchSummary::default();
    let mut results = Vec::with_capacity(jobs.len());
    let mut cpu_secs = 0.0f64;
    for (job, rec) in jobs.iter().zip(records) {
        let Some(rec) = rec else {
            // The ledger said Done for every job, but this record did
            // not verify on read-back — journal damage after commit.
            return Err(io_err(
                "load job record",
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("job '{}' has no verifiable journal record", job.name),
                ),
            ));
        };
        let live = rec.run == Some(run);
        let (attempts, degraded, deadline_missed) =
            if live { (rec.attempts, rec.degraded, rec.deadline_missed) } else { (0, 0, false) };
        match &rec.outcome {
            Ok(outcome) => {
                summary.completed += 1;
                if let Some(peak) = outcome.peak_resident_frames() {
                    summary.peak_resident_frames = summary.peak_resident_frames.max(peak);
                }
                if live {
                    cpu_secs += outcome.timings().total();
                }
            }
            Err(_) => summary.failed += 1,
        }
        summary.replayed += usize::from(!live);
        summary.retries += u64::from(attempts.saturating_sub(1));
        summary.deadline_misses += u64::from(deadline_missed);
        summary.degraded += u64::from(degraded > 0);
        results.push(EngineJobResult {
            name: job.name.clone(),
            outcome: rec.outcome,
            attempts,
            hedged: false,
            degraded,
            deadline_missed,
        });
    }
    if summary.failed > 0 {
        vtrace::counter("farm.jobs_failed", summary.failed as u64);
    }
    let total_pixels: u64 = jobs.iter().map(|j| j.source.total_pixels()).sum();
    Ok(EngineBatchReport {
        results,
        summary,
        wall_secs,
        aggregate_pps: total_pixels as f64 / wall_secs,
        cpu_secs,
    })
}

/// Appends worker trace files onto the dispatcher's flushed trace,
/// rebasing each onto the dispatcher's timebase: span ids (and
/// non-null parents) are shifted past the maximum id already in the
/// file, and every `start_us`/`t_us` is shifted by the wall-clock
/// difference between the worker's trace epoch and the dispatcher's
/// (read from the streams' header lines), so events interleave in true
/// wall-clock order. The worker's header is replaced with a copy
/// carrying `rebased_offset_us`, which is what lets `vtrace-check`
/// verify the merge stayed monotonic. Missing or empty worker files (a
/// worker killed before its trace flush) are skipped; so is any line
/// that does not parse as JSON.
pub fn merge_trace_files(main: &std::path::Path, workers: &[PathBuf]) -> std::io::Result<()> {
    let main_text = std::fs::read_to_string(main)?;
    let mut offset = max_span_id(&main_text);
    let main_epoch = header_epoch_us(&main_text).unwrap_or(0);
    let mut appended = String::new();
    for path in workers {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let local_max = max_span_id(&text);
        // Workers are spawned after the dispatcher pins its epoch, so
        // the rebase offset is non-negative on any sane clock; saturate
        // rather than corrupt the stream if wall time stepped backwards.
        let rebase = header_epoch_us(&text).unwrap_or(main_epoch).saturating_sub(main_epoch);
        for line in text.lines() {
            let Ok(parsed) = json::parse(line) else { continue };
            match parsed.get("kind").and_then(Value::as_str) {
                Some("header") => {
                    let epoch =
                        parsed.get("epoch_unix_us").and_then(Value::as_u64).unwrap_or(main_epoch);
                    let pid = parsed.get("pid").and_then(Value::as_u64).unwrap_or(0);
                    appended.push_str(&format!(
                        "{{\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":{epoch},\
                         \"pid\":{pid},\"rebased_offset_us\":{rebase}}}",
                    ));
                }
                Some("span") => {
                    let mut shifted = line.to_string();
                    bump_field(&mut shifted, "id", offset);
                    bump_field(&mut shifted, "parent", offset);
                    bump_field(&mut shifted, "start_us", rebase);
                    appended.push_str(&shifted);
                }
                Some("log") => {
                    let mut shifted = line.to_string();
                    bump_field(&mut shifted, "t_us", rebase);
                    appended.push_str(&shifted);
                }
                _ => appended.push_str(line),
            }
            appended.push('\n');
        }
        offset += local_max;
    }
    if appended.is_empty() {
        return Ok(());
    }
    let mut file = OpenOptions::new().append(true).open(main)?;
    use std::io::Write;
    file.write_all(appended.as_bytes())
}

/// The `epoch_unix_us` of a JSONL trace's header line, if present.
fn header_epoch_us(text: &str) -> Option<u64> {
    text.lines()
        .filter_map(|l| json::parse(l).ok())
        .find(|v| v.get("kind").and_then(Value::as_str) == Some("header"))
        .and_then(|v| v.get("epoch_unix_us").and_then(Value::as_u64))
}

/// The largest span id in a JSONL trace (0 when it has no spans).
fn max_span_id(text: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with("{\"kind\":\"span\""))
        .filter_map(|l| json::parse(l).ok())
        .filter_map(|v| v.get("id").and_then(Value::as_u64))
        .max()
        .unwrap_or(0)
}

/// Adds `offset` to the first `"key":<digits>` occurrence in `line`, in
/// place. Leaves the line untouched when the value is not a bare
/// number (e.g. `"parent":null`). Safe on span lines because `id` and
/// `parent` are the leading keys `to_jsonl` emits, before any
/// user-controlled field content.
fn bump_field(line: &mut String, key: &str, offset: u64) {
    let pattern = format!("\"{key}\":");
    let Some(at) = line.find(&pattern) else { return };
    let start = at + pattern.len();
    let end = start
        + line.as_bytes()[start..]
            .iter()
            .position(|b| !b.is_ascii_digit())
            .unwrap_or(line.len() - start);
    if end == start {
        return;
    }
    if let Ok(value) = line[start..end].parse::<u64>() {
        line.replace_range(start..end, &(value + offset).to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_field_shifts_id_and_respects_null_parent() {
        let mut root = r#"{"kind":"span","id":1,"parent":null,"name":"a","fields":{}}"#.to_string();
        bump_field(&mut root, "id", 10);
        bump_field(&mut root, "parent", 10);
        assert_eq!(root, r#"{"kind":"span","id":11,"parent":null,"name":"a","fields":{}}"#);

        let mut child = r#"{"kind":"span","id":2,"parent":1,"name":"b","fields":{}}"#.to_string();
        bump_field(&mut child, "id", 10);
        bump_field(&mut child, "parent", 10);
        assert_eq!(child, r#"{"kind":"span","id":12,"parent":11,"name":"b","fields":{}}"#);
    }

    #[test]
    fn max_span_id_ignores_non_span_lines() {
        let text = "{\"kind\":\"counter\",\"name\":\"x\",\"value\":9}\n\
                    {\"kind\":\"span\",\"id\":4,\"parent\":null,\"name\":\"a\",\"thread\":0,\
                     \"start_us\":0,\"dur_us\":1,\"fields\":{}}\n";
        assert_eq!(max_span_id(text), 4);
    }

    /// Merging rebases worker timestamps onto the dispatcher's
    /// timebase: the worker header gains `rebased_offset_us` equal to
    /// the epoch delta, and every span `start_us` / log `t_us` shifts
    /// by it, alongside the existing span-id bumping.
    #[test]
    fn merge_rebases_worker_headers_and_timestamps() {
        let dir = std::env::temp_dir().join(format!("vbench-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let main = dir.join("main.jsonl");
        let worker = dir.join("worker.jsonl");
        std::fs::write(
            &main,
            "{\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":1000,\"pid\":1}\n\
             {\"kind\":\"span\",\"id\":3,\"parent\":null,\"name\":\"exec.dispatch\",\"thread\":0,\
              \"start_us\":0,\"dur_us\":900,\"fields\":{}}\n",
        )
        .expect("write main");
        std::fs::write(
            &worker,
            "{\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":1250,\"pid\":2}\n\
             {\"kind\":\"span\",\"id\":1,\"parent\":null,\"name\":\"transcode\",\"thread\":0,\
              \"start_us\":40,\"dur_us\":10,\"fields\":{}}\n\
             {\"kind\":\"log\",\"level\":\"info\",\"t_us\":55,\"thread\":0,\"msg\":\"x\"}\n",
        )
        .expect("write worker");

        merge_trace_files(&main, std::slice::from_ref(&worker)).expect("merge");
        let merged = std::fs::read_to_string(&main).expect("read merged");

        // Epoch delta 1250 - 1000 = 250 µs: header records it, events
        // shift by it; the worker span id clears the main stream's max.
        assert!(merged.contains("\"rebased_offset_us\":250"), "merged:\n{merged}");
        assert!(merged.contains("\"id\":4,\"parent\":null,\"name\":\"transcode\""), "{merged}");
        assert!(merged.contains("\"start_us\":290"), "worker span not rebased:\n{merged}");
        assert!(merged.contains("\"t_us\":305"), "worker log not rebased:\n{merged}");

        // The result satisfies the monotonicity rule vtrace-check
        // enforces: each segment's events sit at or after its offset.
        let mut offset = 0;
        for line in merged.lines() {
            let v = json::parse(line).expect("merged line parses");
            match v.get("kind").and_then(Value::as_str) {
                Some("header") => {
                    offset = v.get("rebased_offset_us").and_then(Value::as_u64).unwrap_or(0);
                }
                Some("span") => {
                    let start = v.get("start_us").and_then(Value::as_u64).unwrap();
                    assert!(start >= offset, "span before segment offset: {line}");
                }
                Some("log") => {
                    let t = v.get("t_us").and_then(Value::as_u64).unwrap();
                    assert!(t >= offset, "log before segment offset: {line}");
                }
                _ => {}
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
