//! The executor core: one claim/lease/publish contract, many backends.
//!
//! Three orchestration paths used to live side by side in this crate —
//! the in-process work-stealing farm, the resilience wrapper's retry
//! machinery, and the journal's prefill/commit hooks — each with its own
//! job-claiming and result-publishing logic. This module is the single
//! core they all run on now:
//!
//! * [`WorkQueue`] — the claim/lease/publish contract. A queue hands out
//!   job indices ([`WorkQueue::claim`]), accepts finished attempt chains
//!   ([`WorkQueue::publish`]), and may demand liveness signals
//!   ([`WorkQueue::heartbeat`]) from lease-based backends.
//! * [`local`] — the in-process backend: the work-stealing scheduler
//!   over OS threads (shared atomic cursor, straggler hedging,
//!   supervisor hooks). This is the engine behind every
//!   `transcode_batch*` entry point and the journal driver, pinned
//!   byte-identical to the pre-refactor farm.
//! * [`placement`] — the cost plane's claim-order adapter: a validated
//!   job permutation ([`PlacementPlan`]) plus a [`WorkQueue`] wrapper
//!   ([`PlacedQueue`]) that dispatches in planned order while results
//!   stay in job order, so any backend honors fleet placements.
//! * [`io`] — the durable-IO seam: every byte the journal, lease
//!   ledger, and status snapshots put on disk flows through a
//!   [`io::JournalIo`] ([`io::StdIo`] in production), so the seeded
//!   storage-fault layer ([`io::FaultedIo`] + [`vfault::IoFaultPlan`])
//!   and the `vbench chaos` auditor can prove recovery under torn
//!   writes, EIO, ENOSPC, lying fsyncs, and simulated power cuts.
//! * [`ledger`] + [`worker`] + [`dispatch`] — the journal-backed
//!   multi-process backend: a `vbench dispatch` parent and N
//!   `vbench worker` children coordinate through lease + heartbeat
//!   records appended to the shared journal. The fsync'd job record
//!   stays the single commit point, so `--resume` and worker-loss
//!   recovery are the same code path: a job either has a durable record
//!   (done, replayable) or it does not (re-encode it).
//!
//! Determinism contract, shared by every backend: encodes are pure
//! functions of `(source, request, degradation)` and fault decisions key
//! on `(job, attempt)`, so *which* worker — thread or process — runs a
//! job never changes its bytes. Lease arbitration therefore only has to
//! be safe (no duplicate publishes), never fair or ordered.
//!
//! Telemetry (all backends): `exec.leases_granted` counts won claims,
//! `exec.jobs_completed` counts published results. The multi-process
//! backend adds `exec.leases_expired` (dispatcher reaped a dead
//! worker's lease), `exec.leases_reclaimed` (a surviving worker
//! re-leased an expired job), and `exec.heartbeats`; per-worker
//! completion counts ride on each worker process's `exec.worker` span.

pub mod dispatch;
pub mod io;
pub mod ledger;
pub mod local;
pub mod placement;
pub mod status;
pub mod worker;

pub use dispatch::{
    merge_trace_files, run_dispatch, run_dispatch_with_io, DispatchOptions, DispatchReport,
};
pub use io::{append_retrying, DurableFile, FaultedIo, JournalIo, StdIo};
pub use placement::{PlacedQueue, PlacementError, PlacementPlan};
pub use status::{
    snapshot_from_journal, snapshot_from_text, write_atomic, write_atomic_io, StatusSnapshot,
    WorkerStatus,
};
pub use worker::{run_worker, run_worker_with_io, WorkerOptions};

use crate::farm::{JobError, JobOutcome};

/// What one job's full attempt chain produced: the unit of work every
/// backend publishes. Produced by the attempt-chain runner (first try
/// plus retries under the resilience policy) or prefilled from a
/// durability journal on resume.
pub struct ChainResult {
    /// The transcode's outcome, or why the chain failed after its retry
    /// budget.
    pub outcome: Result<JobOutcome, JobError>,
    /// Attempts run (1 = first try succeeded; 0 = replayed from a
    /// journal, nothing ran in this process).
    pub attempts: u32,
    /// Effort notches shed by deadline-miss degradation.
    pub degraded: u32,
    /// Whether any attempt missed its deadline.
    pub deadline_missed: bool,
}

impl ChainResult {
    /// A chain prefilled from a journal: zero attempts ran in this
    /// process.
    pub fn replayed(outcome: Result<JobOutcome, JobError>) -> ChainResult {
        ChainResult { outcome, attempts: 0, degraded: 0, deadline_missed: false }
    }

    /// Whether this chain was replayed rather than run (attempt count
    /// zero is only produced by [`ChainResult::replayed`]).
    pub fn was_replayed(&self) -> bool {
        self.attempts == 0
    }
}

/// The claim/lease/publish contract every executor backend implements.
///
/// A queue owns job *indices*, never job payloads: the job list is
/// fixed up front and identical for every participant (the journal's
/// manifest fingerprint enforces this across processes), so an index is
/// a complete claim ticket.
///
/// Safety contract: `claim` returning `Some(i)` grants an exclusive
/// lease on job `i` — no other live worker holds it — and `publish`
/// commits a result at most once per job. Backends where leases can
/// outlive their holder (the journal ledger) revalidate the lease at
/// publish time and drop the result of a lease lost in the meantime.
pub trait WorkQueue {
    /// Claims a lease on the next runnable job. `None` means drained:
    /// every job is finished or will be finished by current leaseholders
    /// this queue cannot override.
    fn claim(&self) -> Option<usize>;

    /// Publishes the finished chain for a claimed job. Returns `false`
    /// when the whole batch must abort (supervisor hook demanded it, or
    /// the backend hit an unrecoverable commit error).
    fn publish(&self, job: usize, chain: ChainResult) -> bool;

    /// Liveness signal for lease-based backends; in-process queues need
    /// none.
    fn heartbeat(&self) {}
}
