//! The in-process executor backend: a work-stealing scheduler over OS
//! threads.
//!
//! [`LocalQueue`] implements the [`WorkQueue`] contract with a shared
//! atomic cursor (claim = next unresolved index) and in-memory result
//! slots (publish = first finisher wins). On top of it,
//! [`run_engine_batch`] adds what only makes sense in-process: straggler
//! hedging (a second copy of a slow job — safe because attempt chains
//! are deterministic), supervisor hooks (the journal driver's
//! prefill/commit/abort flow), and the farm's utilization telemetry.
//!
//! Every `transcode_batch*` entry point in [`crate::farm`] and the
//! journal driver run on this backend; its scheduling behavior and
//! trace-event stream are pinned byte-identical to the pre-`exec` farm.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use super::{ChainResult, WorkQueue};
use crate::engine::Transcoder;
use crate::farm::{
    BatchError, BatchSummary, EngineBatchReport, EngineJob, EngineJobResult, JobError, JobOutcome,
};
use crate::resilience::{degraded_request, FaultyTranscoder, ResilienceConfig};

/// Post-job supervisor hook: `(job index, winning chain) -> continue?`.
pub(crate) type AfterJobHook<'a> = &'a (dyn Fn(usize, &ChainResult) -> bool + Sync);

/// Supervisor hooks for [`run_engine_batch`]: the mechanism the journal
/// driver uses to persist results as they land and to simulate scripted
/// process crashes without duplicating the scheduler.
///
/// A hook returning `false` aborts the whole batch
/// ([`BatchError::Aborted`]): in-flight chains finish their current
/// attempt, no new work starts, and no report is produced.
#[derive(Default)]
pub(crate) struct BatchHooks<'a> {
    /// Pre-resolved chains, one per `(job index, result)` pair: the
    /// scheduler seeds these slots and never runs those jobs. Live jobs
    /// keep their original indices, so fault-plan decisions replay
    /// identically whether or not slots were prefilled.
    pub(crate) prefilled: Vec<(usize, ChainResult)>,
    /// Runs before a job's first attempt starts (the journal driver's
    /// pre-encode crash point).
    pub(crate) before_job: Option<&'a (dyn Fn(usize) -> bool + Sync)>,
    /// Runs once per job, for the race-winning chain only, while the
    /// job's slot lock is held (so a hedge copy can never double-fire
    /// it). This is where the journal driver appends and fsyncs the
    /// job's record.
    pub(crate) after_job: Option<AfterJobHook<'a>>,
}

/// Runs one job's full attempt chain: first attempt plus retries under
/// the policy, with fault injection, panic isolation, deadline checks,
/// backoff, and deadline-miss degradation. Pure with respect to
/// scheduling: the chain's decisions depend only on
/// `(job index, attempt)` and the outcome contents, so a hedge copy —
/// or a worker in another process — re-running the chain lands on a
/// byte-identical result.
pub(crate) fn run_attempt_chain(
    engine: &dyn Transcoder,
    job_index: usize,
    job: &EngineJob,
    policy: &ResilienceConfig,
) -> ChainResult {
    let deadline = job.deadline_secs.or(policy.job_deadline_secs);
    let mut degraded = 0u32;
    let mut deadline_missed = false;
    let mut attempt = 0u32;
    loop {
        let faulty =
            FaultyTranscoder { inner: engine, plan: &policy.fault_plan, job: job_index, attempt };
        let request = degraded_request(&job.request, degraded);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if job.stream {
                // A fresh pull stream per attempt: retries re-pull from
                // frame zero, exactly like the in-memory path re-reads
                // the clip.
                let mut source = job.source.open();
                faulty.transcode_stream(source.as_mut(), &request).map(JobOutcome::Streamed)
            } else {
                faulty.transcode(&job.source.materialize(), &request).map(JobOutcome::Full)
            }
        }));
        let failure = match caught {
            Ok(Ok(outcome)) => match deadline {
                Some(limit) if outcome.timings().total() > limit => {
                    deadline_missed = true;
                    vtrace::counter("farm.deadline_misses", 1);
                    Err(JobError::DeadlineExceeded {
                        deadline_secs: limit,
                        encode_secs: outcome.timings().total(),
                    })
                }
                _ => Ok(outcome),
            },
            Ok(Err(e)) => Err(JobError::Transcode(e)),
            Err(payload) => {
                vtrace::counter("farm.panics_caught", 1);
                Err(JobError::Panicked { message: panic_message(payload.as_ref()) })
            }
        };
        match failure {
            Ok(outcome) => {
                return ChainResult {
                    outcome: Ok(outcome),
                    attempts: attempt + 1,
                    degraded,
                    deadline_missed,
                };
            }
            Err(error) => {
                let retryable = match &error {
                    JobError::Transcode(e) => e.is_retryable(),
                    JobError::Panicked { .. } | JobError::DeadlineExceeded { .. } => true,
                    // Never produced by a live chain; replays only come
                    // from prefilled journal slots.
                    JobError::ReplayedFailure { .. } => false,
                };
                if attempt >= policy.max_retries || !retryable {
                    return ChainResult {
                        outcome: Err(error),
                        attempts: attempt + 1,
                        degraded,
                        deadline_missed,
                    };
                }
                if matches!(error, JobError::DeadlineExceeded { .. }) {
                    if policy.degrade_on_deadline_miss {
                        degraded += 1;
                        vtrace::counter("farm.degraded", 1);
                    }
                } else {
                    // Backoff applies to error/panic retries: a deadline
                    // miss already *has* a result, waiting cannot help it.
                    let wait = policy.backoff_secs(attempt + 1);
                    if wait > 0.0 {
                        vtrace::histogram("farm.backoff_wait_us", (wait * 1e6) as u64);
                        std::thread::sleep(std::time::Duration::from_secs_f64(wait));
                    }
                }
                vtrace::counter("farm.retries", 1);
                attempt += 1;
            }
        }
    }
}

/// The panic payload's message, when it carried one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-job shared state for the in-process queue.
pub(crate) struct JobSlot {
    pub(crate) result: Option<ChainResult>,
    /// When the primary copy started (hedge-eligibility clock).
    pub(crate) started_at: Option<Instant>,
    /// Whether a hedge copy has been claimed for this job.
    pub(crate) hedge_launched: bool,
}

/// The in-process [`WorkQueue`]: a shared atomic cursor hands out job
/// indices, in-memory slots take results first-finisher-wins. Claims
/// never expire (an OS thread cannot die without the whole process
/// dying), so there is no lease bookkeeping and `heartbeat` is the
/// default no-op.
pub(crate) struct LocalQueue<'a> {
    cursor: AtomicUsize,
    slots: Vec<Mutex<JobSlot>>,
    remaining: AtomicUsize,
    /// Completed-chain wall times, the hedge threshold's sample.
    chain_secs: Mutex<Vec<f64>>,
    hooks: BatchHooks<'a>,
    abort: AtomicBool,
}

impl<'a> LocalQueue<'a> {
    /// A queue over `jobs` slots, with the hooks' prefilled (replayed)
    /// chains already seeded so claims walk past them.
    pub(crate) fn new(jobs: usize, mut hooks: BatchHooks<'a>) -> LocalQueue<'a> {
        let mut slots: Vec<Mutex<JobSlot>> = (0..jobs)
            .map(|_| Mutex::new(JobSlot { result: None, started_at: None, hedge_launched: false }))
            .collect();
        let mut prefilled_count = 0usize;
        for (i, chain) in hooks.prefilled.drain(..) {
            let slot = slots[i].get_mut().expect("slot lock");
            assert!(slot.result.is_none(), "job {i} prefilled twice");
            slot.result = Some(chain);
            prefilled_count += 1;
        }
        LocalQueue {
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(jobs - prefilled_count),
            slots,
            chain_secs: Mutex::new(Vec::new()),
            hooks,
            abort: AtomicBool::new(false),
        }
    }

    /// Whether a hook or commit failure demanded a batch abort.
    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    fn request_abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    /// Unresolved jobs (claimed-but-unpublished or never claimed).
    fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Fires the supervisor's pre-job hook for a claimed index; `false`
    /// aborts the batch.
    fn before_job(&self, job: usize) -> bool {
        match self.hooks.before_job {
            Some(before) => before(job),
            None => true,
        }
    }

    /// Marks the primary copy's start for the hedge-eligibility clock.
    fn mark_started(&self, job: usize, t0: Instant) {
        self.slots[job].lock().expect("slot lock").started_at = Some(t0);
    }

    /// [`WorkQueue::publish`] with the finishing copy's own start time,
    /// so hedge finishers contribute their true chain wall time to the
    /// hedge threshold sample.
    fn publish_timed(&self, job: usize, t0: Instant, chain: ChainResult) -> bool {
        {
            let mut s = self.slots[job].lock().expect("slot lock");
            if s.result.is_some() {
                // The other copy won the race. Both copies ran the
                // identical deterministic attempt sequence, so nothing
                // is lost.
                vtrace::counter("farm.hedge_losses", 1);
                return true;
            }
            if let Some(after) = self.hooks.after_job {
                if !after(job, &chain) {
                    return false;
                }
            }
            s.result = Some(chain);
        }
        vtrace::counter("exec.jobs_completed", 1);
        self.chain_secs.lock().expect("chain times lock").push(t0.elapsed().as_secs_f64());
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        true
    }

    /// Finds and claims one hedge candidate: an unfinished job whose
    /// primary has been running longer than the policy threshold and
    /// that has no hedge yet. Returns its index, with the claim recorded
    /// so no second hedge launches.
    fn claim_hedge(&self, hedge: &crate::resilience::HedgePolicy) -> Option<usize> {
        let threshold = {
            let times = self.chain_secs.lock().expect("chain times lock");
            if times.len() < hedge.min_samples.max(1) {
                return None;
            }
            let mut sorted = times.clone();
            drop(times);
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite chain times"));
            let q = hedge.quantile.clamp(0.0, 1.0);
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx] * hedge.factor
        };
        for (i, slot) in self.slots.iter().enumerate() {
            let mut s = slot.lock().expect("slot lock");
            if s.result.is_none() && !s.hedge_launched {
                if let Some(t0) = s.started_at {
                    if t0.elapsed().as_secs_f64() > threshold {
                        s.hedge_launched = true;
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    /// Consumes the queue into its per-job slots for report assembly.
    fn into_slots(self) -> Vec<JobSlot> {
        self.slots.into_iter().map(|s| s.into_inner().expect("slot lock")).collect()
    }
}

impl WorkQueue for LocalQueue<'_> {
    fn claim(&self) -> Option<usize> {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.slots.len() {
                return None;
            }
            // Prefilled (replayed) slots are already resolved; the
            // cursor just walks past them.
            if self.slots[i].lock().expect("slot lock").result.is_some() {
                continue;
            }
            vtrace::counter("exec.leases_granted", 1);
            return Some(i);
        }
    }

    fn publish(&self, job: usize, chain: ChainResult) -> bool {
        let t0 = self.slots[job].lock().expect("slot lock").started_at;
        self.publish_timed(job, t0.unwrap_or_else(Instant::now), chain)
    }
}

/// The full scheduler behind `transcode_batch_resilient`, with
/// supervisor hooks: prefilled (replayed) slots, per-job callbacks, and
/// cooperative abort. The journal driver is the only other caller.
pub(crate) fn run_engine_batch(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
    hooks: BatchHooks<'_>,
) -> Result<EngineBatchReport, BatchError> {
    if workers == 0 {
        return Err(BatchError::NoWorkers);
    }
    let spawned = workers.min(jobs.len());
    let mut batch_span = vtrace::span("farm.batch");
    let batch_id = batch_span.id();
    let started = Instant::now();
    let hedges_launched = AtomicU64::new(0);
    let busy_us = AtomicU64::new(0);
    let queue = LocalQueue::new(jobs.len(), hooks);

    std::thread::scope(|scope| {
        for _ in 0..spawned {
            scope.spawn(|| {
                // Parent is passed explicitly: the batch span lives on the
                // main thread's stack, invisible to this thread's.
                let mut worker_span = vtrace::span_with_parent("farm.worker", batch_id);
                let mut jobs_done = 0u64;
                loop {
                    if queue.aborted() {
                        break;
                    }
                    if let Some(i) = queue.claim() {
                        if !queue.before_job(i) {
                            queue.request_abort();
                            break;
                        }
                        if vtrace::enabled() {
                            // Queue wait: how long the job sat between
                            // batch start and this worker picking it up.
                            vtrace::histogram(
                                "farm.queue_wait_us",
                                started.elapsed().as_micros() as u64,
                            );
                            if jobs_done > 0 {
                                // Every grab after a worker's first is a
                                // pull from the shared queue.
                                vtrace::counter("farm.steals", 1);
                            }
                        }
                        let t0 = Instant::now();
                        queue.mark_started(i, t0);
                        let chain = run_attempt_chain(engine, i, &jobs[i], policy);
                        busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                        jobs_done += 1;
                        if !queue.publish_timed(i, t0, chain) {
                            queue.request_abort();
                            break;
                        }
                        continue;
                    }
                    // Primary queue drained: hedge stragglers, or exit
                    // when everything is done.
                    if queue.remaining() == 0 {
                        break;
                    }
                    let Some(hedge) = policy.hedge else { break };
                    match queue.claim_hedge(&hedge) {
                        Some(h) => {
                            vtrace::counter("farm.hedges", 1);
                            hedges_launched.fetch_add(1, Ordering::Relaxed);
                            let t0 = Instant::now();
                            let chain = run_attempt_chain(engine, h, &jobs[h], policy);
                            busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                            if !queue.publish_timed(h, t0, chain) {
                                queue.request_abort();
                                break;
                            }
                        }
                        // No straggler past the threshold yet: let the
                        // in-flight primaries advance before rescanning.
                        None => std::thread::sleep(std::time::Duration::from_micros(200)),
                    }
                }
                if worker_span.id().is_some() {
                    worker_span.record("jobs", jobs_done);
                    vtrace::counter("farm.jobs_completed", jobs_done);
                }
            });
        }
    });

    if queue.aborted() {
        return Err(BatchError::Aborted);
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let mut results = Vec::with_capacity(jobs.len());
    let mut summary =
        BatchSummary { hedges: hedges_launched.load(Ordering::Relaxed), ..BatchSummary::default() };
    for (job, slot) in jobs.iter().zip(queue.into_slots()) {
        // Invariant: the scope joined every worker and `remaining` hit
        // zero only after every slot was filled.
        let chain = slot.result.expect("every job resolved");
        match &chain.outcome {
            Ok(outcome) => {
                summary.completed += 1;
                if let Some(peak) = outcome.peak_resident_frames() {
                    summary.peak_resident_frames = summary.peak_resident_frames.max(peak);
                }
            }
            Err(_) => summary.failed += 1,
        }
        summary.replayed += usize::from(chain.was_replayed());
        summary.retries += u64::from(chain.attempts.saturating_sub(1));
        summary.deadline_misses += u64::from(chain.deadline_missed);
        summary.degraded += u64::from(chain.degraded > 0);
        if matches!(chain.outcome, Err(JobError::Panicked { .. })) {
            summary.panics += 1;
        }
        results.push(EngineJobResult {
            name: job.name.clone(),
            outcome: chain.outcome,
            attempts: chain.attempts,
            hedged: slot.hedge_launched,
            degraded: chain.degraded,
            deadline_missed: chain.deadline_missed,
        });
    }
    if summary.failed > 0 {
        vtrace::counter("farm.jobs_failed", summary.failed as u64);
    }
    if batch_span.id().is_some() {
        batch_span.record("jobs", jobs.len());
        batch_span.record("workers", spawned);
        batch_span.record("failed", summary.failed as u64);
        batch_span.record("retries", summary.retries);
        if summary.peak_resident_frames > 0 {
            vtrace::gauge("farm.peak_resident_frames", summary.peak_resident_frames as f64);
        }
        let utilization =
            busy_us.load(Ordering::Relaxed) as f64 / 1e6 / (spawned.max(1) as f64 * wall_secs);
        vtrace::gauge("farm.batch_utilization", utilization);
    }
    drop(batch_span);
    let total_pixels: u64 = jobs.iter().map(|j| j.source.total_pixels()).sum();
    // Replayed jobs carry the *original* run's timings; only work done in
    // this process counts as CPU-seconds here.
    let cpu_secs: f64 = results
        .iter()
        .filter(|r| r.attempts > 0)
        .filter_map(|r| r.success())
        .map(|o| o.timings().total())
        .sum();
    Ok(EngineBatchReport {
        results,
        summary,
        wall_secs,
        aggregate_pps: total_pixels as f64 / wall_secs,
        cpu_secs,
    })
}
