//! The worker half of the multi-process backend: claims jobs through
//! the shared journal's lease ledger, encodes them, commits records.
//!
//! A worker process is one [`WorkQueue`] participant with
//! `opts.threads` encoding threads. Claims are optimistic: append a
//! lease record, re-read, and keep the job only if that lease is the
//! current holder (first lease in file order wins — see
//! [`super::ledger`]). Publishing revalidates the lease and then
//! appends the job record with a single fsync'd write: the identical
//! commit point the in-process journal driver uses, so a dispatcher
//! crash or `--resume` recovers worker-committed jobs the same way.
//!
//! Workers never compact, never expire leases, and never decide a job
//! failed permanently on someone else's behalf — the dispatcher owns
//! lifecycle; a worker that loses its lease mid-encode simply drops its
//! (byte-identical, deterministic) result, exactly like a losing hedge
//! copy in the in-process backend.
//!
//! The scripted [`CrashPoint::WorkerKill`] fault hooks in right after a
//! won claim: if the plan kills this job in this run *and* ours is the
//! first lease the job ever had, the whole process dies on the spot
//! (`std::process::abort`), leaving the lease dangling for the
//! dispatcher to reap — the one-shot first-lease rule keeps the
//! respawned or surviving worker from re-firing it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use super::io::{append_retrying, DurableFile, JournalIo, StdIo};
use super::ledger::{self, LeaseId};
use super::local::run_attempt_chain;
use super::{ChainResult, WorkQueue};
use crate::engine::Transcoder;
use crate::farm::EngineJob;
use crate::journal::{self, JournalError};
use crate::resilience::ResilienceConfig;
use vfault::{CrashPoint, FileClass};
use vtrace::json::{self, Value};

/// How a worker process attaches to its dispatcher's journal.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// The shared journal file (must already hold the dispatcher's
    /// manifest).
    pub journal: PathBuf,
    /// This worker's dispatcher-assigned id (tagged into leases,
    /// heartbeats, and job records).
    pub worker_id: usize,
    /// The dispatcher's journal run index — workers tag their records
    /// with it and key scripted faults on it, exactly like the
    /// in-process driver.
    pub run: u32,
    /// Encoding threads in this process.
    pub threads: usize,
}

/// The journal-backed [`WorkQueue`]: lease arbitration over the shared
/// file, fsync'd job records as publishes.
struct JournalQueue<'a> {
    io: &'a dyn JournalIo,
    path: PathBuf,
    writer: Mutex<Box<dyn DurableFile>>,
    jobs: &'a [EngineJob],
    policy: &'a ResilienceConfig,
    worker: u64,
    pid: u64,
    run: u32,
    nonce: AtomicU64,
    hb_seq: AtomicU64,
    completed: AtomicU64,
    /// The lease each claimed-but-unpublished job was won with, so a
    /// publish can verify it still holds *this* lease (not a newer one
    /// granted after an expiry).
    active: Mutex<Vec<Option<LeaseId>>>,
    io_error: Mutex<Option<std::io::Error>>,
}

impl JournalQueue<'_> {
    fn read_journal(&self) -> Option<String> {
        match self.io.read(FileClass::Journal, &self.path) {
            Ok(bytes) => Some(String::from_utf8_lossy(&bytes).into_owned()),
            Err(e) => {
                self.fail_io(e);
                None
            }
        }
    }

    fn append(&self, line: &str) -> bool {
        let mut file = self.writer.lock().expect("journal writer");
        match ledger::append_record(file.as_mut(), line) {
            Ok(()) => true,
            Err(e) => {
                drop(file);
                self.fail_io(e);
                false
            }
        }
    }

    fn fail_io(&self, e: std::io::Error) {
        let mut cell = self.io_error.lock().expect("io cell");
        if cell.is_none() {
            *cell = Some(e);
        }
    }

    fn failed(&self) -> bool {
        self.io_error.lock().expect("io cell").is_some()
    }
}

impl WorkQueue for JournalQueue<'_> {
    fn claim(&self) -> Option<usize> {
        loop {
            if self.failed() {
                return None;
            }
            let text = self.read_journal()?;
            let view = ledger::replay_ledger(&text, self.jobs.len());
            if view.all_done() {
                return None;
            }
            let Some(job) = view.first_free() else {
                // Everything unfinished is leased elsewhere. A holder
                // may still die — its lease comes back via a dispatcher
                // expire — so poll rather than exit.
                std::thread::sleep(Duration::from_millis(25));
                continue;
            };
            let id = LeaseId {
                worker: self.worker,
                nonce: self.nonce.fetch_add(1, Ordering::Relaxed),
                pid: self.pid,
            };
            if !self.append(&ledger::lease_line(job, id)) {
                return None;
            }
            // Re-read to arbitrate: the file's total order decides.
            let text = self.read_journal()?;
            let view = ledger::replay_ledger(&text, self.jobs.len());
            if view.holder(job) != Some(id) {
                // Lost the race (or the job committed meanwhile).
                continue;
            }
            vtrace::counter("exec.leases_granted", 1);
            if view.expired[job] {
                // This job came back from a dead worker's lease.
                vtrace::counter("exec.leases_reclaimed", 1);
            }
            if self.policy.fault_plan.decide_crash(job, self.run) == Some(CrashPoint::WorkerKill)
                && view.first_lease[job] == Some(id)
            {
                // Scripted worker loss: die with the lease dangling,
                // exactly like a SIGKILL between claim and publish.
                std::process::abort();
            }
            self.active.lock().expect("active leases")[job] = Some(id);
            return Some(job);
        }
    }

    fn publish(&self, job: usize, chain: ChainResult) -> bool {
        let id = self.active.lock().expect("active leases")[job].take();
        let Some(text) = self.read_journal() else { return false };
        let view = ledger::replay_ledger(&text, self.jobs.len());
        // Revalidate before committing: if the dispatcher expired our
        // lease (it believed this process stuck or dead) the job may be
        // re-leased or even done — drop the result; whoever holds the
        // job now produces byte-identical output.
        if view.holder(job) != id {
            return true;
        }
        let mut line = journal::tagged_job_record_line(
            job,
            &self.jobs[job].name,
            &chain,
            self.worker as usize,
            self.run,
        );
        line.push('\n');
        let mut file = self.writer.lock().expect("journal writer");
        let wrote = append_retrying(file.as_mut(), line.as_bytes()).and_then(|_| file.sync());
        drop(file);
        match wrote {
            Ok(()) => {
                vtrace::counter("exec.jobs_completed", 1);
                vtrace::counter("journal.records_written", 1);
                self.completed.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) => {
                self.fail_io(e);
                false
            }
        }
    }

    fn heartbeat(&self) {
        let seq = self.hb_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let t_ms = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        if self.append(&ledger::hb_line(self.worker, seq, self.pid, t_ms)) {
            vtrace::counter("exec.heartbeats", 1);
        }
    }
}

/// Runs one worker process against a dispatcher's journal: validates
/// the manifest, then drains the lease ledger on `opts.threads` threads
/// (plus a heartbeat thread) until every job in the batch has a durable
/// record. Returns once the batch is globally complete — workers do not
/// know or care which process finished which job.
///
/// # Errors
///
/// [`JournalError::ManifestMismatch`] when the journal belongs to a
/// different batch than the jobs this worker was given, and
/// [`JournalError::Io`] on filesystem failures.
pub fn run_worker(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    policy: &ResilienceConfig,
    opts: &WorkerOptions,
) -> Result<(), JournalError> {
    run_worker_with_io(engine, jobs, policy, opts, &StdIo)
}

/// [`run_worker`] with an explicit durable-IO backend — the seam the
/// storage-fault layer uses to subject a live worker process to torn
/// writes, EIO, and lying fsyncs (`vbench worker --io-fault-plan`).
pub fn run_worker_with_io(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    policy: &ResilienceConfig,
    opts: &WorkerOptions,
    io: &dyn JournalIo,
) -> Result<(), JournalError> {
    let fingerprint = journal::batch_fingerprint(jobs, policy);
    let text = io
        .read(FileClass::Journal, &opts.journal)
        .map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
        .map_err(|e| journal::io_err("read journal for manifest", e))?;
    validate_manifest(&text, fingerprint)?;
    let file = io
        .open_append(FileClass::Journal, &opts.journal)
        .map_err(|e| journal::io_err("open journal for append", e))?;
    let queue = JournalQueue {
        io,
        path: opts.journal.clone(),
        writer: Mutex::new(file),
        jobs,
        policy,
        worker: opts.worker_id as u64,
        pid: u64::from(std::process::id()),
        run: opts.run,
        nonce: AtomicU64::new(0),
        hb_seq: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        active: Mutex::new(vec![None; jobs.len()]),
        io_error: Mutex::new(None),
    };

    let mut span = vtrace::span("exec.worker");
    let done = AtomicBool::new(false);
    std::thread::scope(|outer| {
        outer.spawn(|| {
            while !done.load(Ordering::Acquire) {
                queue.heartbeat();
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        std::thread::scope(|inner| {
            for _ in 0..opts.threads.max(1) {
                inner.spawn(|| {
                    while let Some(job) = queue.claim() {
                        let chain = run_attempt_chain(engine, job, &jobs[job], policy);
                        if !queue.publish(job, chain) {
                            break;
                        }
                    }
                });
            }
        });
        done.store(true, Ordering::Release);
    });
    if span.id().is_some() {
        span.record("worker", opts.worker_id);
        span.record("threads", opts.threads.max(1));
        span.record("jobs", queue.completed.load(Ordering::Relaxed));
    }
    drop(span);

    match queue.io_error.into_inner().expect("io cell") {
        Some(source) => {
            Err(JournalError::Io { context: "worker journal access".to_string(), source })
        }
        None => Ok(()),
    }
}

/// Checks the journal's manifest against this worker's batch
/// fingerprint — the same identity rule `--resume` enforces, so a
/// worker can never lease jobs from a journal its dispatcher did not
/// open for this exact batch.
fn validate_manifest(text: &str, expected: u32) -> Result<(), JournalError> {
    for line in text.lines() {
        let Ok(parsed) = json::parse(line) else { continue };
        if parsed.get("kind").and_then(Value::as_str) == Some("manifest") {
            let found = parsed.get("fingerprint").and_then(Value::as_u64).unwrap_or(0) as u32;
            if found == expected {
                return Ok(());
            }
            return Err(JournalError::ManifestMismatch { expected, found });
        }
    }
    Err(journal::io_err(
        "find manifest",
        std::io::Error::new(std::io::ErrorKind::NotFound, "journal has no manifest record"),
    ))
}
