//! The lease ledger: multi-process work-queue state, replayed from the
//! shared journal's ephemeral records.
//!
//! The journal file doubles as the coordination channel between a
//! dispatcher and its worker processes. Three ephemeral record kinds
//! ride alongside the durable manifest/run/job records:
//!
//! * `{"kind":"lease","job":J,"worker":W,"nonce":N,"pid":P}` — worker
//!   `W` (process `P`) claims job `J`. Appended *optimistically*: two
//!   workers may both append a lease for the same free job, and the
//!   ledger replay arbitrates — **first lease in file order wins**
//!   (O_APPEND gives all writers one total file order to agree on).
//!   The loser re-reads, sees it is not the holder, and moves on.
//! * `{"kind":"expire","job":J,"worker":W,"nonce":N,"pid":P}` — the
//!   dispatcher voids the matching lease. Appended only after the
//!   holder's process has been reaped (`waitpid`), so a dead worker can
//!   never publish a record for a job someone else re-leases: the
//!   process was provably gone before the job became free again.
//! * `{"kind":"hb","worker":W,"seq":S,"pid":P,"t_ms":T}` — worker
//!   liveness, for the dispatcher's stuck-worker detection and the
//!   `vbench top` monitor (`t_ms` is wall-clock milliseconds since the
//!   Unix epoch, so an observer can render heartbeat age).
//!
//! None of these are fsync'd and none survive a resume: the journal
//! scan skips them and compaction scrubs them. The fsync'd job record
//! remains the only commit point — a job is Done exactly when its
//! record is in the file, which is the same rule `--resume` uses.
//!
//! Per-job state machine, replayed in file order:
//!
//! ```text
//!          lease (first)            job record
//!   Free ───────────────▶ Leased ──────────────▶ Done (terminal)
//!     ▲                     │
//!     └─────────────────────┘
//!       expire (matching holder, after reap)
//! ```

use std::collections::BTreeMap;

use vtrace::json::{self, Value};

use super::io::DurableFile;

/// Who holds (or held) a lease: enough identity to match an expire
/// record to its lease and to find the holder's process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct LeaseId {
    /// The worker's dispatcher-assigned id.
    pub(crate) worker: u64,
    /// Per-claim nonce, unique within a worker process (so re-leasing
    /// the same job after an expire yields a distinguishable lease).
    pub(crate) nonce: u64,
    /// The worker's OS process id — what the dispatcher signals and
    /// reaps, and what tests kill.
    pub(crate) pid: u64,
}

/// One job's position in the lease state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum JobState {
    /// No live lease and no durable record: claimable.
    Free,
    /// Leased by the contained holder; not yet committed.
    Leased(LeaseId),
    /// A durable job record exists. Terminal: later leases and expires
    /// for this job are ignored.
    Done,
}

/// The ledger replayed to a point in time: per-job states plus the
/// liveness facts the dispatcher monitors.
pub(crate) struct LedgerView {
    /// Per-job lease state, indexed by job.
    pub(crate) states: Vec<JobState>,
    /// The first lease ever appended per job — the scripted
    /// worker-kill fault keys on this so a respawned worker does not
    /// re-fire the kill after reclaim.
    pub(crate) first_lease: Vec<Option<LeaseId>>,
    /// Whether any lease on this job was ever expired (reclaim
    /// telemetry).
    pub(crate) expired: Vec<bool>,
    /// Latest heartbeat sequence number per worker id.
    pub(crate) heartbeats: BTreeMap<u64, u64>,
    /// Latest heartbeat wall-clock time (ms since the Unix epoch) per
    /// worker id — what a read-only observer renders as heartbeat age.
    pub(crate) heartbeat_wall_ms: BTreeMap<u64, u64>,
    /// OS process id per worker id, learned from lease and heartbeat
    /// records.
    pub(crate) worker_pids: BTreeMap<u64, u64>,
}

impl LedgerView {
    /// Whether every job has a durable record.
    pub(crate) fn all_done(&self) -> bool {
        self.states.iter().all(|s| matches!(s, JobState::Done))
    }

    /// The current leaseholder of `job`, if it is leased.
    ///
    /// Invariant: read-only monitors call this with job indices taken
    /// from journal text they do not control, so an out-of-range index
    /// answers `None` (not leased) instead of panicking.
    pub(crate) fn holder(&self, job: usize) -> Option<LeaseId> {
        match self.states.get(job) {
            Some(JobState::Leased(id)) => Some(*id),
            _ => None,
        }
    }

    /// The lowest-indexed claimable job.
    pub(crate) fn first_free(&self) -> Option<usize> {
        self.states.iter().position(|s| matches!(s, JobState::Free))
    }

    /// Outstanding leases held by process `pid` — what the dispatcher
    /// expires after reaping that process.
    pub(crate) fn leases_of_pid(&self, pid: u64) -> Vec<(usize, LeaseId)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(job, s)| match s {
                JobState::Leased(id) if id.pid == pid => Some((job, *id)),
                _ => None,
            })
            .collect()
    }
}

/// Replays the journal text into a [`LedgerView`] over `jobs` job
/// indices. Tolerant by construction: unparsable lines (torn tails,
/// foreign garbage) and out-of-range indices are skipped — the durable
/// scan in `crate::journal` owns corruption accounting; this replay
/// only needs a consistent coordination view, and every process
/// replaying the same bytes gets the same view.
pub(crate) fn replay_ledger(text: &str, jobs: usize) -> LedgerView {
    let mut view = LedgerView {
        states: vec![JobState::Free; jobs],
        first_lease: vec![None; jobs],
        expired: vec![false; jobs],
        heartbeats: BTreeMap::new(),
        heartbeat_wall_ms: BTreeMap::new(),
        worker_pids: BTreeMap::new(),
    };
    for line in text.lines() {
        let Ok(parsed) = json::parse(line) else { continue };
        let u = |key: &str| parsed.get(key).and_then(Value::as_u64);
        match parsed.get("kind").and_then(Value::as_str) {
            Some("job") => {
                if let Some(job) = u("job").map(|j| j as usize) {
                    if job < jobs {
                        view.states[job] = JobState::Done;
                    }
                }
            }
            Some("lease") => {
                let (Some(job), Some(worker), Some(nonce), Some(pid)) =
                    (u("job").map(|j| j as usize), u("worker"), u("nonce"), u("pid"))
                else {
                    continue;
                };
                if job >= jobs {
                    continue;
                }
                let id = LeaseId { worker, nonce, pid };
                view.worker_pids.insert(worker, pid);
                if view.first_lease[job].is_none() {
                    view.first_lease[job] = Some(id);
                }
                // First lease on a free job wins; a lease raced onto an
                // already-leased or done job is a no-op for its writer.
                if matches!(view.states[job], JobState::Free) {
                    view.states[job] = JobState::Leased(id);
                }
            }
            Some("expire") => {
                let (Some(job), Some(worker), Some(nonce), Some(pid)) =
                    (u("job").map(|j| j as usize), u("worker"), u("nonce"), u("pid"))
                else {
                    continue;
                };
                if job >= jobs {
                    continue;
                }
                let id = LeaseId { worker, nonce, pid };
                // Only the exact current holder can be expired: an
                // expire that raced with a newer lease must not void it.
                if view.states[job] == JobState::Leased(id) {
                    view.states[job] = JobState::Free;
                    view.expired[job] = true;
                }
            }
            Some("hb") => {
                if let (Some(worker), Some(seq)) = (u("worker"), u("seq")) {
                    let slot = view.heartbeats.entry(worker).or_insert(0);
                    *slot = (*slot).max(seq);
                    if let Some(t_ms) = u("t_ms") {
                        let wall = view.heartbeat_wall_ms.entry(worker).or_insert(0);
                        *wall = (*wall).max(t_ms);
                    }
                    if let Some(pid) = u("pid") {
                        view.worker_pids.insert(worker, pid);
                    }
                }
            }
            _ => {}
        }
    }
    view
}

/// A lease record line, newline-terminated for a single-write append.
pub(crate) fn lease_line(job: usize, id: LeaseId) -> String {
    format!(
        "{{\"kind\":\"lease\",\"job\":{job},\"worker\":{},\"nonce\":{},\"pid\":{}}}\n",
        id.worker, id.nonce, id.pid
    )
}

/// An expire record line voiding exactly the lease `id` on `job`.
pub(crate) fn expire_line(job: usize, id: LeaseId) -> String {
    format!(
        "{{\"kind\":\"expire\",\"job\":{job},\"worker\":{},\"nonce\":{},\"pid\":{}}}\n",
        id.worker, id.nonce, id.pid
    )
}

/// A heartbeat record line for worker `worker`, sequence `seq`, stamped
/// with the worker's pid and the wall-clock time `t_ms` (ms since the
/// Unix epoch).
pub(crate) fn hb_line(worker: u64, seq: u64, pid: u64, t_ms: u64) -> String {
    format!("{{\"kind\":\"hb\",\"worker\":{worker},\"seq\":{seq},\"pid\":{pid},\"t_ms\":{t_ms}}}\n")
}

/// Appends one pre-formed, newline-terminated record in a single write.
/// With the file in `O_APPEND` mode a whole-line write lands atomically
/// at the current end of file, so concurrent appenders interleave
/// records, never bytes within a record. Ephemeral records are not
/// fsync'd — losing them in a crash is harmless, the durable scan
/// ignores them anyway.
pub(crate) fn append_record(file: &mut dyn DurableFile, line: &str) -> std::io::Result<()> {
    debug_assert!(line.ends_with('\n') && line.matches('\n').count() == 1);
    file.append(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corrupt journal can put any index in a lease line; every view
    /// accessor must shrug, not panic.
    #[test]
    fn out_of_range_indices_are_ignored_everywhere() {
        let text = "{\"kind\":\"lease\",\"job\":99,\"worker\":0,\"nonce\":0,\"pid\":7}\n\
                    {\"kind\":\"job\",\"job\":42,\"name\":\"x\"}\n\
                    {\"kind\":\"lease\",\"job\":1,\"worker\":1,\"nonce\":0,\"pid\":8}\n";
        let view = replay_ledger(text, 2);
        assert_eq!(view.states[0], JobState::Free);
        assert!(matches!(view.states[1], JobState::Leased(_)));
        assert_eq!(view.holder(0), None);
        assert!(view.holder(1).is_some());
        assert_eq!(view.holder(99), None, "out-of-range holder query answers None");
        assert_eq!(view.first_free(), Some(0));
    }
}
