//! Read-only dispatch monitoring: a [`StatusSnapshot`] derived from
//! the shared journal's text, rendered by `vbench top` and written as
//! `status.json` by the dispatcher's `--status-out`.
//!
//! The journal is the single source of truth for a running batch —
//! manifest (`jobs`), durable job records (done/failed, attempts,
//! per-worker provenance tags), and the ephemeral lease/heartbeat
//! ledger (who holds what, who is alive). A monitor therefore never
//! needs worker IPC: it reads the journal text that every participant
//! already agrees on and *never writes to it* — `vbench top` opens the
//! file read-only, and the dispatcher writes `status.json` elsewhere
//! via an atomic temp-file rename so machine consumers never observe a
//! torn snapshot.
//!
//! Two render modes split along determinism: [`StatusSnapshot::render`]
//! prints only journal-derived facts (lease states, heartbeat
//! sequence numbers and wall-stamps, completion counts), so `vbench
//! top --once` output is a pure function of the journal bytes;
//! wall-clock-relative derivations (heartbeat age, throughput, ETA)
//! need a "now" and live only in [`StatusSnapshot::to_json`] and the
//! refreshing live view, both of which are handed their clock
//! explicitly.

use std::collections::BTreeMap;
use std::path::Path;

use super::ledger::{replay_ledger, JobState};
use vtrace::json::{self, Value};

/// Schema version of the `status.json` snapshot.
pub const STATUS_VERSION: u32 = 1;

/// Upper bound accepted for a manifest's `jobs` count when monitoring.
/// Invariant: a snapshot allocates `O(jobs)` ledger state, and `vbench
/// top` must never panic or OOM on a corrupt journal — a count past
/// this bound is treated as "no manifest", not trusted.
const MAX_MANIFEST_JOBS: u64 = 1 << 20;

/// One worker's view in the snapshot.
#[derive(Clone, Debug, Default)]
pub struct WorkerStatus {
    /// Dispatcher-assigned worker id.
    pub worker: u64,
    /// OS process id, when any lease or heartbeat revealed it.
    pub pid: Option<u64>,
    /// Job index currently leased by this worker, if any.
    pub in_flight: Option<usize>,
    /// Latest heartbeat sequence number (0 = never heartbeat).
    pub hb_seq: u64,
    /// Wall-clock time of the latest heartbeat (ms since the Unix
    /// epoch), when heartbeats carry timestamps.
    pub hb_wall_ms: Option<u64>,
    /// Durable job records this worker committed successfully.
    pub completed: u64,
    /// Durable failure records this worker committed.
    pub failed: u64,
}

/// Everything a monitor can derive from one read of the journal.
#[derive(Clone, Debug, Default)]
pub struct StatusSnapshot {
    /// Total jobs in the batch (from the manifest).
    pub jobs: usize,
    /// Jobs with a durable record (done, whether ok or failed).
    pub done: usize,
    /// Jobs whose durable record is a failure.
    pub failed: usize,
    /// Jobs currently leased.
    pub leased: usize,
    /// Retries recorded across durable records (attempts beyond the
    /// first).
    pub retries: u64,
    /// Expire records appended (leases reclaimed from lost workers).
    pub expired_leases: u64,
    /// Per-worker breakdown, ordered by worker id.
    pub workers: Vec<WorkerStatus>,
}

impl StatusSnapshot {
    /// Jobs not yet done and not currently leased.
    pub fn free(&self) -> usize {
        self.jobs.saturating_sub(self.done + self.leased)
    }

    /// Deterministic table render: a pure function of the journal
    /// bytes, suitable for `vbench top --once` and golden tests. No
    /// clocks — heartbeat *age* belongs to the live view.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "jobs {}  done {}  failed {}  leased {}  free {}  retries {}  expired {}\n",
            self.jobs,
            self.done,
            self.failed,
            self.leased,
            self.free(),
            self.retries,
            self.expired_leases,
        ));
        out.push_str(&format!(
            "{:>6} {:>8} {:>9} {:>8} {:>14} {:>9} {:>7}\n",
            "worker", "pid", "in-flight", "hb-seq", "hb-wall-ms", "completed", "failed"
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "{:>6} {:>8} {:>9} {:>8} {:>14} {:>9} {:>7}\n",
                w.worker,
                w.pid.map_or("-".to_string(), |p| p.to_string()),
                w.in_flight.map_or("idle".to_string(), |j| format!("#{j}")),
                w.hb_seq,
                w.hb_wall_ms.map_or("-".to_string(), |t| t.to_string()),
                w.completed,
                w.failed,
            ));
        }
        out
    }

    /// The `status.json` document: the snapshot plus the clock-relative
    /// derivations (heartbeat age, throughput, ETA), computed against
    /// the caller-supplied `now_ms` / `elapsed_secs` so the document is
    /// testable with a pinned clock.
    pub fn to_json(&self, now_ms: u64, elapsed_secs: f64) -> String {
        let throughput = if elapsed_secs > 0.0 { self.done as f64 / elapsed_secs } else { 0.0 };
        let remaining = self.jobs.saturating_sub(self.done);
        let eta_secs = if throughput > 0.0 { remaining as f64 / throughput } else { -1.0 };
        let mut out = format!(
            "{{\"version\":{STATUS_VERSION},\"now_ms\":{now_ms},\
             \"elapsed_secs\":{},\"jobs\":{},\"done\":{},\"failed\":{},\"leased\":{},\
             \"free\":{},\"retries\":{},\"expired_leases\":{},\"throughput_jps\":{},\
             \"eta_secs\":{},\"workers\":[",
            jf64(elapsed_secs),
            self.jobs,
            self.done,
            self.failed,
            self.leased,
            self.free(),
            self.retries,
            self.expired_leases,
            jf64(throughput),
            jf64(eta_secs),
        );
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hb_age_ms = w.hb_wall_ms.map(|t| now_ms.saturating_sub(t));
            out.push_str(&format!(
                "{{\"worker\":{},\"pid\":{},\"in_flight\":{},\"hb_seq\":{},\
                 \"hb_age_ms\":{},\"completed\":{},\"failed\":{}}}",
                w.worker,
                w.pid.map_or("null".to_string(), |p| p.to_string()),
                w.in_flight.map_or("null".to_string(), |j| j.to_string()),
                w.hb_seq,
                hb_age_ms.map_or("null".to_string(), |a| a.to_string()),
                w.completed,
                w.failed,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Derives a snapshot from journal text. Returns `None` when the text
/// has no manifest line — nothing to monitor yet (or not a journal).
pub fn snapshot_from_text(text: &str) -> Option<StatusSnapshot> {
    let mut jobs = None;
    let mut per_worker: BTreeMap<u64, WorkerStatus> = BTreeMap::new();
    let mut snap = StatusSnapshot::default();
    for line in text.lines() {
        let Ok(parsed) = json::parse(line) else { continue };
        match parsed.get("kind").and_then(Value::as_str) {
            Some("manifest") if jobs.is_none() => {
                // Invariant: the manifest's job count sizes the ledger
                // replay allocation. A corrupt or hostile count must not
                // drive an unbounded `Vec` — cap it at a bound no real
                // batch approaches and treat anything larger like a
                // missing manifest (nothing to monitor).
                jobs = parsed
                    .get("jobs")
                    .and_then(Value::as_u64)
                    .filter(|&j| j <= MAX_MANIFEST_JOBS)
                    .map(|j| j as usize);
            }
            Some("job") => {
                let attempts = parsed.get("attempts").and_then(Value::as_u64).unwrap_or(0);
                snap.retries += attempts.saturating_sub(1);
                let ok = parsed.get("status").and_then(Value::as_str) == Some("ok");
                if let Some(worker) = parsed.get("worker").and_then(Value::as_u64) {
                    let slot = per_worker.entry(worker).or_default();
                    if ok {
                        slot.completed += 1;
                    } else {
                        slot.failed += 1;
                    }
                }
            }
            Some("expire") => snap.expired_leases += 1,
            _ => {}
        }
    }
    let jobs = jobs?;
    snap.jobs = jobs;

    let view = replay_ledger(text, jobs);
    for (job, state) in view.states.iter().enumerate() {
        match state {
            JobState::Done => snap.done += 1,
            JobState::Leased(id) => {
                snap.leased += 1;
                per_worker.entry(id.worker).or_default().in_flight = Some(job);
            }
            JobState::Free => {}
        }
    }
    for (worker, seq) in &view.heartbeats {
        per_worker.entry(*worker).or_default().hb_seq = *seq;
    }
    for (worker, t_ms) in &view.heartbeat_wall_ms {
        per_worker.entry(*worker).or_default().hb_wall_ms = Some(*t_ms);
    }
    for (worker, pid) in &view.worker_pids {
        per_worker.entry(*worker).or_default().pid = Some(*pid);
    }

    // Failure counts: durable failed records count toward `done` in the
    // lease machine; surface them separately too.
    snap.failed = per_worker.values().map(|w| w.failed as usize).sum();
    snap.workers = per_worker
        .into_iter()
        .map(|(worker, mut w)| {
            w.worker = worker;
            w
        })
        .collect();
    Some(snap)
}

/// Reads the journal at `path` (read-only) and derives a snapshot.
///
/// # Errors
///
/// Propagates the read error; a readable file with no manifest yields
/// `Ok(None)`.
pub fn snapshot_from_journal(path: &Path) -> std::io::Result<Option<StatusSnapshot>> {
    // Invariant: a monitor must tolerate any byte sequence a crash (or
    // torn concurrent append) can leave behind. `read_to_string` fails
    // on invalid UTF-8, which journal corruption can inject, so decode
    // lossily — the garbage line fails to parse and is skipped, exactly
    // like the resume scanner treats it.
    let bytes = std::fs::read(path)?;
    Ok(snapshot_from_text(&String::from_utf8_lossy(&bytes)))
}

/// Atomically and *durably* replaces `path` with `content`: write a
/// uniquely-named sibling temp file, fsync it, rename it over `path`,
/// then fsync the parent directory. Readers see either the old
/// document or the new one, never a prefix — and after a power cut the
/// renamed-in document still holds its full contents (renaming an
/// unsynced temp is the classic crash-consistency bug: the rename
/// survives the cut, the bytes do not). The per-writer unique temp
/// name means a crashed or concurrent writer can never collide on a
/// fixed `.tmp` sibling; stale temps from crashed writers are scrubbed
/// by [`remove_stale_status_temps`].
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    write_atomic_io(&super::io::StdIo, path, content)
}

/// [`write_atomic`] through an explicit durable-IO layer — what the
/// chaos auditor drives with a [`super::io::FaultedIo`] to prove the
/// fsync-before-rename discipline holds under power cuts.
pub fn write_atomic_io(
    io: &dyn super::io::JournalIo,
    path: &Path,
    content: &str,
) -> std::io::Result<()> {
    write_atomic_impl(io, path, content, true)
}

/// The deliberately broken variant: skips the temp-file sync before the
/// rename. Exists only so `vbench chaos --inject-unsynced-rename` can
/// demonstrate that the auditor *catches* the bug this module used to
/// have — it must never be called from production paths.
pub(crate) fn write_atomic_unsynced_io(
    io: &dyn super::io::JournalIo,
    path: &Path,
    content: &str,
) -> std::io::Result<()> {
    write_atomic_impl(io, path, content, false)
}

fn write_atomic_impl(
    io: &dyn super::io::JournalIo,
    path: &Path,
    content: &str,
    sync_contents: bool,
) -> std::io::Result<()> {
    let tmp = super::io::unique_temp(path);
    let result = (|| {
        let mut file = io.create(vfault::FileClass::Status, &tmp)?;
        file.append(content.as_bytes())?;
        if sync_contents {
            file.sync()?;
        }
        drop(file);
        io.rename(vfault::FileClass::Status, &tmp, path)?;
        io.sync_parent_dir(path)
    })();
    if result.is_err() {
        // Never leave a dead temp behind an error path; the unique name
        // guarantees this removal cannot race another writer's temp.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Removes stale [`write_atomic`] temp files a crashed writer abandoned
/// next to `path`. Called once at dispatcher startup for its
/// `--status-out` target; best-effort (an unremovable temp wastes disk
/// but can never be read as the document).
pub(crate) fn remove_stale_status_temps(path: &Path) {
    super::io::remove_stale_temps(path);
}

/// JSON number literal; non-finite becomes `null`.
fn jf64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOURNAL: &str = "\
        {\"kind\":\"manifest\",\"version\":1,\"fingerprint\":7,\"jobs\":3}\n\
        {\"kind\":\"run\",\"index\":0}\n\
        {\"kind\":\"hb\",\"worker\":0,\"seq\":2,\"pid\":41,\"t_ms\":1000}\n\
        {\"kind\":\"hb\",\"worker\":1,\"seq\":5,\"pid\":42,\"t_ms\":1200}\n\
        {\"kind\":\"lease\",\"job\":0,\"worker\":0,\"nonce\":0,\"pid\":41}\n\
        {\"kind\":\"job\",\"job\":0,\"name\":\"a\",\"attempts\":2,\"degraded\":0,\
         \"deadline_missed\":false,\"status\":\"ok\",\"worker\":0,\"run\":0}\n\
        {\"kind\":\"lease\",\"job\":1,\"worker\":1,\"nonce\":0,\"pid\":42}\n";

    #[test]
    fn snapshot_reads_manifest_ledger_and_records() {
        let snap = snapshot_from_text(JOURNAL).expect("has manifest");
        assert_eq!(snap.jobs, 3);
        assert_eq!(snap.done, 1);
        assert_eq!(snap.leased, 1);
        assert_eq!(snap.free(), 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.workers.len(), 2);
        let w0 = &snap.workers[0];
        assert_eq!((w0.worker, w0.pid, w0.completed), (0, Some(41), 1));
        assert_eq!(w0.in_flight, None, "job 0 committed, lease terminal");
        let w1 = &snap.workers[1];
        assert_eq!((w1.worker, w1.hb_seq, w1.in_flight), (1, 5, Some(1)));
        assert_eq!(w1.hb_wall_ms, Some(1200));
    }

    #[test]
    fn render_is_deterministic_and_lists_every_worker() {
        let snap = snapshot_from_text(JOURNAL).expect("has manifest");
        let a = snap.render();
        let b = snapshot_from_text(JOURNAL).expect("has manifest").render();
        assert_eq!(a, b);
        assert!(a.contains("jobs 3  done 1"), "{a}");
        for needle in ["idle", "#1", "41", "42"] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn status_json_parses_and_carries_clock_derivations() {
        let snap = snapshot_from_text(JOURNAL).expect("has manifest");
        let doc = snap.to_json(2200, 4.0);
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("jobs").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("throughput_jps").and_then(Value::as_f64), Some(0.25));
        let workers = match v.get("workers") {
            Some(Value::Array(items)) => items,
            other => panic!("workers must be an array, got {other:?}"),
        };
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[1].get("hb_age_ms").and_then(Value::as_u64), Some(1000));
    }

    #[test]
    fn no_manifest_means_no_snapshot() {
        assert!(snapshot_from_text("{\"kind\":\"run\",\"index\":0}\n").is_none());
    }

    /// A corrupt manifest advertising an absurd job count must not drive
    /// an unbounded allocation: past the cap it is not a manifest.
    #[test]
    fn insane_manifest_job_counts_are_rejected() {
        let text = format!(
            "{{\"kind\":\"manifest\",\"version\":1,\"fingerprint\":7,\"jobs\":{}}}\n",
            u64::MAX
        );
        assert!(snapshot_from_text(&text).is_none());
        // At the cap the manifest is still trusted.
        let text = "{\"kind\":\"manifest\",\"version\":1,\"fingerprint\":7,\"jobs\":4}\n";
        assert_eq!(snapshot_from_text(text).expect("sane manifest").jobs, 4);
    }

    /// Crash garbage can inject invalid UTF-8 into the journal; the
    /// monitor must skip it like any other unparseable line, not error.
    #[test]
    fn invalid_utf8_journal_bytes_do_not_fail_the_monitor() {
        let mut path = std::env::temp_dir();
        path.push(format!("vbench-status-utf8-{}.jsonl", std::process::id()));
        let mut bytes = JOURNAL.as_bytes().to_vec();
        bytes.extend_from_slice(b"\xff\xfe{torn");
        std::fs::write(&path, &bytes).expect("write journal");
        let snap = snapshot_from_journal(&path)
            .expect("read survives invalid UTF-8")
            .expect("manifest intact");
        assert_eq!((snap.jobs, snap.done), (3, 1));
        let _ = std::fs::remove_file(&path);
    }

    /// Tailing a journal mid-append: `vbench top` reads while a worker
    /// is between `write` and the trailing newline, so the snapshot must
    /// tolerate a truncated final record — and pick it up once the
    /// append completes.
    #[test]
    fn tailing_mid_append_skips_the_partial_record_then_sees_it() {
        let record = "{\"kind\":\"job\",\"job\":1,\"name\":\"b\",\"attempts\":1,\"degraded\":0,\
                      \"deadline_missed\":false,\"status\":\"ok\",\"worker\":1,\"run\":0}";
        let before = snapshot_from_text(JOURNAL).expect("has manifest");
        // Every strict prefix of the in-flight append leaves the
        // snapshot exactly where it was.
        for cut in [1, record.len() / 2, record.len() - 1] {
            let mid = format!("{JOURNAL}{}", &record[..cut]);
            let snap = snapshot_from_text(&mid).expect("has manifest");
            assert_eq!(snap.done, before.done, "partial record must not count (cut {cut})");
            assert_eq!(snap.leased, before.leased, "partial record must not count (cut {cut})");
        }
        // The completed line takes effect.
        let after = snapshot_from_text(&format!("{JOURNAL}{record}\n")).expect("has manifest");
        assert_eq!(after.done, before.done + 1);
        assert_eq!(after.workers[1].completed, 1);
        assert_eq!(after.workers[1].in_flight, None, "job 1 committed, lease terminal");
    }

    /// `write_atomic` leaves no partially-written `status.json` behind:
    /// the destination is only ever replaced whole.
    #[test]
    fn write_atomic_replaces_whole_documents() {
        let mut path = std::env::temp_dir();
        path.push(format!("vbench-status-atomic-{}.json", std::process::id()));
        write_atomic(&path, "{\"version\":1}").expect("first write");
        write_atomic(&path, "{\"version\":1,\"jobs\":3}").expect("second write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"version\":1,\"jobs\":3}");
        assert!(!path.with_extension("tmp").exists(), "temp file must be renamed away");
        super::remove_stale_status_temps(&path);
        let _ = std::fs::remove_file(&path);
    }

    /// The fsync-before-rename discipline: a document `write_atomic`
    /// acknowledged survives a simulated power cut byte-for-byte. The
    /// deliberately unsynced variant (the bug this module used to
    /// have) loses the bytes — which is exactly what `vbench chaos
    /// --inject-unsynced-rename` demonstrates end to end.
    #[test]
    fn write_atomic_contents_survive_a_power_cut() {
        use super::super::io::FaultedIo;
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vbench-status-durable-{}.json", std::process::id()));
        let io = FaultedIo::new(vfault::IoFaultPlan::new());
        write_atomic_io(&io, &path, "{\"version\":1,\"jobs\":3}").expect("write");
        assert!(io.dir_syncs() >= 1, "the replace must sync the parent directory");
        io.power_cut().expect("power cut");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"version\":1,\"jobs\":3}",
            "acknowledged document survives the cut whole"
        );

        let buggy = dir.join(format!("vbench-status-buggy-{}.json", std::process::id()));
        let io = FaultedIo::new(vfault::IoFaultPlan::new());
        write_atomic_unsynced_io(&io, &buggy, "{\"version\":1}").expect("write");
        io.power_cut().expect("power cut");
        assert_eq!(
            std::fs::read(&buggy).unwrap(),
            b"",
            "renaming an unsynced temp loses the bytes at power cut"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&buggy);
    }

    /// A faulted replace never leaves the old document torn, and stale
    /// temps from crashed writers are scrubbed on startup.
    #[test]
    fn faulted_replace_keeps_old_document_and_stale_temps_are_scrubbed() {
        use super::super::io::FaultedIo;
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vbench-status-fault-{}.json", std::process::id()));
        write_atomic(&path, "old-doc").expect("seed");
        for spec in ["short=status@0", "eio=status@0", "fsync-eio=status@0", "rename-fail=status@0"]
        {
            let io = FaultedIo::new(vfault::IoFaultPlan::parse(spec).expect("plan"));
            assert!(write_atomic_io(&io, &path, "new-doc").is_err(), "{spec} must error");
            assert_eq!(std::fs::read_to_string(&path).unwrap(), "old-doc", "after {spec}");
        }
        // A crashed writer's abandoned temp is scrubbed by startup
        // cleanup without touching the document.
        let stale =
            dir.join(format!("{}.99999-0.tmp", path.file_name().unwrap().to_string_lossy()));
        std::fs::write(&stale, "half-written").expect("plant stale temp");
        super::remove_stale_status_temps(&path);
        assert!(!stale.exists(), "stale temp scrubbed");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old-doc");
        let _ = std::fs::remove_file(&path);
    }
}
