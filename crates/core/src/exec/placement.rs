//! Placement-aware dispatch: running a batch in a planned claim order.
//!
//! The cost plane's planner (`fleet::plan`) decides *which* instance
//! class each job should run on; this module is how that decision
//! reaches the executor without changing any backend. A
//! [`PlacementPlan`] is a validated permutation of job indices — the
//! claim order, jobs grouped by their assigned instance — and
//! [`PlacedQueue`] wraps any [`WorkQueue`] so claims hand out jobs in
//! that order while publishes land on the original indices. Results,
//! reports, and journal records therefore stay in job order: a
//! placement changes *when* a job is claimed, never *what* it produces,
//! preserving the executor's determinism contract byte for byte.

use super::{ChainResult, WorkQueue};

/// Why a job ordering was rejected as a placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// An index appeared twice (second occurrence reported).
    Duplicate(usize),
    /// An index was at or past the batch length.
    OutOfRange(usize),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Duplicate(i) => write!(f, "job {i} placed twice"),
            PlacementError::OutOfRange(i) => write!(f, "job {i} out of batch range"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A validated claim order: `order[k]` is the job dispatched `k`-th.
/// Always a permutation of `0..len`, so every job runs exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementPlan {
    order: Vec<usize>,
    /// Inverse map: `slot_of[job]` = the claim slot that dispatches it.
    slot_of: Vec<usize>,
}

impl PlacementPlan {
    /// Validates `order` as a permutation of `0..order.len()`.
    ///
    /// # Errors
    ///
    /// [`PlacementError`] when an index repeats or exceeds the range.
    pub fn new(order: Vec<usize>) -> Result<PlacementPlan, PlacementError> {
        let mut slot_of = vec![usize::MAX; order.len()];
        for (slot, &job) in order.iter().enumerate() {
            if job >= order.len() {
                return Err(PlacementError::OutOfRange(job));
            }
            if slot_of[job] != usize::MAX {
                return Err(PlacementError::Duplicate(job));
            }
            slot_of[job] = slot;
        }
        Ok(PlacementPlan { order, slot_of })
    }

    /// The identity placement: claim order is job order.
    pub fn identity(len: usize) -> PlacementPlan {
        PlacementPlan { order: (0..len).collect(), slot_of: (0..len).collect() }
    }

    /// The claim order (a permutation of `0..len`).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The claim slot that dispatches `job`.
    ///
    /// # Panics
    ///
    /// Panics if `job` is outside the placement.
    pub fn slot_of(&self, job: usize) -> usize {
        self.slot_of[job]
    }

    /// Number of placed jobs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `items` reordered into claim order (`out[k] = items[order[k]]`).
    pub fn apply<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.order.len(), "placement covers the whole batch");
        self.order.iter().map(|&j| items[j].clone()).collect()
    }
}

/// A [`WorkQueue`] adapter that dispatches jobs in a placement's claim
/// order. The inner queue keeps owning lease arbitration (its indices
/// become claim *slots*); this wrapper translates slots to job indices
/// on claim and back on publish, so the backend's safety contract —
/// exclusive leases, at-most-once publish — carries over unchanged.
#[derive(Debug)]
pub struct PlacedQueue<'a, Q: WorkQueue> {
    inner: &'a Q,
    plan: &'a PlacementPlan,
}

impl<'a, Q: WorkQueue> PlacedQueue<'a, Q> {
    /// Wraps `inner` so claims follow `plan`'s order. The inner queue
    /// must span exactly the placed jobs.
    pub fn new(inner: &'a Q, plan: &'a PlacementPlan) -> PlacedQueue<'a, Q> {
        PlacedQueue { inner, plan }
    }
}

impl<Q: WorkQueue> WorkQueue for PlacedQueue<'_, Q> {
    fn claim(&self) -> Option<usize> {
        self.inner.claim().map(|slot| self.plan.order()[slot])
    }

    fn publish(&self, job: usize, chain: ChainResult) -> bool {
        self.inner.publish(self.plan.slot_of(job), chain)
    }

    fn heartbeat(&self) {
        self.inner.heartbeat();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn permutations_validate() {
        assert!(PlacementPlan::new(vec![2, 0, 1]).is_ok());
        assert_eq!(PlacementPlan::new(vec![0, 0, 1]), Err(PlacementError::Duplicate(0)));
        assert_eq!(PlacementPlan::new(vec![0, 3, 1]), Err(PlacementError::OutOfRange(3)));
        assert!(PlacementPlan::new(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn identity_is_a_fixed_point() {
        let id = PlacementPlan::identity(4);
        assert_eq!(id.order(), &[0, 1, 2, 3]);
        let items = vec!["a", "b", "c", "d"];
        assert_eq!(id.apply(&items), items);
        for j in 0..4 {
            assert_eq!(id.slot_of(j), j);
        }
    }

    #[test]
    fn apply_reorders_and_slot_of_inverts() {
        let plan = PlacementPlan::new(vec![2, 0, 3, 1]).unwrap();
        assert_eq!(plan.apply(&["a", "b", "c", "d"]), vec!["c", "a", "d", "b"]);
        for (slot, &job) in plan.order().iter().enumerate() {
            assert_eq!(plan.slot_of(job), slot);
        }
    }

    /// A toy queue: hands out slots sequentially, records publishes.
    struct SeqQueue {
        next: std::sync::atomic::AtomicUsize,
        len: usize,
        published: Mutex<Vec<usize>>,
    }

    impl WorkQueue for SeqQueue {
        fn claim(&self) -> Option<usize> {
            let slot = self.next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            (slot < self.len).then_some(slot)
        }

        fn publish(&self, job: usize, _chain: ChainResult) -> bool {
            self.published.lock().unwrap().push(job);
            true
        }
    }

    fn chain() -> ChainResult {
        ChainResult {
            outcome: Err(crate::farm::JobError::Panicked { message: "toy".to_string() }),
            attempts: 1,
            degraded: 0,
            deadline_missed: false,
        }
    }

    #[test]
    fn placed_queue_claims_in_plan_order_and_publishes_job_indices() {
        let inner = SeqQueue {
            next: std::sync::atomic::AtomicUsize::new(0),
            len: 4,
            published: Mutex::new(Vec::new()),
        };
        let plan = PlacementPlan::new(vec![3, 1, 0, 2]).unwrap();
        let q = PlacedQueue::new(&inner, &plan);
        let mut claimed = Vec::new();
        while let Some(job) = q.claim() {
            claimed.push(job);
            assert!(q.publish(job, chain()));
        }
        assert_eq!(claimed, vec![3, 1, 0, 2], "claims follow the placement");
        // Publishes reached the inner queue as slots — original order —
        // so downstream accounting never sees the permutation.
        assert_eq!(*inner.published.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
