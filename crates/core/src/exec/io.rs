//! The durable-IO seam: every byte the journal, lease ledger, and
//! status snapshots put on disk goes through a [`JournalIo`].
//!
//! The durability stack's correctness claims — "a job's fsync'd record
//! is its commit point", "readers never observe a torn snapshot" — are
//! claims about *storage behavior under failure*, and raw `std::fs`
//! calls cannot be made to fail on demand. This module routes all
//! durable IO through two small traits:
//!
//! * [`JournalIo`] — opens, reads, and renames durable files, each
//!   tagged with its [`FileClass`] (journal / status / output);
//! * [`DurableFile`] — an open handle supporting `append` and `sync`.
//!
//! [`StdIo`] is the production implementation (real `write(2)` +
//! `fdatasync(2)` + `rename(2)`). [`FaultedIo`] wraps it with a
//! [`vfault::IoFaultPlan`]: short writes, write/fsync EIO, ENOSPC,
//! fsync *lies*, and rename failures, each keyed on `(file class,
//! op index)` so a fault schedule replays bit-exactly. `FaultedIo`
//! additionally tracks, per file, how many bytes the last *honest*
//! sync covered — [`FaultedIo::power_cut`] truncates every tracked
//! file to that durable prefix, simulating power loss with a lying or
//! failed write cache. That is what lets `vbench chaos` assert the
//! recovery invariants ("no fsync-acknowledged record lost") instead
//! of merely hoping for them.
//!
//! Transient-write retry rides here too: [`append_retrying`] retries
//! an append a bounded number of times with capped backoff when the
//! error looks transient (EIO-class), counting `journal.io_retries`.
//! Failed *syncs* are never retried: after a failed fsync the kernel
//! may have dropped the dirty pages, so a later Ok proves nothing
//! about the earlier bytes (the post-fsync-gate rule) — sync errors
//! abort the typed way instead.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::resilience::capped_backoff_secs;
use vfault::{FileClass, IoFaultKind, IoFaultPlan, IoOp};

/// Append retries allowed per record on transient write errors.
const MAX_APPEND_RETRIES: u32 = 3;
/// Backoff curve for append retries (base doubles per retry, capped).
const APPEND_BACKOFF_BASE_SECS: f64 = 0.005;
const APPEND_BACKOFF_CAP_SECS: f64 = 0.05;

/// An open durable file: appends and syncs, nothing else. Positioned
/// writes never happen in the durability stack — the journal is
/// append-only and atomic snapshots write whole temp files.
pub trait DurableFile: Send {
    /// Appends `bytes` at the end of the file (one `write` call — with
    /// the file in `O_APPEND` mode a whole-record append lands
    /// atomically, so concurrent appenders interleave records, never
    /// bytes).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Syncs appended bytes to stable storage (`fdatasync`-class). An
    /// error here means *nothing since the last successful sync can be
    /// trusted* — callers must not retry and believe a later Ok.
    fn sync(&mut self) -> io::Result<()>;
}

/// The durable-IO operations the journal, ledger, and status layers
/// are built from. One implementation is real ([`StdIo`]); the other
/// injects scripted storage faults ([`FaultedIo`]).
pub trait JournalIo: Send + Sync {
    /// Creates (or truncates) a durable file of the given class.
    fn create(&self, class: FileClass, path: &Path) -> io::Result<Box<dyn DurableFile>>;

    /// Opens an existing file of the given class for appending.
    fn open_append(&self, class: FileClass, path: &Path) -> io::Result<Box<dyn DurableFile>>;

    /// Reads a durable file's full contents (what a resume scan or
    /// lease arbitration sees — page cache included, durable or not).
    fn read(&self, class: FileClass, path: &Path) -> io::Result<Vec<u8>>;

    /// Atomically replaces `to` with `from` (both of the given class).
    fn rename(&self, class: FileClass, from: &Path, to: &Path) -> io::Result<()>;

    /// Syncs the directory containing `path`, making preceding renames
    /// and creates in it durable. Not part of the faultable op stream:
    /// fault schedules key on file writes, syncs, and renames.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

/// The production [`JournalIo`]: real filesystem calls, real syncs.
pub struct StdIo;

impl JournalIo for StdIo {
    fn create(&self, _class: FileClass, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        Ok(Box::new(StdFile(File::create(path)?)))
    }

    fn open_append(&self, _class: FileClass, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        Ok(Box::new(StdFile(OpenOptions::new().append(true).open(path)?)))
    }

    fn read(&self, _class: FileClass, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, _class: FileClass, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        let dir = parent.map_or_else(|| Path::new(".").to_path_buf(), Path::to_path_buf);
        File::open(dir)?.sync_all()
    }
}

struct StdFile(File);

impl DurableFile for StdFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

/// Per-file durability bookkeeping inside a [`FaultedIo`].
#[derive(Clone, Copy, Default)]
struct FileTrack {
    /// Bytes written through this layer (page-cache length).
    len: u64,
    /// Bytes covered by the last *honest* sync — what survives
    /// [`FaultedIo::power_cut`].
    durable_len: u64,
}

/// Shared mutable state of a [`FaultedIo`]: op counters (the fault
/// keys) and per-path durability tracking.
#[derive(Default)]
struct FaultedState {
    /// Monotonic op counters per `(class, op)` stream.
    counters: HashMap<(FileClass, IoOp), u64>,
    /// Durability tracking per path currently on disk.
    files: HashMap<PathBuf, FileTrack>,
    /// Faults injected so far (for reports and tests).
    injected: u64,
    /// Directory syncs requested (the fixed `write_atomic` must issue
    /// one per replace; tests assert it).
    dir_syncs: u64,
}

/// A [`JournalIo`] that injects the faults a seeded
/// [`vfault::IoFaultPlan`] scripts, while tracking which byte prefix
/// of every file an honest sync actually covered.
///
/// Writes really happen (so concurrent readers see them, like page
/// cache); syncs are *simulated* — an honest sync advances the file's
/// durable length, a lying one does not, and no real `fdatasync` runs
/// (chaos trials stay fast). [`FaultedIo::power_cut`] then truncates
/// every tracked file to its durable prefix: exactly the state a power
/// loss leaves when unsynced cache contents vanish.
pub struct FaultedIo {
    plan: IoFaultPlan,
    state: Arc<Mutex<FaultedState>>,
}

impl FaultedIo {
    /// A fault layer driven by `plan`.
    pub fn new(plan: IoFaultPlan) -> FaultedIo {
        FaultedIo { plan, state: Arc::new(Mutex::new(FaultedState::default())) }
    }

    /// Simulates power loss: every file written through this layer is
    /// truncated to the prefix its last honest sync covered. Files that
    /// were renamed keep the tracking of their source (rename moves
    /// bytes, not durability).
    pub fn power_cut(&self) -> io::Result<()> {
        let state = self.state.lock().expect("faulted io state");
        for (path, track) in &state.files {
            match OpenOptions::new().write(true).open(path) {
                Ok(file) => file.set_len(track.durable_len)?,
                // A tracked file later removed outside this layer has
                // nothing left to lose.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().expect("faulted io state").injected
    }

    /// Directory syncs issued so far (one per atomic replace when the
    /// caller follows the fsync-before-rename discipline).
    pub fn dir_syncs(&self) -> u64 {
        self.state.lock().expect("faulted io state").dir_syncs
    }

    /// The next fault decision for one op on `class`, advancing that
    /// stream's counter.
    fn decide(&self, class: FileClass, op: IoOp) -> Option<IoFaultKind> {
        let mut state = self.state.lock().expect("faulted io state");
        let counter = state.counters.entry((class, op)).or_insert(0);
        let index = *counter;
        *counter += 1;
        let fault = self.plan.decide(class, op, index);
        if fault.is_some() {
            state.injected += 1;
        }
        fault
    }

    fn track_open(&self, path: &Path, len: u64) {
        // Bytes already on disk at open are assumed durable: this layer
        // audits the IO of the run it is armed for, not history.
        let mut state = self.state.lock().expect("faulted io state");
        state.files.insert(path.to_path_buf(), FileTrack { len, durable_len: len });
    }
}

impl JournalIo for FaultedIo {
    fn create(&self, class: FileClass, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        let file = File::create(path)?;
        self.track_open(path, 0);
        Ok(Box::new(FaultedFile {
            file,
            class,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
            plan: self.plan.clone(),
        }))
    }

    fn open_append(&self, class: FileClass, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        let file = OpenOptions::new().append(true).open(path)?;
        let len = file.metadata()?.len();
        let mut state = self.state.lock().expect("faulted io state");
        // Keep existing tracking (the file may hold unsynced bytes from
        // an earlier handle of this same layer); only a first encounter
        // assumes the on-disk bytes durable.
        state.files.entry(path.to_path_buf()).or_insert(FileTrack { len, durable_len: len });
        drop(state);
        Ok(Box::new(FaultedFile {
            file,
            class,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
            plan: self.plan.clone(),
        }))
    }

    fn read(&self, _class: FileClass, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, class: FileClass, from: &Path, to: &Path) -> io::Result<()> {
        if self.decide(class, IoOp::Rename) == Some(IoFaultKind::RenameFail) {
            return Err(io::Error::other("injected rename failure"));
        }
        std::fs::rename(from, to)?;
        let mut state = self.state.lock().expect("faulted io state");
        if let Some(track) = state.files.remove(from) {
            state.files.insert(to.to_path_buf(), track);
        }
        Ok(())
    }

    fn sync_parent_dir(&self, _path: &Path) -> io::Result<()> {
        self.state.lock().expect("faulted io state").dir_syncs += 1;
        Ok(())
    }
}

/// One open handle of a [`FaultedIo`].
struct FaultedFile {
    file: File,
    class: FileClass,
    path: PathBuf,
    state: Arc<Mutex<FaultedState>>,
    plan: IoFaultPlan,
}

impl FaultedFile {
    fn decide(&self, op: IoOp) -> Option<IoFaultKind> {
        let mut state = self.state.lock().expect("faulted io state");
        let counter = state.counters.entry((self.class, op)).or_insert(0);
        let index = *counter;
        *counter += 1;
        let fault = self.plan.decide(self.class, op, index);
        if fault.is_some() {
            state.injected += 1;
        }
        fault
    }

    fn grow(&self, by: u64) {
        let mut state = self.state.lock().expect("faulted io state");
        state.files.entry(self.path.clone()).or_default().len += by;
    }
}

impl DurableFile for FaultedFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.decide(IoOp::Write) {
            None => {
                self.file.write_all(bytes)?;
                self.grow(bytes.len() as u64);
                Ok(())
            }
            Some(IoFaultKind::ShortWrite) => {
                // A torn record: a prefix lands, the write errors.
                let torn = &bytes[..bytes.len() / 2];
                self.file.write_all(torn)?;
                self.grow(torn.len() as u64);
                Err(io::Error::new(io::ErrorKind::WriteZero, "injected short write"))
            }
            Some(IoFaultKind::WriteEio) => {
                // Transient EIO: nothing reached the file, retry-safe.
                Err(io::Error::other("injected write EIO"))
            }
            Some(IoFaultKind::Enospc) => {
                let torn = &bytes[..bytes.len() / 2];
                self.file.write_all(torn)?;
                self.grow(torn.len() as u64);
                Err(io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC"))
            }
            // Fsync/rename kinds cannot be scheduled on the write
            // stream (`IoFaultKind::op` binds them elsewhere).
            Some(other) => unreachable!("{other} scheduled on a write op"),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.decide(IoOp::Fsync) {
            None => {
                // Honest (simulated) sync: everything written so far on
                // this path becomes durable. No real fdatasync — the
                // durability model is the tracking, and trials stay
                // fast.
                let mut state = self.state.lock().expect("faulted io state");
                let track = state.files.entry(self.path.clone()).or_default();
                track.durable_len = track.len;
                Ok(())
            }
            Some(IoFaultKind::FsyncEio) => Err(io::Error::other("injected fsync EIO")),
            // The lie: report success, make nothing durable.
            Some(IoFaultKind::FsyncLie) => Ok(()),
            Some(other) => unreachable!("{other} scheduled on a fsync op"),
        }
    }
}

/// A temp-file sibling of `path` unique to this writer: the name
/// carries the pid and a process-global sequence number, so a crashed
/// or concurrent writer can never collide on a fixed `.tmp` name.
/// Always matched by [`remove_stale_temps`].
pub(crate) fn unique_temp(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!("{name}.{}-{seq}.tmp", std::process::id()))
}

/// Removes leftover [`unique_temp`] siblings of `path` — temps a
/// crashed writer abandoned. Best-effort by design: a temp that cannot
/// be listed or removed only wastes disk, it can never be confused for
/// the real document (readers only ever open `path` itself).
pub(crate) fn remove_stale_temps(path: &Path) {
    let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else { return };
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    let dir = parent.unwrap_or_else(|| Path::new("."));
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let prefix = format!("{name}.");
    for entry in entries.flatten() {
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if file.starts_with(&prefix) && file.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Whether a failed append is worth retrying: EIO-class transients
/// (`Other`, `Interrupted`). Short writes (`WriteZero`) left partial
/// bytes behind and disk-full (`StorageFull`) will not clear on its
/// own — both abort the typed way.
fn transient_write_error(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::Other | io::ErrorKind::Interrupted)
}

/// Appends `bytes`, retrying transient write errors up to
/// [`MAX_APPEND_RETRIES`] times with capped exponential backoff (the
/// same curve the resilience layer uses for encode retries). Counts
/// each retry on the `journal.io_retries` vtrace counter. Permanent
/// errors — and every sync error, per the module-level fsync-gate rule
/// — propagate to the caller's typed abort path.
pub fn append_retrying(file: &mut dyn DurableFile, bytes: &[u8]) -> io::Result<()> {
    let mut retry = 0u32;
    loop {
        match file.append(bytes) {
            Ok(()) => return Ok(()),
            Err(e) if retry < MAX_APPEND_RETRIES && transient_write_error(&e) => {
                retry += 1;
                vtrace::counter("journal.io_retries", 1);
                let backoff =
                    capped_backoff_secs(APPEND_BACKOFF_BASE_SECS, APPEND_BACKOFF_CAP_SECS, retry);
                std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfault::IoFaultPlan;

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("vbench-io-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn std_io_round_trips() {
        let path = scratch("std");
        let io = StdIo;
        let mut file = io.create(FileClass::Journal, &path).expect("create");
        file.append(b"hello\n").expect("append");
        file.sync().expect("sync");
        drop(file);
        let mut file = io.open_append(FileClass::Journal, &path).expect("open");
        file.append(b"world\n").expect("append");
        drop(file);
        assert_eq!(io.read(FileClass::Journal, &path).expect("read"), b"hello\nworld\n");
        io.sync_parent_dir(&path).expect("dir sync");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn power_cut_without_faults_keeps_synced_bytes_only() {
        let path = scratch("cut");
        let io = FaultedIo::new(IoFaultPlan::new());
        let mut file = io.create(FileClass::Journal, &path).expect("create");
        file.append(b"synced\n").expect("append");
        file.sync().expect("sync");
        file.append(b"unsynced\n").expect("append");
        drop(file);
        // Before the cut, readers see everything (page-cache view).
        assert_eq!(io.read(FileClass::Journal, &path).expect("read"), b"synced\nunsynced\n");
        io.power_cut().expect("power cut");
        assert_eq!(std::fs::read(&path).expect("read"), b"synced\n", "unsynced tail dropped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_lie_drops_acknowledged_bytes_at_power_cut() {
        let path = scratch("lie");
        let plan = IoFaultPlan::parse("lie=journal@0").expect("plan");
        let io = FaultedIo::new(plan);
        let mut file = io.create(FileClass::Journal, &path).expect("create");
        file.append(b"record-a\n").expect("append");
        file.sync().expect("the lie reports Ok");
        file.append(b"record-b\n").expect("append");
        file.sync().expect("honest second sync");
        drop(file);
        io.power_cut().expect("power cut");
        // The honest sync covered *everything* written before it —
        // including bytes a lie previously claimed durable.
        assert_eq!(std::fs::read(&path).expect("read"), b"record-a\nrecord-b\n");

        // Same schedule, but cut before any honest sync: the
        // acknowledged record vanishes entirely.
        let path2 = scratch("lie2");
        let io = FaultedIo::new(IoFaultPlan::parse("lie=journal@0").expect("plan"));
        let mut file = io.create(FileClass::Journal, &path2).expect("create");
        file.append(b"record-a\n").expect("append");
        file.sync().expect("the lie reports Ok");
        drop(file);
        io.power_cut().expect("power cut");
        assert_eq!(std::fs::read(&path2).expect("read"), b"", "lied-about bytes are gone");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        let path = scratch("short");
        let io = FaultedIo::new(IoFaultPlan::parse("short=journal@0").expect("plan"));
        let mut file = io.create(FileClass::Journal, &path).expect("create");
        let err = file.append(b"0123456789").expect_err("short write errors");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(std::fs::read(&path).expect("read"), b"01234", "half the record landed");
        assert_eq!(io.faults_injected(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_eio_writes_nothing_and_enospc_is_storage_full() {
        let path = scratch("eio");
        let io =
            FaultedIo::new(IoFaultPlan::parse("eio=journal@0,enospc=journal@1").expect("plan"));
        let mut file = io.create(FileClass::Journal, &path).expect("create");
        let eio = file.append(b"abcd").expect_err("EIO errors");
        assert_eq!(eio.kind(), io::ErrorKind::Other);
        assert_eq!(std::fs::read(&path).expect("read"), b"", "EIO wrote nothing");
        let full = file.append(b"abcd").expect_err("ENOSPC errors");
        assert_eq!(full.kind(), io::ErrorKind::StorageFull);
        assert_eq!(std::fs::read(&path).expect("read"), b"ab", "ENOSPC tore mid-record");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rename_fault_leaves_target_untouched_and_rename_moves_durability() {
        let dir = std::env::temp_dir();
        let from = dir.join(format!("vbench-io-ren-from-{}", std::process::id()));
        let to = dir.join(format!("vbench-io-ren-to-{}", std::process::id()));
        std::fs::write(&to, b"old").expect("seed target");
        let io = FaultedIo::new(IoFaultPlan::parse("rename-fail=status@0").expect("plan"));
        let mut file = io.create(FileClass::Status, &from).expect("create");
        file.append(b"new-doc").expect("append");
        file.sync().expect("sync");
        drop(file);
        let err = io.rename(FileClass::Status, &from, &to).expect_err("first rename faulted");
        assert!(err.to_string().contains("injected rename failure"));
        assert_eq!(std::fs::read(&to).expect("read"), b"old", "target untouched");
        // Second rename (op index 1) is clean; durability tracking
        // follows the bytes to the new name.
        io.rename(FileClass::Status, &from, &to).expect("second rename clean");
        io.power_cut().expect("power cut");
        assert_eq!(std::fs::read(&to).expect("read"), b"new-doc", "synced bytes survive");
        let _ = std::fs::remove_file(&to);
    }

    #[test]
    fn append_retrying_recovers_transient_eio_but_not_enospc() {
        let path = scratch("retry");
        let io = FaultedIo::new(IoFaultPlan::parse("eio=journal@0,eio=journal@1").expect("plan"));
        let mut file = io.create(FileClass::Journal, &path).expect("create");
        append_retrying(file.as_mut(), b"record\n").expect("retries past two EIOs");
        assert_eq!(std::fs::read(&path).expect("read"), b"record\n");

        let path2 = scratch("retry2");
        let io = FaultedIo::new(IoFaultPlan::parse("enospc=journal@0").expect("plan"));
        let mut file = io.create(FileClass::Journal, &path2).expect("create");
        let err = append_retrying(file.as_mut(), b"record\n").expect_err("ENOSPC is permanent");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);

        // Four EIOs in a row exhaust the budget (3 retries).
        let path3 = scratch("retry3");
        let io = FaultedIo::new(
            IoFaultPlan::parse("eio=journal@0,eio=journal@1,eio=journal@2,eio=journal@3")
                .expect("plan"),
        );
        let mut file = io.create(FileClass::Journal, &path3).expect("create");
        assert!(append_retrying(file.as_mut(), b"record\n").is_err(), "budget exhausted");
        for p in [&path, &path2, &path3] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn op_counters_are_shared_across_handles_of_a_class() {
        let a = scratch("ctr-a");
        let b = scratch("ctr-b");
        let io = FaultedIo::new(IoFaultPlan::parse("eio=journal@1").expect("plan"));
        let mut fa = io.create(FileClass::Journal, &a).expect("create a");
        let mut fb = io.create(FileClass::Journal, &b).expect("create b");
        fa.append(b"x").expect("op 0 clean");
        assert!(fb.append(b"y").is_err(), "op 1 faulted, even on another handle");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }
}
