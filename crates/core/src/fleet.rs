//! Transcoding-fleet sizing.
//!
//! The paper argues hardware encoders' "higher speed would allow a
//! significant downsizing of the transcoding fleet at a video sharing
//! infrastructure" (Section 5.3), trading compute cost against the
//! storage/network cost of their larger outputs. This module makes that
//! argument computable: a discrete-event simulation of a transcoding
//! fleet fed by a stochastic upload arrival process, plus a closed-form
//! sizing helper.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A transcoding fleet: identical workers draining an upload queue in
/// FIFO order.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of workers.
    pub workers: u32,
    /// Per-worker transcoding speed in pixels/second.
    pub worker_speed_pps: f64,
}

/// An upload workload: job arrival rate and per-job size distribution.
#[derive(Clone, Copy, Debug)]
pub struct UploadWorkload {
    /// Mean arrivals per second (Poisson).
    pub arrivals_per_sec: f64,
    /// Mean pixels per uploaded video.
    pub mean_pixels: f64,
    /// Job-size spread: each job's pixels are
    /// `mean_pixels · exp(σ·Z - σ²/2)` (log-normal, unit mean).
    pub sigma: f64,
}

/// Worker-failure model for the fleet simulation: each transcode attempt
/// fails independently with `failure_prob` and is re-run up to
/// `max_retries` times; every attempt (failed or not) occupies a worker
/// for the job's full service time, which is how failures inflate fleet
/// size.
#[derive(Clone, Copy, Debug)]
pub struct FaultModel {
    /// Probability that any single attempt fails, in `[0, 1)`.
    pub failure_prob: f64,
    /// Retries per job after the first attempt (0 = fail fast).
    pub max_retries: u32,
}

impl FaultModel {
    /// No failures: attempts always succeed.
    pub fn none() -> FaultModel {
        FaultModel { failure_prob: 0.0, max_retries: 0 }
    }

    /// Expected attempts per job under this model, counting the retries
    /// of failed attempts: `Σ_{k=0..r} p^k = (1 − p^(r+1)) / (1 − p)`.
    pub fn expected_attempts(&self) -> f64 {
        let p = self.failure_prob;
        if p <= 0.0 {
            return 1.0;
        }
        let r = self.max_retries;
        (1.0 - p.powi(r as i32 + 1)) / (1.0 - p)
    }
}

/// Result of a fleet simulation.
#[derive(Clone, Copy, Debug)]
pub struct FleetReport {
    /// Jobs completed.
    pub completed: u64,
    /// Jobs dropped after exhausting their retry budget.
    pub failed: u64,
    /// Retry attempts run (attempts beyond each job's first).
    pub retries: u64,
    /// Mean worker utilization in `[0, 1]`.
    pub utilization: f64,
    /// Mean queueing delay (arrival → start) in seconds.
    pub mean_wait_secs: f64,
    /// 99th-percentile queueing delay in seconds.
    pub p99_wait_secs: f64,
}

/// Simulates `duration_secs` of fault-free fleet operation
/// (deterministic for a seed). Equivalent to
/// [`simulate_fleet_with_faults`] under [`FaultModel::none`], with a
/// bit-identical arrival/size sequence.
///
/// # Panics
///
/// Panics if the fleet has zero workers or non-positive speed, or the
/// workload has non-positive rate/size.
pub fn simulate_fleet(
    fleet: &FleetConfig,
    workload: &UploadWorkload,
    duration_secs: f64,
    seed: u64,
) -> FleetReport {
    simulate_fleet_with_faults(fleet, workload, duration_secs, seed, &FaultModel::none())
}

/// Simulates `duration_secs` of fleet operation under a worker-failure
/// model (deterministic for a seed). Failure draws happen only when
/// `faults.failure_prob > 0`, so the fault-free path consumes the exact
/// RNG sequence [`simulate_fleet`] always has.
///
/// # Panics
///
/// Panics if the fleet has zero workers or non-positive speed, the
/// workload has non-positive rate/size, or `failure_prob` is outside
/// `[0, 1)`.
pub fn simulate_fleet_with_faults(
    fleet: &FleetConfig,
    workload: &UploadWorkload,
    duration_secs: f64,
    seed: u64,
    faults: &FaultModel,
) -> FleetReport {
    assert!(fleet.workers > 0 && fleet.worker_speed_pps > 0.0, "fleet must be non-trivial");
    assert!(
        workload.arrivals_per_sec > 0.0 && workload.mean_pixels > 0.0,
        "workload must be non-trivial"
    );
    assert!((0.0..1.0).contains(&faults.failure_prob), "failure probability must be in [0, 1)");
    let mut span = vtrace::span("fleet.simulate");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Per-worker next-free times.
    let mut free_at = vec![0.0f64; fleet.workers as usize];
    let mut t = 0.0f64;
    let mut waits: Vec<f64> = Vec::new();
    let mut busy_time = 0.0f64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut retries = 0u64;
    loop {
        // Poisson arrivals: exponential gaps.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / workload.arrivals_per_sec;
        if t > duration_secs {
            break;
        }
        // Log-normal job size with unit mean.
        let z = standard_normal(&mut rng);
        let pixels = workload.mean_pixels
            * (workload.sigma * z - workload.sigma * workload.sigma / 2.0).exp();
        let service = pixels / fleet.worker_speed_pps;
        // Attempts the job burns: 1 on the fault-free path (no RNG draw,
        // keeping simulate_fleet's sequence bit-identical), else a
        // geometric draw truncated by the retry budget.
        let mut attempts = 1u64;
        let mut succeeded = true;
        if faults.failure_prob > 0.0 {
            succeeded = false;
            attempts = 0;
            for _ in 0..=faults.max_retries {
                attempts += 1;
                if rng.gen_range(0.0..1.0) >= faults.failure_prob {
                    succeeded = true;
                    break;
                }
            }
        }
        // FIFO: earliest-free worker takes the job; each attempt re-runs
        // the full transcode on the same worker.
        // Invariant: `workers > 0` is asserted on entry and free times
        // are sums of finite service times — neither expect can fire.
        let (idx, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("non-empty fleet");
        let start = earliest.max(t);
        waits.push(start - t);
        free_at[idx] = start + service * attempts as f64;
        busy_time += service * attempts as f64;
        retries += attempts - 1;
        if succeeded {
            completed += 1;
        } else {
            failed += 1;
        }
    }
    waits.sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
    let mean_wait =
        if waits.is_empty() { 0.0 } else { waits.iter().sum::<f64>() / waits.len() as f64 };
    let p99 =
        if waits.is_empty() { 0.0 } else { waits[((waits.len() - 1) as f64 * 0.99) as usize] };
    let report = FleetReport {
        completed,
        failed,
        retries,
        utilization: (busy_time / (duration_secs * f64::from(fleet.workers))).min(1.0),
        mean_wait_secs: mean_wait,
        p99_wait_secs: p99,
    };
    if span.id().is_some() {
        span.record("workers", u64::from(fleet.workers));
        span.record("duration_secs", duration_secs);
        span.record("completed", report.completed);
        span.record("utilization", report.utilization);
        vtrace::counter("fleet.jobs_simulated", report.completed);
        if report.retries > 0 {
            vtrace::counter("fleet.sim_retries", report.retries);
        }
        if report.failed > 0 {
            vtrace::counter("fleet.sim_failed", report.failed);
        }
        // Simulated (not wall-clock) queueing delays, in microseconds.
        for &w in &waits {
            vtrace::histogram("fleet.sim_wait_us", (w * 1e6) as u64);
        }
    }
    report
}

fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Closed-form fleet size: the number of workers needed to serve an
/// offered load (pixels/second of uploads) at a target utilization.
///
/// # Panics
///
/// Panics if arguments are non-positive or utilization is not in (0, 1].
pub fn fleet_size_for(
    offered_pixels_per_sec: f64,
    worker_speed_pps: f64,
    target_utilization: f64,
) -> u32 {
    assert!(offered_pixels_per_sec > 0.0 && worker_speed_pps > 0.0, "load must be positive");
    assert!(target_utilization > 0.0 && target_utilization <= 1.0, "utilization must be in (0, 1]");
    (offered_pixels_per_sec / (worker_speed_pps * target_utilization)).ceil() as u32
}

/// [`fleet_size_for`] under a failure model: the offered load is
/// inflated by the expected attempts per job
/// ([`FaultModel::expected_attempts`]), since every failed attempt
/// occupies a worker for the job's full service time before the retry
/// runs.
///
/// # Panics
///
/// Panics if arguments are non-positive, utilization is not in (0, 1],
/// or `failure_prob` is outside `[0, 1)`.
pub fn fleet_size_for_resilient(
    offered_pixels_per_sec: f64,
    worker_speed_pps: f64,
    target_utilization: f64,
    faults: &FaultModel,
) -> u32 {
    assert!((0.0..1.0).contains(&faults.failure_prob), "failure probability must be in [0, 1)");
    fleet_size_for(
        offered_pixels_per_sec * faults.expected_attempts(),
        worker_speed_pps,
        target_utilization,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> UploadWorkload {
        UploadWorkload { arrivals_per_sec: 2.0, mean_pixels: 10e6, sigma: 0.5 }
    }

    #[test]
    fn deterministic_per_seed() {
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let a = simulate_fleet(&fleet, &workload(), 500.0, 1);
        let b = simulate_fleet(&fleet, &workload(), 500.0, 1);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99_wait_secs, b.p99_wait_secs);
    }

    #[test]
    fn utilization_matches_offered_load() {
        // Offered load: 2 jobs/s x 10M pixels / 10M pps = 2 busy workers.
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let r = simulate_fleet(&fleet, &workload(), 2_000.0, 7);
        assert!((r.utilization - 0.5).abs() < 0.08, "utilization {}", r.utilization);
        assert!(r.completed > 3_000);
    }

    #[test]
    fn overloaded_fleet_builds_queues() {
        let under = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let over = FleetConfig { workers: 2, worker_speed_pps: 10e6 };
        let w_under = simulate_fleet(&under, &workload(), 1_000.0, 3).mean_wait_secs;
        let w_over = simulate_fleet(&over, &workload(), 1_000.0, 3).mean_wait_secs;
        assert!(w_over > w_under * 5.0, "saturated fleet must queue: {w_over} vs {w_under}");
    }

    #[test]
    fn faster_workers_shrink_the_fleet() {
        // The paper's hardware argument: a 10x faster worker cuts the
        // fleet 10x at equal utilization.
        let sw = fleet_size_for(1e9, 5e6, 0.7);
        let hw = fleet_size_for(1e9, 50e6, 0.7);
        assert_eq!(sw, 286);
        assert_eq!(hw, 29);
        assert!(sw >= hw * 9);
    }

    #[test]
    fn p99_at_least_mean() {
        let fleet = FleetConfig { workers: 3, worker_speed_pps: 10e6 };
        let r = simulate_fleet(&fleet, &workload(), 1_000.0, 11);
        assert!(r.p99_wait_secs >= r.mean_wait_secs);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let _ = fleet_size_for(1.0, 1.0, 1.5);
    }

    #[test]
    fn fault_free_model_matches_plain_simulation_exactly() {
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let plain = simulate_fleet(&fleet, &workload(), 500.0, 9);
        let faulted =
            simulate_fleet_with_faults(&fleet, &workload(), 500.0, 9, &FaultModel::none());
        assert_eq!(plain.completed, faulted.completed);
        assert_eq!(plain.p99_wait_secs, faulted.p99_wait_secs);
        assert_eq!(faulted.failed, 0);
        assert_eq!(faulted.retries, 0);
    }

    #[test]
    fn failures_inflate_utilization_and_queueing() {
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let faults = FaultModel { failure_prob: 0.3, max_retries: 3 };
        let clean = simulate_fleet(&fleet, &workload(), 1_000.0, 5);
        let faulty = simulate_fleet_with_faults(&fleet, &workload(), 1_000.0, 5, &faults);
        assert!(faulty.retries > 0, "30% failure rate must retry");
        assert!(
            faulty.utilization > clean.utilization,
            "retries burn worker time: {} vs {}",
            faulty.utilization,
            clean.utilization
        );
        // Retry fraction tracks the model: E[attempts] − 1 ≈ 0.42.
        let per_job = faulty.retries as f64 / (faulty.completed + faulty.failed) as f64;
        assert!((per_job - (faults.expected_attempts() - 1.0)).abs() < 0.05, "got {per_job}");
    }

    #[test]
    fn exhausted_retries_drop_jobs() {
        let fleet = FleetConfig { workers: 8, worker_speed_pps: 50e6 };
        let faults = FaultModel { failure_prob: 0.5, max_retries: 0 };
        let r = simulate_fleet_with_faults(&fleet, &workload(), 1_000.0, 13, &faults);
        let total = r.completed + r.failed;
        assert!(total > 0);
        let drop_rate = r.failed as f64 / total as f64;
        assert!((drop_rate - 0.5).abs() < 0.05, "fail-fast at p=0.5 drops half: {drop_rate}");
    }

    #[test]
    fn resilient_sizing_grows_with_failure_rate() {
        let none = fleet_size_for_resilient(1e9, 5e6, 0.7, &FaultModel::none());
        assert_eq!(none, fleet_size_for(1e9, 5e6, 0.7));
        let flaky = FaultModel { failure_prob: 0.2, max_retries: 3 };
        let sized = fleet_size_for_resilient(1e9, 5e6, 0.7, &flaky);
        assert!(sized > none, "retry load needs more workers: {sized} vs {none}");
        // E[attempts] = (1 − 0.2⁴) / 0.8 = 1.248 → ~25% more workers.
        assert!((f64::from(sized) / f64::from(none) - 1.248).abs() < 0.02);
    }
}
