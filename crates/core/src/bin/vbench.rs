//! The vbench command-line tool.
//!
//! Every encode runs through the unified transcode engine; the
//! `--backend` flag selects the software codec (default) or one of the
//! hardware encoder models.
//!
//! ```text
//! vbench suite   [--scale tiny|exp|full]
//! vbench entropy --video <name> [--scale ...]
//! vbench score   --scenario upload|live|vod|popular|platform
//!                --video <name> --family avc|hevc|vp9
//!                --preset ultrafast..veryslow
//!                [--backend software|nvenc|qsv] [--scale ...]
//! vbench transcode --video <name> --family <f> --preset <p>
//!                  [--crf N | --bitrate BPS] [--bframes]
//!                  [--stream] [--window FRAMES]
//!                  [--backend software|nvenc|qsv] --out <file>
//! vbench inspect --in <file>
//! vbench batch   [--workers N] [--backend software|nvenc|qsv] [--scale ...]
//!                [--videos a,b,c] [--stream] [--window FRAMES]
//!                [--max-retries N] [--job-deadline SECS] [--degrade]
//!                [--hedge] [--fault-plan SPEC]
//!                [--journal PATH [--resume]] [--out-dir DIR]
//! vbench dispatch --journal PATH [--procs M] [--workers K-per-proc]
//!                 [--resume] [--status-out FILE] [... the batch flags ...]
//! vbench worker  --journal PATH --worker-id N --run R [--workers K]
//!                [... the batch flags ...]
//! vbench top     --journal PATH [--once] [--interval-ms N]
//! vbench chaos   [--trials N] [--seed S] [--topology batch|dispatch]
//!                [--procs M] [--workers K] [--dir DIR] [--out FILE]
//!                [--videos a,b,c] [--scale ...] [--backend ...]
//!                [--inject-unsynced-rename]
//! vbench bench   [--name NAME] [--runs N] [--out FILE]
//!                [--workers K] [--scale ...]
//! vbench serve   --scenario upload|popular|live --offered-load L
//!                --duration SECS [--capacity N] [--queue-depth Q]
//!                [--seed S] [--catalog C] [--workers K]
//!                [--journal PATH] [--max-shed-rate PCT] [--scale ...]
//! vbench saturate --scenario upload|popular|live --duration SECS
//!                 [--loads l1,l2,...] [--capacity N] [--queue-depth Q]
//!                 [--seed S] [--catalog C] [--workers K] [--out FILE]
//!                 [--journal PATH] [--max-shed-rate PCT] [--scale ...]
//! vbench plan    --scenario upload|popular|live --offered-load L
//!                --duration SECS [--seed S] [--catalog C]
//!                [--workers K] [--out FILE] [--scale ...]
//! ```
//!
//! `--workers 0` (or omitting the flag) auto-detects the worker count
//! from the machine's available parallelism; the resolved count is
//! reported in the batch summary line.
//!
//! `dispatch` runs the batch across `--procs` worker *processes* (each
//! with `--workers` encoding threads), coordinating through lease and
//! heartbeat records in the shared `--journal` file. The dispatcher
//! reaps dead workers, expires their leases so survivors reclaim the
//! jobs, and respawns replacements; outputs stay byte-identical to a
//! single-process run at any topology. `worker` is the child-process
//! side — spawned by `dispatch`, not normally run by hand.
//!
//! `top` monitors a running dispatch *read-only*: it tails the shared
//! journal's lease/heartbeat ledger and renders per-worker state
//! (in-flight job, heartbeat, completion counts). `--once` prints a
//! single deterministic snapshot — a pure function of the journal
//! bytes, no clocks — and exits; without it the view refreshes every
//! `--interval-ms` (default 500) until the batch completes, adding the
//! clock-derived throughput and ETA lines. The dispatcher's
//! `--status-out FILE` writes the same snapshot as a machine-readable
//! `status.json` (atomic rename, schema in DESIGN.md) every ~500ms.
//!
//! `bench` runs a pinned workload (the suite at `--scale`, in-process)
//! `--runs` times and writes `BENCH_<name>.json`: schema-versioned
//! per-scenario encode-time/throughput/quality stats plus an
//! environment fingerprint, the input format of `vprof compare`.
//!
//! `--stream` runs the bounded-memory pull pipeline: frames are rendered
//! off the synthetic source as the encoder asks for them and dropped as
//! soon as they stop being referenceable, so clips are never resident.
//! Output is byte-identical to the in-memory path; `--window` caps the
//! resident-frame budget (it must be at least the configuration's
//! structural minimum), and the peak actually reached is reported through
//! the tracing gauges (`encode.peak_resident_frames`,
//! `farm.peak_resident_frames`), never on stdout.
//!
//! The batch resilience flags map onto
//! [`vbench::resilience::ResilienceConfig`]: `--fault-plan` takes a
//! comma-separated [`vfault::FaultPlan`] spec such as
//! `transient=0,panic=3,straggle=1:0.2,seed=7` (see `vfault` docs for
//! the grammar), `--degrade` downshifts the preset one notch when a
//! retry follows a `--job-deadline` miss, and `--hedge` enables
//! straggler hedging with the default policy. A batch with failed jobs
//! prints every per-job status and exits 1.
//!
//! `--journal PATH` makes the batch durable: every completed job is
//! appended to a crash-consistent JSONL journal (fsync per record, with
//! the bitstream's CRC-32). After a crash — real or injected via a
//! `crash=JOB@POINT` fault-plan term — rerunning the same command with
//! `--resume` replays the journaled jobs (CRC-verified, byte-identical,
//! zero re-encode) and finishes only the missing ones. `--out-dir DIR`
//! writes each completed job's bitstream to `DIR/<video>.vbs`, and
//! `--videos` restricts the batch to the named suite clips.
//!
//! `--io-fault-plan SPEC` (on `batch` with `--journal`, `dispatch`, and
//! `worker`) routes the journal's durable IO through the storage-fault
//! layer: a seeded [`vfault::IoFaultPlan`] spec such as
//! `short=journal@2,lie=journal@0` injects torn writes, write/fsync
//! EIO, ENOSPC, lying fsyncs, and rename failures keyed on (file class,
//! op index), so a failing schedule replays bit-exactly. On `dispatch`
//! the spec arms the *initial wave* of workers; replacements run clean.
//!
//! `chaos` is the storage-fault auditor built on that layer: `--trials`
//! seeded trials of the batch (`--topology batch`, with simulated power
//! cuts) or dispatch (`--topology dispatch`, with scripted worker
//! kills) backend under randomized crash + IO-fault schedules, each
//! recovered with clean resumes and checked against the durability
//! invariants (no fsync-acknowledged record lost, zero replay
//! re-encodes, exactly one durable record per job, outputs
//! byte-identical to an uninterrupted run, status snapshots
//! all-or-nothing). The schema-versioned `CHAOS_<topology>.json` report
//! carries every trial's reproducing fault schedule; any violation
//! exits 6. `--inject-unsynced-rename` deliberately reintroduces the
//! classic rename-before-fsync snapshot bug to demonstrate the auditor
//! catches it. Chaos always runs a fixed clean resilience policy —
//! retry/hedge/deadline flags are not part of the audited surface.
//!
//! Every command additionally accepts the telemetry flags:
//!
//! ```text
//! --log-level off|summary|verbose   recording level (default off)
//! --trace-out <path>                write the JSONL event stream here
//!                                   (implies at least --log-level summary)
//! ```
//!
//! Tracing writes only to stderr and the `--trace-out` file; report
//! output on stdout is byte-identical with tracing on or off.
//!
//! `serve` runs the admission-controlled service once at a fixed
//! offered load; `saturate` sweeps offered load (defaulting to a grid
//! around the estimated saturation point) and writes the
//! `SAT_<scenario>.json` report rendered by `vprof sat`. Both simulate
//! admission/scheduling in deterministic virtual time and then encode
//! the admitted (video, degradation) mix for real — `--workers` only
//! changes wall-clock time, never a byte of stdout or of the report.
//! With `--journal PATH` the encode batch is crash-consistent and every
//! shed lands as a durable `shed` record. `--max-shed-rate PCT` is a
//! QoS gate: a run whose shed rate exceeds it exits 4.
//!
//! `plan` is the cost plane's front door: it prices the scenario's
//! arrival stream on every instance type in the [`vhw::InstanceCatalog`]
//! (content-feature cost prediction, calibrated against real encodes),
//! plans a dollar-minimal fleet per deadline multiplier, and writes the
//! `PARETO_<scenario>.json` cost-QoS frontier rendered by `vprof
//! pareto` — byte-identical at any `--workers`, with a real-encode
//! fingerprint over the planned job set as proof. `--placed` on
//! `batch`/`dispatch` runs those batches in the planner's claim order
//! (jobs grouped by assigned instance); it is forwarded to worker
//! processes like every job-defining flag.
//!
//! Exit codes: 0 success, 1 transcode/IO failure, 2 usage error,
//! 3 simulated crash (a scripted crash fault fired — the journal is
//! left exactly as a real mid-run death would leave it), 4 QoS gate
//! (`--max-shed-rate` exceeded), 5 infeasible plan (`vbench plan` found
//! a job no catalog instance finishes inside the scenario deadline),
//! 6 chaos invariant violation (`vbench chaos` caught a recovery bug;
//! the report carries the reproducing seeds). The full table shared by
//! every workspace binary lives in [`vbench::cli`].

use std::collections::HashMap;

use vbench::chaos::{run_chaos, ChaosOptions, ChaosScenario};
use vbench::cli;
use vbench::engine::{transcode, Backend, Engine, RateMode, TranscodeRequest};
use vbench::exec::PlacementPlan;
use vbench::exec::{
    merge_trace_files, run_dispatch, run_worker, run_worker_with_io, snapshot_from_journal,
    write_atomic, DispatchOptions, FaultedIo, WorkerOptions,
};
use vbench::farm::{transcode_batch_resilient, EngineBatchReport, EngineJob, JobSource};
use vbench::fleet::{pareto_report, plan_fleet, JobFeatures, PlanJob};
use vbench::journal::{
    run_batch_journaled, run_batch_journaled_with_io, JournalConfig, JournalError,
};
use vbench::reference::{reference_encode_with_native, reference_request_for, target_bps_for};
use vbench::report::{fmt_ratio, fmt_score, TextTable};
use vbench::resilience::{HedgePolicy, ResilienceConfig};
use vbench::scenario::{score_with_video, Scenario};
use vbench::service::{
    degraded_saturation_load, estimated_saturation_load, run_saturation, run_service,
    video_profiles, SatPoint, ServiceConfig, ServiceError, ServiceOutcome,
};
use vbench::suite::{Suite, SuiteOptions};
use vcodec::{CodecFamily, Preset};
use vhw::{HwVendor, InstanceCatalog};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
    };
    let flags = parse_flags(&args[1..]);
    init_tracing(&flags);
    let opts = match flags.get("scale").map(String::as_str) {
        None | Some("tiny") => SuiteOptions::tiny(),
        Some("exp") | Some("experiment") => SuiteOptions::experiment(),
        Some("full") => SuiteOptions::default(),
        Some(other) => die(&format!("unknown scale '{other}'")),
    };
    match cmd.as_str() {
        "suite" => cmd_suite(&opts),
        "entropy" => cmd_entropy(&opts, &flags),
        "score" => cmd_score(&opts, &flags),
        "transcode" => cmd_transcode(&opts, &flags),
        "inspect" => cmd_inspect(&flags),
        "batch" => cmd_batch(&opts, &flags),
        "dispatch" => cmd_dispatch(&opts, &flags),
        "worker" => cmd_worker(&opts, &flags),
        "top" => cmd_top(&flags),
        "chaos" => cmd_chaos(&opts, &flags),
        "bench" => cmd_bench(&opts, &flags),
        "serve" => cmd_serve(&opts, &flags),
        "saturate" => cmd_saturate(&opts, &flags),
        "plan" => cmd_plan(&opts, &flags),
        other => die(&format!("unknown command '{other}'")),
    }
    finish_tracing();
}

/// Configures vtrace from `--log-level` / `--trace-out` via the shared
/// [`cli`] plumbing. Requesting a trace file with the level still off
/// lifts it to `summary` — an empty trace would defeat the point of
/// asking for one.
fn init_tracing(flags: &HashMap<String, String>) {
    cli::init_tracing(
        "vbench",
        flags.get("log-level").map(String::as_str),
        flags.get("trace-out").cloned(),
    );
}

/// Flushes the trace through the shared [`cli`] plumbing.
fn finish_tracing() {
    cli::finish_tracing("vbench");
}

fn usage() -> ! {
    eprintln!(
        "usage: vbench <suite|entropy|score|transcode|inspect|batch|dispatch|worker|top|chaos\
         |bench|serve|saturate|plan> [flags]\n\
         see crates/core/src/bin/vbench.rs for the flag reference"
    );
    std::process::exit(cli::EXIT_USAGE);
}

/// Usage error: bad command line. Exit 2, before any work ran.
fn die(msg: &str) -> ! {
    cli::die("vbench", msg)
}

/// Runtime error: a transcode or I/O operation failed. Logged through
/// vtrace (always reaches stderr), the trace is still flushed, exit 1 —
/// distinct from usage errors so scripts can tell them apart.
fn fail(msg: &str) -> ! {
    cli::fail("vbench", msg)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            die(&format!("expected a --flag, got '{}'", args[i]));
        };
        // Boolean flags take no value.
        if matches!(
            name,
            "bframes"
                | "hedge"
                | "degrade"
                | "stream"
                | "resume"
                | "once"
                | "placed"
                | "inject-unsynced-rename"
        ) {
            map.insert(name.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).unwrap_or_else(|| die(&format!("--{name} needs a value")));
        map.insert(name.to_string(), value.clone());
        i += 2;
    }
    map
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> &'a str {
    flags.get(name).map(String::as_str).unwrap_or_else(|| die(&format!("--{name} is required")))
}

/// The `--window` resident-frame cap, if given (requires `--stream`).
fn stream_window(flags: &HashMap<String, String>) -> Option<usize> {
    let window = flags.get("window").map(|w| {
        let n: usize = w.parse().unwrap_or_else(|_| die("--window must be a frame count"));
        if n == 0 {
            die("--window must be positive");
        }
        n
    });
    if window.is_some() && !flags.contains_key("stream") {
        die("--window requires --stream");
    }
    window
}

fn parse_family(s: &str) -> CodecFamily {
    match s {
        "avc" => CodecFamily::Avc,
        "hevc" => CodecFamily::Hevc,
        "vp9" => CodecFamily::Vp9,
        "av1" => CodecFamily::Av1,
        other => die(&format!("unknown family '{other}' (avc|hevc|vp9|av1)")),
    }
}

fn parse_preset(s: &str) -> Preset {
    match s {
        "ultrafast" => Preset::UltraFast,
        "veryfast" => Preset::VeryFast,
        "fast" => Preset::Fast,
        "medium" => Preset::Medium,
        "slow" => Preset::Slow,
        "veryslow" => Preset::VerySlow,
        other => die(&format!("unknown preset '{other}'")),
    }
}

/// The hardware vendor selected by `--backend`, or `None` for software.
fn hw_vendor(flags: &HashMap<String, String>) -> Option<HwVendor> {
    match flags.get("backend").map(String::as_str) {
        None | Some("software") | Some("sw") => None,
        Some("nvenc") => Some(HwVendor::Nvenc),
        Some("qsv") => Some(HwVendor::Qsv),
        Some(other) => die(&format!("unknown backend '{other}' (software|nvenc|qsv)")),
    }
}

fn backend_for(flags: &HashMap<String, String>, family: CodecFamily) -> Backend {
    match hw_vendor(flags) {
        None => Backend::Software(family),
        Some(vendor) => Backend::Hardware(vendor),
    }
}

/// Hardware rate control is single pass; a two-pass request routed to an
/// ASIC runs its single-pass mode at the same target.
fn adapt_rate(backend: Backend, rate: RateMode) -> RateMode {
    match (backend, rate) {
        (Backend::Hardware(_), RateMode::TwoPassBitrate { bps }) => RateMode::Bitrate { bps },
        _ => rate,
    }
}

fn parse_scenario(s: &str) -> Scenario {
    match s {
        "upload" => Scenario::Upload,
        "live" => Scenario::Live,
        "vod" => Scenario::Vod,
        "popular" => Scenario::Popular,
        "platform" => Scenario::Platform,
        other => die(&format!("unknown scenario '{other}'")),
    }
}

fn cmd_suite(opts: &SuiteOptions) {
    let suite = Suite::vbench(opts);
    let mut t = TextTable::new(["name", "resolution", "fps", "published entropy", "class"]);
    for v in &suite {
        t.push_row([
            v.name.to_string(),
            v.spec.resolution.to_string(),
            v.category.fps.to_string(),
            format!("{:.1}", v.category.entropy),
            format!("{:?}", v.spec.class),
        ]);
    }
    print!("{t}");
}

fn cmd_entropy(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let suite = Suite::vbench(opts);
    let name = required(flags, "video");
    let entry = suite.by_name(name).unwrap_or_else(|| die(&format!("no suite video '{name}'")));
    let video = entry.generate();
    let e = vbench::reference::measure_entropy(&video);
    println!(
        "{name}: measured {e:.2} bit/pix/s at CRF 18 (published category: {:.1})",
        entry.category.entropy
    );
}

fn cmd_score(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let suite = Suite::vbench(opts);
    let name = required(flags, "video");
    let entry = suite.by_name(name).unwrap_or_else(|| die(&format!("no suite video '{name}'")));
    let scenario = parse_scenario(required(flags, "scenario"));
    let family = parse_family(required(flags, "family"));
    let preset = parse_preset(required(flags, "preset"));
    let video = entry.generate();
    let (reference, _) = reference_encode_with_native(scenario, &video, entry.category.kpixels);
    let backend = backend_for(flags, family);
    let rate =
        adapt_rate(backend, vbench::reference::reference_config(scenario, &video).rate.into());
    let req = TranscodeRequest::new(backend, preset, rate);
    let outcome = transcode(&video, &req).unwrap_or_else(|e| fail(&e.to_string()));
    let s = score_with_video(scenario, &video, &outcome.measurement, &reference);
    let mut t = TextTable::new(["video", "scenario", "S", "B", "Q", "valid", "score"]);
    t.push_row([
        name.to_string(),
        scenario.to_string(),
        fmt_ratio(s.ratios.s),
        fmt_ratio(s.ratios.b),
        fmt_ratio(s.ratios.q),
        s.valid.to_string(),
        fmt_score(&s),
    ]);
    print!("{t}");
}

fn cmd_transcode(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let suite = Suite::vbench(opts);
    let name = required(flags, "video");
    let entry = suite.by_name(name).unwrap_or_else(|| die(&format!("no suite video '{name}'")));
    let family = parse_family(required(flags, "family"));
    let preset = parse_preset(required(flags, "preset"));
    let backend = backend_for(flags, family);
    let rate = match (flags.get("crf"), flags.get("bitrate")) {
        (Some(crf), None) => RateMode::ConstQuality {
            crf: crf.parse().unwrap_or_else(|_| die("--crf must be a number")),
        },
        (None, Some(bps)) => adapt_rate(
            backend,
            RateMode::TwoPassBitrate {
                bps: bps.parse().unwrap_or_else(|_| die("--bitrate must be an integer")),
            },
        ),
        _ => die("exactly one of --crf or --bitrate is required"),
    };
    let mut req = TranscodeRequest::new(backend, preset, rate);
    if flags.contains_key("bframes") {
        req = req.with_bframes();
    }
    let window = stream_window(flags);
    if let Some(w) = window {
        req = req.with_window(w);
    }
    // Streaming pulls frames straight off the synthetic source — the
    // clip is never materialized — and prints the identical report line
    // (bitstream, bitrate, and quality are byte-/bit-identical; only the
    // wall-clock speed figure can vary, as it does run to run anyway).
    let (bytes, m) = if flags.contains_key("stream") {
        let mut source = entry.spec.source();
        let outcome = vbench::engine::transcode_stream(&mut source, &req)
            .unwrap_or_else(|e| fail(&e.to_string()));
        (outcome.bytes, outcome.measurement)
    } else {
        let video = entry.generate();
        let outcome = transcode(&video, &req).unwrap_or_else(|e| fail(&e.to_string()));
        (outcome.output.bytes, outcome.measurement)
    };
    let path = required(flags, "out");
    std::fs::write(path, &bytes).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
    println!(
        "{name} -> {path} via {backend}: {} bytes, {:.3} bit/pix/s, {:.2} dB, {:.2} Mpix/s",
        bytes.len(),
        m.bitrate_bpps,
        m.quality_db,
        m.speed_mpps()
    );
}

fn cmd_inspect(flags: &HashMap<String, String>) {
    let path = required(flags, "in");
    let bytes = std::fs::read(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let info = vcodec::probe_stream(&bytes).unwrap_or_else(|e| fail(&format!("{e}")));
    println!(
        "{path}: {} {} @ {:.3} fps, {} frames, gop {}, backend {:?}, deblock {}",
        info.family, info.resolution, info.fps, info.frames, info.gop, info.backend, info.deblock
    );
    let index = vpack::index(&bytes).unwrap_or_else(|e| fail(&format!("{e}")));
    let keys = index.iter().filter(|e| e.intra).count();
    println!("{} frame records, {keys} keyframes, crc32 {:08x}", index.len(), vpack::crc32(&bytes));
}

/// Builds the batch resilience policy from the CLI flags.
fn resilience_from_flags(flags: &HashMap<String, String>) -> ResilienceConfig {
    let mut cfg = ResilienceConfig::default();
    if let Some(r) = flags.get("max-retries") {
        cfg = cfg.with_max_retries(
            r.parse().unwrap_or_else(|_| die("--max-retries must be an integer")),
        );
    }
    if let Some(d) = flags.get("job-deadline") {
        let secs: f64 = d.parse().unwrap_or_else(|_| die("--job-deadline must be seconds"));
        if secs <= 0.0 {
            die("--job-deadline must be positive");
        }
        cfg = cfg.with_job_deadline(secs);
    }
    if flags.contains_key("degrade") {
        cfg = cfg.with_degradation();
    }
    if flags.contains_key("hedge") {
        cfg = cfg.with_hedge(HedgePolicy::default());
    }
    if let Some(spec) = flags.get("fault-plan") {
        let plan = vfault::FaultPlan::parse(spec).unwrap_or_else(|e| die(&e.to_string()));
        cfg = cfg.with_fault_plan(plan);
    }
    cfg
}

/// Resolves a worker-count flag: `0` or omitted auto-detects from the
/// machine's available parallelism.
fn resolve_workers(flags: &HashMap<String, String>) -> usize {
    let requested: usize = flags
        .get("workers")
        .map(|w| w.parse().unwrap_or_else(|_| die("--workers must be an integer")))
        .unwrap_or(0);
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4)
    }
}

/// The `--journal`/`--resume` pair, validated.
fn journal_from_flags(flags: &HashMap<String, String>) -> Option<JournalConfig> {
    let journal = flags
        .get("journal")
        .map(|path| JournalConfig::new(path).with_resume(flags.contains_key("resume")));
    if flags.contains_key("resume") && journal.is_none() {
        die("--resume requires --journal");
    }
    journal
}

/// Builds the engine job list from the suite and the job-defining flags
/// (`--videos`, `--backend`, `--stream`, `--window`, `--placed`).
/// Deterministic in the flags: a dispatcher and its worker processes
/// build byte-identical batches from the same argv, which the journal's
/// manifest fingerprint then enforces — `--placed` rides on that
/// guarantee, so a placement-reordered batch is still the same batch in
/// every process.
fn build_batch_jobs(opts: &SuiteOptions, flags: &HashMap<String, String>) -> Vec<EngineJob> {
    let suite = Suite::vbench(opts);
    let vendor = hw_vendor(flags);
    let stream = flags.contains_key("stream");
    let window = stream_window(flags);
    let videos: Option<Vec<&str>> = flags.get("videos").map(|v| {
        let names: Vec<&str> = v.split(',').collect();
        for name in &names {
            if suite.by_name(name).is_none() {
                die(&format!("no suite video '{name}' (see `vbench suite`)"));
            }
        }
        names
    });
    let rows: Vec<(EngineJob, JobFeatures)> = suite
        .iter()
        .filter(|v| videos.as_ref().is_none_or(|names| names.contains(&v.name)))
        .map(|v| {
            // Software drains the queue with the VOD reference; hardware
            // runs its single-pass mode at the same ladder target. Both
            // requests derive from source metadata alone, so streaming
            // jobs never materialize their clips.
            let mut request = match vendor {
                None => reference_request_for(Scenario::Vod, v.spec.resolution, v.category.kpixels),
                Some(vendor) => TranscodeRequest::hardware(
                    vendor,
                    RateMode::Bitrate { bps: target_bps_for(v.spec.resolution) },
                ),
            };
            if let Some(w) = window {
                request = request.with_window(w);
            }
            let features = JobFeatures {
                pixels_per_frame: v.spec.resolution.pixels(),
                frames: v.spec.frames as u64,
                fps: v.spec.fps,
                entropy: v.category.entropy,
                preset: request.preset,
            };
            let job = if stream {
                EngineJob::streaming(v.name, JobSource::Synth(v.spec.clone()), request)
            } else {
                EngineJob::new(v.name, v.generate(), request)
            };
            (job, features)
        })
        .collect();
    if !flags.contains_key("placed") {
        return rows.into_iter().map(|(job, _)| job).collect();
    }
    // `--placed`: run the batch in the cost plane's claim order — jobs
    // grouped by the catalog entry the planner assigns them (batch work
    // has no deadline, so this is the cheapest predicted instance).
    // Derived from the same flags as the job list, so dispatchers and
    // workers agree on the permutation byte-for-byte.
    let catalog = InstanceCatalog::default_fleet();
    let plan_jobs: Vec<PlanJob> = rows
        .iter()
        .enumerate()
        .map(|(i, (_, features))| PlanJob {
            features: *features,
            deadline_secs: f64::INFINITY,
            video: i,
        })
        .collect();
    let plan = plan_fleet(&plan_jobs, &catalog, 3600.0);
    let placement =
        PlacementPlan::new(plan.claim_order(catalog.len())).expect("claim order is a permutation");
    let jobs: Vec<EngineJob> = rows.into_iter().map(|(job, _)| job).collect();
    vtrace::counter("fleet.placements", jobs.len() as u64);
    placement.apply(&jobs)
}

/// Writes per-job bitstreams to `--out-dir` (if given), prints the
/// per-job table and the summary lines, and returns the failed-job
/// count for the caller's exit decision.
fn report_batch(
    report: &EngineBatchReport,
    workers: usize,
    flags: &HashMap<String, String>,
) -> usize {
    if let Some(dir) = flags.get("out-dir") {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&format!("create {dir}: {e}")));
        for r in &report.results {
            if let Ok(outcome) = &r.outcome {
                let path = format!("{dir}/{}.vbs", r.name);
                std::fs::write(&path, outcome.bytes())
                    .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            }
        }
    }
    let mut t = TextTable::new(["video", "status", "attempts", "bytes", "Mpix/s"]);
    for r in &report.results {
        let (status, bytes, mpps) = match &r.outcome {
            Ok(o) => (
                "ok".to_string(),
                o.bytes().len().to_string(),
                format!("{:.2}", o.measurement().speed_mpps()),
            ),
            Err(e) => (format!("FAILED: {e}"), "-".to_string(), "-".to_string()),
        };
        t.push_row([r.name.clone(), status, r.attempts.to_string(), bytes, mpps]);
    }
    print!("{t}");
    let s = &report.summary;
    println!(
        "\n{} jobs on {} workers: {:.2} s wall, {:.1} Mpix/s aggregate, speedup {:.2}x",
        report.results.len(),
        workers,
        report.wall_secs,
        report.aggregate_pps / 1e6,
        report.speedup()
    );
    println!(
        "resilience: {} completed, {} failed, {} retries, {} hedges, {} deadline misses, \
         {} degraded, {} replayed",
        s.completed, s.failed, s.retries, s.hedges, s.deadline_misses, s.degraded, s.replayed
    );
    s.failed
}

/// The `--io-fault-plan` spec, parsed (usage error on bad grammar).
fn io_fault_plan_from_flags(flags: &HashMap<String, String>) -> Option<vfault::IoFaultPlan> {
    flags
        .get("io-fault-plan")
        .map(|spec| vfault::IoFaultPlan::parse(spec).unwrap_or_else(|e| die(&e.to_string())))
}

fn cmd_batch(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let workers = resolve_workers(flags);
    let policy = resilience_from_flags(flags);
    let journal = journal_from_flags(flags);
    let io_plan = io_fault_plan_from_flags(flags);
    if io_plan.is_some() && journal.is_none() {
        die("--io-fault-plan requires --journal (it faults durable IO)");
    }
    let jobs = build_batch_jobs(opts, flags);
    let report = match &journal {
        None => transcode_batch_resilient(&Engine, &jobs, workers, &policy)
            .unwrap_or_else(|e| fail(&e.to_string())),
        Some(config) => match match io_plan {
            None => run_batch_journaled(&Engine, &jobs, workers, &policy, config),
            Some(plan) => {
                let io = FaultedIo::new(plan);
                run_batch_journaled_with_io(&Engine, &jobs, workers, &policy, config, &io)
            }
        } {
            Ok(report) => report,
            // A scripted crash fault fired: the process "died" with the
            // journal exactly as a real crash would leave it. Exit 3 so
            // harnesses can tell a simulated crash from a failure.
            Err(e @ JournalError::Crashed { .. }) => {
                vtrace::error("vbench", e.to_string());
                finish_tracing();
                std::process::exit(3);
            }
            Err(e) => fail(&e.to_string()),
        },
    };
    let failed = report_batch(&report, workers, flags);
    if failed > 0 {
        fail(&format!("{failed} job(s) failed after exhausting retries"));
    }
}

/// The job-defining and policy flags a dispatcher forwards verbatim to
/// its worker processes, so every process builds the identical batch
/// (enforced by the journal's manifest fingerprint). `log-level` rides
/// along too: per-frame stage spans only exist in worker traces if the
/// workers record at the dispatcher's verbosity.
const FORWARDED_VALUE_FLAGS: [&str; 8] = [
    "scale",
    "videos",
    "backend",
    "window",
    "max-retries",
    "job-deadline",
    "fault-plan",
    "log-level",
];
const FORWARDED_BOOL_FLAGS: [&str; 4] = ["stream", "degrade", "hedge", "placed"];

fn cmd_dispatch(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let procs: usize = flags
        .get("procs")
        .map(|p| p.parse().unwrap_or_else(|_| die("--procs must be an integer")))
        .unwrap_or(2);
    if procs == 0 {
        die("--procs must be positive");
    }
    let threads = resolve_workers(flags);
    let policy = resilience_from_flags(flags);
    let Some(journal) = journal_from_flags(flags) else {
        die("dispatch requires --journal (the shared coordination file)");
    };
    let jobs = build_batch_jobs(opts, flags);
    let worker_exe =
        std::env::current_exe().unwrap_or_else(|e| fail(&format!("find own exe: {e}")));
    let mut worker_args: Vec<String> = vec![
        "worker".to_string(),
        "--journal".to_string(),
        journal.path.display().to_string(),
        "--workers".to_string(),
        threads.to_string(),
    ];
    for key in FORWARDED_VALUE_FLAGS {
        if let Some(value) = flags.get(key) {
            worker_args.push(format!("--{key}"));
            worker_args.push(value.clone());
        }
    }
    for key in FORWARDED_BOOL_FLAGS {
        if flags.contains_key(key) {
            worker_args.push(format!("--{key}"));
        }
    }
    let trace_out = flags.get("trace-out").cloned();
    let dispatch_opts = DispatchOptions {
        procs,
        worker_exe,
        worker_args,
        worker_trace_base: trace_out.clone(),
        journal,
        status_out: flags.get("status-out").map(std::path::PathBuf::from),
        worker_io_fault_spec: flags.get("io-fault-plan").cloned(),
    };
    let outcome =
        run_dispatch(&jobs, &policy, &dispatch_opts).unwrap_or_else(|e| fail(&e.to_string()));
    let failed = report_batch(&outcome.report, procs * threads, flags);
    // Epilogue without `fail()`: flush this process's trace first, then
    // splice the worker traces onto it — a second drain would truncate
    // the merged file, so exit explicitly instead of returning to main.
    finish_tracing();
    if let Some(base) = &trace_out {
        if let Err(e) = merge_trace_files(std::path::Path::new(base), &outcome.worker_traces) {
            eprintln!("[error] vbench: merge worker traces into {base}: {e}");
            std::process::exit(1);
        }
    }
    if failed > 0 {
        eprintln!("vbench: {failed} job(s) failed after exhausting retries");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn cmd_worker(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let threads = resolve_workers(flags);
    let journal = required(flags, "journal");
    let worker_id: usize = required(flags, "worker-id")
        .parse()
        .unwrap_or_else(|_| die("--worker-id must be an integer"));
    let run: u32 =
        required(flags, "run").parse().unwrap_or_else(|_| die("--run must be an integer"));
    let policy = resilience_from_flags(flags);
    let jobs = build_batch_jobs(opts, flags);
    let worker_opts =
        WorkerOptions { journal: std::path::PathBuf::from(journal), worker_id, run, threads };
    match io_fault_plan_from_flags(flags) {
        None => run_worker(&Engine, &jobs, &policy, &worker_opts),
        Some(plan) => {
            let io = FaultedIo::new(plan);
            run_worker_with_io(&Engine, &jobs, &policy, &worker_opts, &io)
        }
    }
    .unwrap_or_else(|e| fail(&e.to_string()));
}

/// The storage-fault auditor: seeded crash + IO-fault trials against
/// the batch or dispatch backend, recovery-invariant checks, and a
/// `CHAOS_<topology>.json` report with reproducing schedules. Any
/// violation exits 6 ([`cli::EXIT_CHAOS`]).
fn cmd_chaos(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let trials: u32 = flags
        .get("trials")
        .map(|t| t.parse().unwrap_or_else(|_| die("--trials must be an integer")))
        .unwrap_or(10);
    if trials == 0 {
        die("--trials must be positive");
    }
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().unwrap_or_else(|_| die("--seed must be an integer")))
        .unwrap_or(0);
    let scenario = match flags.get("topology").map(String::as_str) {
        None | Some("batch") => ChaosScenario::Batch,
        Some("dispatch") => ChaosScenario::Dispatch,
        Some(other) => die(&format!("unknown topology '{other}' (batch|dispatch)")),
    };
    let procs: usize = flags
        .get("procs")
        .map(|p| p.parse().unwrap_or_else(|_| die("--procs must be an integer")))
        .unwrap_or(2);
    if procs == 0 {
        die("--procs must be positive");
    }
    // Trials run the batch several times each; default to a small job
    // set unless the caller picked their own clips.
    let mut flags = flags.clone();
    flags.entry("videos".to_string()).or_insert_with(|| "desktop,cat,girl".to_string());
    // Chaos audits the durability layer under a fixed clean policy;
    // resilience flags would skew the exact encode accounting (I2).
    for policy_flag in ["max-retries", "job-deadline", "degrade", "hedge", "fault-plan"] {
        if flags.contains_key(policy_flag) {
            die(&format!("--{policy_flag} is not a chaos flag (trials use a clean policy)"));
        }
    }
    let jobs = build_batch_jobs(opts, &flags);
    let dir = flags.get("dir").map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("vbench-chaos-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| fail(&format!("create chaos dir {}: {e}", dir.display())));

    let mut chaos = ChaosOptions::batch(&dir);
    chaos.trials = trials;
    chaos.seed = seed;
    chaos.scenario = scenario;
    chaos.workers = resolve_workers(&flags);
    chaos.procs = procs;
    chaos.inject_unsynced_rename = flags.contains_key("inject-unsynced-rename");
    chaos.out = flags.get("out").map(std::path::PathBuf::from);
    if scenario == ChaosScenario::Dispatch {
        chaos.worker_exe =
            Some(std::env::current_exe().unwrap_or_else(|e| fail(&format!("find own exe: {e}"))));
        // Job-defining flags only: workers must rebuild exactly `jobs`
        // under the same clean policy (plus the per-trial crash plan
        // the auditor appends itself).
        for key in ["scale", "videos", "backend", "window"] {
            if let Some(value) = flags.get(key) {
                chaos.worker_forward_args.push(format!("--{key}"));
                chaos.worker_forward_args.push(value.clone());
            }
        }
        for key in ["stream", "placed"] {
            if flags.contains_key(key) {
                chaos.worker_forward_args.push(format!("--{key}"));
            }
        }
    }

    let report = run_chaos(&Engine, &jobs, &chaos).unwrap_or_else(|e| fail(&e.to_string()));
    let out = chaos
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from(format!("CHAOS_{}.json", scenario.name())));
    report
        .write(&out)
        .unwrap_or_else(|e| fail(&format!("write chaos report {}: {e}", out.display())));
    let violations = report.violations();
    println!(
        "chaos {}: {} trials (seed {}), {} jobs, {} violations -> {}",
        scenario.name(),
        report.trials.len(),
        seed,
        jobs.len(),
        violations,
        out.display()
    );
    for trial in report.trials.iter().filter(|t| !t.violations.is_empty()) {
        for violation in &trial.violations {
            println!(
                "  trial {} (crash '{}', io '{}'): {violation}",
                trial.plan.trial, trial.plan.crash_spec, trial.plan.io_spec
            );
        }
    }
    if violations > 0 {
        cli::fail_chaos(
            "vbench",
            &format!("{violations} recovery-invariant violation(s); see {}", out.display()),
        );
    }
}

/// Live dispatch monitor. Strictly read-only on the journal: the only
/// file operation is `read_to_string`, so a monitor can never perturb
/// the batch it is watching.
fn cmd_top(flags: &HashMap<String, String>) {
    let journal = std::path::PathBuf::from(required(flags, "journal"));
    let snapshot = |journal: &std::path::Path| match snapshot_from_journal(journal) {
        Ok(snap) => snap,
        Err(e) => fail(&format!("read journal {}: {e}", journal.display())),
    };
    if flags.contains_key("once") {
        let Some(snap) = snapshot(&journal) else {
            fail(&format!("{}: no manifest record (not a dispatch journal?)", journal.display()));
        };
        print!("{}", snap.render());
        return;
    }
    let interval = std::time::Duration::from_millis(
        flags
            .get("interval-ms")
            .map(|v| v.parse().unwrap_or_else(|_| die("--interval-ms must be an integer")))
            .unwrap_or(500),
    );
    let started = std::time::Instant::now();
    loop {
        if let Some(snap) = snapshot(&journal) {
            let elapsed = started.elapsed().as_secs_f64();
            let throughput = if elapsed > 0.0 { snap.done as f64 / elapsed } else { 0.0 };
            let remaining = snap.jobs.saturating_sub(snap.done);
            // ANSI home+clear keeps the view in place on a terminal and
            // degrades to plain sequential blocks when piped.
            print!("\x1b[H\x1b[2J{}", snap.render());
            if throughput > 0.0 {
                println!(
                    "elapsed {elapsed:.1} s  throughput {throughput:.2} jobs/s  \
                     eta {:.1} s",
                    remaining as f64 / throughput
                );
            } else {
                println!("elapsed {elapsed:.1} s  throughput -  eta -");
            }
            if snap.jobs > 0 && snap.done == snap.jobs {
                return;
            }
        }
        std::thread::sleep(interval);
    }
}

/// Pinned perf workload: runs the suite batch in-process `--runs`
/// times and writes a `BENCH_<name>.json` perf-trajectory document
/// (see `vprof::bench` for the schema and comparison semantics).
fn cmd_bench(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let name = flags.get("name").cloned().unwrap_or_else(|| "tiny".to_string());
    let runs: u32 = flags
        .get("runs")
        .map(|r| r.parse().unwrap_or_else(|_| die("--runs must be an integer")))
        .unwrap_or(3);
    if runs == 0 {
        die("--runs must be positive");
    }
    let workers = resolve_workers(flags);
    let policy = ResilienceConfig::default();
    // Per-scenario samples: [encode_secs, speed_pps, quality_db,
    // bitrate_bpps] per run.
    let mut samples: std::collections::BTreeMap<String, Vec<[f64; 4]>> = Default::default();
    for _ in 0..runs {
        let jobs = build_batch_jobs(opts, flags);
        let report = transcode_batch_resilient(&Engine, &jobs, workers, &policy)
            .unwrap_or_else(|e| fail(&e.to_string()));
        for r in &report.results {
            match &r.outcome {
                Ok(o) => samples.entry(r.name.clone()).or_default().push([
                    o.stats().encode_seconds,
                    o.measurement().speed_pps,
                    o.measurement().quality_db,
                    o.measurement().bitrate_bpps,
                ]),
                Err(e) => fail(&format!("bench job '{}' failed: {e}", r.name)),
            }
        }
    }
    let stats_of = |rows: &[[f64; 4]], col: usize| {
        let column: Vec<f64> = rows.iter().map(|r| r[col]).collect();
        vprof::Stats::from_samples(&column).unwrap_or_default()
    };
    let mut doc = vprof::BenchDoc {
        name: name.clone(),
        runs,
        env: vprof::EnvFingerprint::current(),
        scenarios: Default::default(),
    };
    for (video, rows) in &samples {
        doc.scenarios.insert(
            video.clone(),
            vprof::ScenarioStats {
                encode_secs: stats_of(rows, 0),
                speed_pps: stats_of(rows, 1),
                quality_db: stats_of(rows, 2),
                bitrate_bpps: stats_of(rows, 3),
            },
        );
    }
    let out = flags.get("out").cloned().unwrap_or_else(|| format!("BENCH_{name}.json"));
    std::fs::write(&out, doc.to_json()).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    println!(
        "bench '{name}': {} scenario(s) x {runs} run(s) on {workers} workers -> {out}",
        doc.scenarios.len()
    );
}

/// Service scenarios: the three paper scenarios that describe an
/// arrival stream. Vod/Platform score offline measurements and have no
/// front door.
fn parse_service_scenario(s: &str) -> Scenario {
    match s {
        "upload" => Scenario::Upload,
        "popular" => Scenario::Popular,
        "live" => Scenario::Live,
        other => die(&format!("unknown service scenario '{other}' (upload|popular|live)")),
    }
}

/// The shared serve/saturate model flags: `--scenario` and `--duration`
/// (required), `--capacity`, `--queue-depth`, `--seed`, `--catalog`
/// (defaulted). All of these are part of the deterministic model;
/// `--workers` deliberately is not.
fn service_config_from_flags(flags: &HashMap<String, String>, offered_load: f64) -> ServiceConfig {
    let scenario = parse_service_scenario(required(flags, "scenario"));
    let duration: f64 = required(flags, "duration")
        .parse()
        .ok()
        .filter(|&d| d > 0.0)
        .unwrap_or_else(|| die("--duration takes positive virtual seconds"));
    let mut config = ServiceConfig::new(scenario, offered_load, duration);
    if let Some(raw) = flags.get("capacity") {
        config.capacity = raw
            .parse()
            .ok()
            .filter(|&c| c > 0)
            .unwrap_or_else(|| die("--capacity takes a positive server count"));
    }
    if let Some(raw) = flags.get("queue-depth") {
        config.queue_depth = raw
            .parse()
            .ok()
            .filter(|&d| d > 0)
            .unwrap_or_else(|| die("--queue-depth takes a positive bound"));
    }
    if let Some(raw) = flags.get("seed") {
        config.seed = raw.parse().unwrap_or_else(|_| die("--seed takes an integer"));
    }
    if let Some(raw) = flags.get("catalog") {
        config.catalog = raw
            .parse()
            .ok()
            .filter(|&c| c > 0)
            .unwrap_or_else(|| die("--catalog takes a positive video count"));
    }
    config
}

/// Service failure handler: a scripted crash inside the journaled
/// encode batch exits 3 like `batch` does; everything else is a runtime
/// failure.
fn fail_service(e: ServiceError) -> ! {
    if let ServiceError::Journal(je @ JournalError::Crashed { .. }) = &e {
        vtrace::error("vbench", je.to_string());
        finish_tracing();
        std::process::exit(cli::EXIT_CRASH);
    }
    fail(&e.to_string())
}

/// `--max-shed-rate PCT`: the QoS gate. When the observed shed rate
/// exceeds the threshold the run still completes (reports written,
/// trace flushed) but exits 4, so CI can tell "over budget" from
/// "broken".
fn gate_shed_rate(flags: &HashMap<String, String>, shed_rate: f64) {
    if let Some(raw) = flags.get("max-shed-rate") {
        let pct: f64 = raw
            .parse()
            .ok()
            .filter(|&p| p >= 0.0)
            .unwrap_or_else(|| die("--max-shed-rate takes a percentage"));
        let actual = shed_rate * 100.0;
        if actual > pct {
            cli::fail_gate(
                "vbench",
                &format!("shed rate {actual:.2}% exceeds --max-shed-rate {pct}%"),
            );
        }
    }
}

/// One deterministic stdout line per saturation point. Everything here
/// is virtual-time derived, so the output is byte-identical at any
/// worker count — CI diffs it.
fn print_sat_point(p: &SatPoint) {
    println!(
        "load {:>9.3}  offered {:>5}  admitted {:>5}  completed {:>5}  degraded {:>5}  \
         shed {:>5}  drained {:>4}  misses {:>4}  qpeak {:>3}  \
         sojourn p50/p95/p99 us {}/{}/{}",
        p.offered_load,
        p.offered,
        p.admitted,
        p.completed,
        p.degraded,
        p.shed,
        p.drained,
        p.deadline_misses,
        p.queue_peak,
        p.sojourn_p50_us,
        p.sojourn_p95_us,
        p.sojourn_p99_us,
    );
}

/// One admission-controlled service run at a fixed offered load.
fn cmd_serve(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let offered: f64 = required(flags, "offered-load")
        .parse()
        .ok()
        .filter(|&l| l > 0.0)
        .unwrap_or_else(|| die("--offered-load takes positive jobs per virtual second"));
    let config = service_config_from_flags(flags, offered);
    let profiles = video_profiles(&Suite::vbench(opts), config.scenario);
    let workers = resolve_workers(flags);
    let journal = journal_from_flags(flags);
    let ServiceOutcome { point, proof } =
        run_service(&config, &profiles, &Engine, workers, journal.as_ref())
            .unwrap_or_else(|e| fail_service(e));
    println!(
        "serve {}: capacity {}  queue-depth {}  duration {}s  seed {}  catalog {}",
        required(flags, "scenario"),
        config.capacity,
        config.queue_depth,
        config.duration_secs,
        config.seed,
        config.catalog,
    );
    let report = vbench::service::SatReport::new(&config, std::slice::from_ref(&point), proof);
    print_sat_point(&report.points[0]);
    println!(
        "encodes {}  crc32 {}  bytes {}",
        proof.unique_encodes, proof.encode_crc32, proof.encoded_bytes
    );
    gate_shed_rate(flags, point.shed_rate());
}

/// The saturation study: sweep offered load, write `SAT_<scenario>.json`
/// (atomic rename), print the deterministic per-point table.
fn cmd_saturate(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let config = service_config_from_flags(flags, 0.0);
    let profiles = video_profiles(&Suite::vbench(opts), config.scenario);
    let loads: Vec<f64> = match flags.get("loads") {
        Some(csv) => csv
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .ok()
                    .filter(|&l: &f64| l > 0.0)
                    .unwrap_or_else(|| die("--loads takes comma-separated positive rates"))
            })
            .collect(),
        // Default grid: from comfortably below the undegraded saturation
        // load (zero sheds expected) up past the *fully-degraded* one —
        // the controller absorbs everything in between by downshifting
        // presets, so only the top points actually shed.
        None => {
            let sat = estimated_saturation_load(&profiles, config.capacity);
            let sat_deg = degraded_saturation_load(&profiles, config.capacity);
            [0.25, 0.5, 0.75, 1.0]
                .iter()
                .map(|m| m * sat)
                .chain([1.25, 1.75, 2.5].iter().map(|m| m * sat_deg))
                .collect()
        }
    };
    if loads.is_empty() {
        die("--loads needs at least one rate");
    }
    let workers = resolve_workers(flags);
    let journal = journal_from_flags(flags);
    let report = run_saturation(&config, &loads, &profiles, &Engine, workers, journal.as_ref())
        .unwrap_or_else(|e| fail_service(e));
    let out = flags.get("out").cloned().unwrap_or_else(|| format!("SAT_{}.json", report.scenario));
    write_atomic(std::path::Path::new(&out), &report.to_json())
        .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    println!(
        "saturate {}: capacity {}  queue-depth {}  duration {}s  seed {}  catalog {}",
        report.scenario,
        report.capacity,
        report.queue_depth,
        report.duration_secs,
        report.seed,
        report.catalog,
    );
    for p in &report.points {
        print_sat_point(p);
    }
    println!(
        "encodes {}  crc32 {}  bytes {}  -> {out}",
        report.proof.unique_encodes, report.proof.encode_crc32, report.proof.encoded_bytes
    );
    gate_shed_rate(flags, report.max_shed_rate());
}

/// The cost plane: sweep the deadline-multiplier grid, plan a
/// dollar-optimal fleet per point, write `PARETO_<scenario>.json`
/// (atomic rename), print the deterministic frontier table. `--workers`
/// only parallelizes the proof encodes — the report is byte-identical
/// at any worker count (CI `cmp`s it). Exits 5 when the mult-1.0 plan
/// has a job no catalog instance can finish inside the scenario
/// deadline; the report is still written first.
fn cmd_plan(opts: &SuiteOptions, flags: &HashMap<String, String>) {
    let offered: f64 = required(flags, "offered-load")
        .parse()
        .ok()
        .filter(|&l| l > 0.0)
        .unwrap_or_else(|| die("--offered-load takes positive jobs per virtual second"));
    let config = service_config_from_flags(flags, offered);
    let profiles = video_profiles(&Suite::vbench(opts), config.scenario);
    let catalog = InstanceCatalog::default_fleet();
    let workers = resolve_workers(flags);
    let report = pareto_report(&config, &profiles, &catalog, &Engine, workers)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let out =
        flags.get("out").cloned().unwrap_or_else(|| format!("PARETO_{}.json", report.scenario));
    write_atomic(std::path::Path::new(&out), &report.to_json())
        .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    println!(
        "plan {}: duration {}s  offered-load {}  seed {}  jobs {}  instances {}",
        report.scenario,
        report.duration_secs,
        report.offered_load,
        report.seed,
        report.jobs,
        report.instances.join(","),
    );
    for p in &report.points {
        let fleet: Vec<String> = p
            .fleet
            .iter()
            .zip(&report.instances)
            .filter(|(&n, _)| n > 0)
            .map(|(n, name)| format!("{n}x{name}"))
            .collect();
        println!(
            "mult {:>5.2}  cost ${:<9.4} miss {:>5.3}  baseline ${:<9.4} miss {:>5.3}  \
             fleet [{}]",
            p.deadline_mult,
            p.dollar_cost,
            p.miss_rate,
            p.baseline_dollar_cost,
            p.baseline_miss_rate,
            fleet.join(" "),
        );
    }
    println!(
        "encodes {}  crc32 {}  bytes {}  -> {out}",
        report.proof.unique_encodes, report.proof.encode_crc32, report.proof.encoded_bytes
    );
    if report.infeasible_at_unit_deadline() {
        cli::fail_infeasible(
            "vbench",
            &format!(
                "{}: a job fits no catalog instance inside the scenario deadline",
                report.scenario
            ),
        );
    }
}
