//! Bjøntegaard-delta rate (BD-rate) between two rate-distortion curves.
//!
//! The standard tool the video community uses to condense Figure 2-style
//! PSNR-vs-bitrate comparisons into one number: the average bitrate
//! difference (in percent) between two encoders at equal quality. Negative
//! BD-rate means the candidate needs fewer bits than the anchor.
//!
//! Implementation: cubic least-squares fit of `log10(rate)` as a function
//! of PSNR for each curve, integrated over the overlapping PSNR interval.

/// One rate-distortion point: bitrate (any consistent unit) and PSNR (dB).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RdPoint {
    /// Bitrate (bits/s or bits/pixel/s — any consistent positive unit).
    pub rate: f64,
    /// Quality in dB.
    pub psnr: f64,
}

impl RdPoint {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if rate is not positive or either value is not finite.
    pub fn new(rate: f64, psnr: f64) -> RdPoint {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        assert!(psnr.is_finite(), "psnr must be finite");
        RdPoint { rate, psnr }
    }
}

/// Fits `log10(rate) = c0 + c1·q + c2·q² + c3·q³` by least squares.
fn fit_log_rate(points: &[RdPoint]) -> [f64; 4] {
    // Normal equations for a cubic fit: A^T A x = A^T b with a 4x4 solve.
    let mut ata = [[0.0f64; 4]; 4];
    let mut atb = [0.0f64; 4];
    for p in points {
        let q = p.psnr;
        let basis = [1.0, q, q * q, q * q * q];
        let y = p.rate.log10();
        for i in 0..4 {
            for j in 0..4 {
                ata[i][j] += basis[i] * basis[j];
            }
            atb[i] += basis[i] * y;
        }
    }
    solve4(ata, atb)
}

/// Gaussian elimination with partial pivoting on a 4×4 system.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> [f64; 4] {
    for col in 0..4 {
        // Invariant: the normal-equations matrix is built from finite
        // log-rates (callers validate positivity), and `col..4` is never
        // empty — neither expect can fire.
        let pivot = (col..4)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-12, "singular system: degenerate RD curve");
        let pivot_row = a[col];
        for row in 0..4 {
            if row == col {
                continue;
            }
            let f = a[row][col] / diag;
            for (cell, &p) in a[row].iter_mut().zip(&pivot_row) {
                *cell -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 4];
    for i in 0..4 {
        x[i] = b[i] / a[i][i];
    }
    x
}

/// Integral of the cubic `c` over `[lo, hi]`.
fn integrate(c: &[f64; 4], lo: f64, hi: f64) -> f64 {
    let anti =
        |q: f64| c[0] * q + c[1] * q * q / 2.0 + c[2] * q.powi(3) / 3.0 + c[3] * q.powi(4) / 4.0;
    anti(hi) - anti(lo)
}

/// BD-rate of `candidate` against `anchor`, in percent. Negative values
/// mean the candidate achieves the same quality with fewer bits.
///
/// # Panics
///
/// Panics if either curve has fewer than 4 points, or the curves share no
/// PSNR overlap.
pub fn bd_rate(anchor: &[RdPoint], candidate: &[RdPoint]) -> f64 {
    assert!(anchor.len() >= 4 && candidate.len() >= 4, "BD-rate needs >= 4 points per curve");
    let min_a = psnr_min(anchor).max(psnr_min(candidate));
    let max_a = psnr_max(anchor).min(psnr_max(candidate));
    assert!(max_a > min_a, "RD curves share no quality overlap");
    let ca = fit_log_rate(anchor);
    let cc = fit_log_rate(candidate);
    let avg_diff = (integrate(&cc, min_a, max_a) - integrate(&ca, min_a, max_a)) / (max_a - min_a);
    (10f64.powf(avg_diff) - 1.0) * 100.0
}

fn psnr_min(c: &[RdPoint]) -> f64 {
    c.iter().map(|p| p.psnr).fold(f64::INFINITY, f64::min)
}

fn psnr_max(c: &[RdPoint]) -> f64 {
    c.iter().map(|p| p.psnr).fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic RD curve: psnr = a + b·log10(rate).
    fn curve(a: f64, b: f64, rates: &[f64]) -> Vec<RdPoint> {
        rates.iter().map(|&r| RdPoint::new(r, a + b * r.log10())).collect()
    }

    const RATES: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];

    #[test]
    fn identical_curves_have_zero_bd_rate() {
        let a = curve(30.0, 8.0, &RATES);
        let d = bd_rate(&a, &a);
        assert!(d.abs() < 1e-6, "{d}");
    }

    #[test]
    fn uniformly_halved_rate_is_minus_fifty_percent() {
        let anchor = curve(30.0, 8.0, &RATES);
        // Candidate achieves the same quality at exactly half the rate.
        let candidate: Vec<RdPoint> =
            anchor.iter().map(|p| RdPoint::new(p.rate / 2.0, p.psnr)).collect();
        let d = bd_rate(&anchor, &candidate);
        assert!((d + 50.0).abs() < 1.0, "expected about -50%, got {d}");
    }

    #[test]
    fn worse_candidate_is_positive() {
        let anchor = curve(30.0, 8.0, &RATES);
        let candidate: Vec<RdPoint> =
            anchor.iter().map(|p| RdPoint::new(p.rate * 1.3, p.psnr)).collect();
        let d = bd_rate(&anchor, &candidate);
        assert!((25.0..35.0).contains(&d), "expected about +30%, got {d}");
    }

    #[test]
    fn direction_is_antisymmetric() {
        let a = curve(30.0, 8.0, &RATES);
        let b = curve(32.0, 8.5, &RATES);
        let ab = bd_rate(&a, &b);
        let ba = bd_rate(&b, &a);
        assert!(ab * ba < 0.0, "one direction gains, the other loses: {ab} vs {ba}");
    }

    #[test]
    #[should_panic(expected = ">= 4 points")]
    fn too_few_points_rejected() {
        let a = curve(30.0, 8.0, &RATES);
        let _ = bd_rate(&a[..3], &a);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn disjoint_quality_ranges_rejected() {
        let a = curve(10.0, 8.0, &RATES);
        let b = curve(60.0, 8.0, &RATES);
        let _ = bd_rate(&a, &b);
    }
}
