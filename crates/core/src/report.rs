//! Result reporting (Section 4.3 of the paper).
//!
//! vbench results are reported per video — "results should not be
//! aggregated into averages as significant information would be lost" —
//! with the three raw dimensions always present and a score only where
//! the scenario's constraint holds. This module renders such tables as
//! aligned text, the format the `tablegen` binary prints.

use crate::scenario::ScenarioScore;

/// A plain-text table with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio to two decimals.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a score cell: the value when the constraint held, an empty
/// cell (the paper's convention) otherwise.
pub fn fmt_score(s: &ScenarioScore) -> String {
    match s.score {
        Some(v) => format!("{v:.2}"),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{Measurement, Ratios};
    use crate::scenario::Scenario;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["name", "S", "B"]);
        t.push_row(["cat", "5.74", "0.76"]);
        t.push_row(["presentation", "3.58", "0.35"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("0.76"));
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn invalid_scores_render_empty() {
        let m = Measurement::new(1e6, 1.0, 30.0);
        let r = Ratios::of(&m, &m);
        let s = ScenarioScore { scenario: Scenario::Popular, ratios: r, valid: false, score: None };
        assert_eq!(fmt_score(&s), "");
        let ok =
            ScenarioScore { scenario: Scenario::Vod, ratios: r, valid: true, score: Some(4.36) };
        assert_eq!(fmt_score(&ok), "4.36");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }
}
