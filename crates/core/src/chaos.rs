//! The chaos crash-recovery auditor behind `vbench chaos`: seeded
//! storage-fault + crash trials that *prove* the durability layer's
//! recovery invariants instead of hoping for them.
//!
//! Every claim the journal stack makes — "a job's fsync'd record is its
//! commit point", "resume replays instead of re-encoding", "readers
//! never see a torn status snapshot" — is a claim about behavior under
//! failure. This module manufactures those failures on a bit-exact,
//! replayable schedule and checks the claims after every one:
//!
//! 1. Each trial derives a schedule from `(seed, trial index)`: zero or
//!    more scripted crashes ([`vfault::FaultPlan`]) plus zero or more
//!    storage faults ([`vfault::IoFaultPlan`] — short writes, EIO,
//!    ENOSPC, lying fsyncs, rename failures).
//! 2. The faulted run executes against a [`crate::exec::FaultedIo`],
//!    which tracks the byte prefix of every file an *honest* fsync
//!    covered. After the run dies (or finishes), a simulated power cut
//!    truncates each file to that durable prefix.
//! 3. Clean resumes (`--resume`, real IO) then recover the batch, and
//!    the auditor asserts the recovery invariants below. Violations are
//!    collected — never panicked — and written to a schema-versioned
//!    `CHAOS_<scenario>.json` report carrying each trial's fault
//!    schedule, so any red trial is reproducible from its spec strings
//!    alone.
//!
//! The invariants (numbered as reported):
//!
//! * **I1 — durable records are never lost.** Every job record that was
//!   honestly fsync'd before the power cut is still present — byte
//!   identical — after every subsequent resume (compaction may drop
//!   corruption, never commits).
//! * **I2 — replay does zero encode work.** On the final (successful)
//!   resume, encode invocations equal exactly `jobs − replayed`: a job
//!   with a durable record is never re-encoded.
//! * **I3 — exactly one durable record per job.** The final journal
//!   holds precisely one valid, CRC-verified record per job: no holes,
//!   no duplicate commits from lease races or respawned workers.
//! * **I4 — outputs are byte-identical to an uninterrupted run.**
//!   Per-job bitstreams from the recovered batch equal a clean
//!   baseline's, however many crashes and faults the trial injected.
//! * **I5 — status snapshots are all-or-nothing.** A marker document
//!   written through [`crate::exec::write_atomic`]'s discipline is,
//!   after the power cut, either absent or byte-exact — never a torn or
//!   empty file. (`--inject-unsynced-rename` deliberately reintroduces
//!   the classic rename-before-fsync bug to demonstrate the auditor
//!   catches it.)
//!
//! Two scenarios cover both execution backends: [`ChaosScenario::Batch`]
//! drives the in-process journal driver under the full fault menu plus
//! power cuts; [`ChaosScenario::Dispatch`] drives the multi-process
//! dispatcher with scripted worker kills and per-worker storage faults
//! (`vbench worker --io-fault-plan`), then audits the shared journal
//! with an in-process resume.
//!
//! Trials use a fixed clean resilience policy (no retries, hedging, or
//! deadlines): the auditor measures the *durability* layer, and exact
//! encode-count accounting (I2) requires that no policy feature re-runs
//! healthy jobs. Scenario kind restrictions that are correctness-driven
//! (not convenience) are documented on [`TrialPlan`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::{
    StreamOutcome, TranscodeError, TranscodeOutcome, TranscodeRequest, Transcoder,
};
use crate::exec::status;
use crate::exec::{run_dispatch_with_io, DispatchOptions, FaultedIo, StdIo};
use crate::farm::{transcode_batch_resilient, EngineBatchReport, EngineJob};
use crate::journal::{
    load_job_record, run_batch_journaled, run_batch_journaled_with_io, JournalConfig, JournalError,
};
use crate::resilience::ResilienceConfig;
use vfault::{FaultPlan, IoFaultPlan};
use vframe::{FrameSource, Video};
use vtrace::json::{self, Value};

/// Resume attempts allowed per trial before the auditor declares the
/// batch non-convergent. A schedule can crash at most once per run
/// index (runs 0..=1 carry scripted crashes) and a lying fsync can lose
/// one run record once per index, so convergence needs at most four
/// attempts; the slack is deliberate.
const MAX_RESUMES: u32 = 6;

/// Which execution backend a chaos run audits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosScenario {
    /// The in-process journal driver (`vbench batch --journal`):
    /// scripted crashes, the full storage-fault menu, and power cuts.
    Batch,
    /// The multi-process dispatcher (`vbench dispatch`): scripted
    /// worker kills plus per-worker storage faults, audited by an
    /// in-process `--resume` of the shared journal.
    Dispatch,
}

impl ChaosScenario {
    /// The scenario's name, as used in report file names and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::Batch => "batch",
            ChaosScenario::Dispatch => "dispatch",
        }
    }
}

/// How `vbench chaos` runs its trials.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Trials to run (each with an independent derived schedule).
    pub trials: u32,
    /// Master seed; trial `i`'s schedule derives from `(seed, i)`.
    pub seed: u64,
    /// Which backend to audit.
    pub scenario: ChaosScenario,
    /// Scratch directory for per-trial journals and marker files (must
    /// exist and be writable).
    pub dir: PathBuf,
    /// In-process batch workers (both the faulted runs and the audits).
    pub workers: usize,
    /// Worker processes per dispatch trial.
    pub procs: usize,
    /// The executable to spawn as dispatch workers (normally
    /// `std::env::current_exe()`); required for the dispatch scenario.
    pub worker_exe: Option<PathBuf>,
    /// Job-defining argv fragments appended to each worker's command
    /// line (after `worker --journal <path> --workers <n>`); must make
    /// the workers build exactly `jobs` or the manifest fingerprint
    /// check rejects them.
    pub worker_forward_args: Vec<String>,
    /// Deliberately reintroduce the rename-before-fsync bug in the
    /// marker write so the auditor's I5 check can be demonstrated to
    /// catch it. Never affects production paths.
    pub inject_unsynced_rename: bool,
    /// Report destination; defaults to `CHAOS_<scenario>.json` in the
    /// current directory.
    pub out: Option<PathBuf>,
}

impl ChaosOptions {
    /// A batch-scenario configuration with the given scratch directory.
    pub fn batch(dir: impl Into<PathBuf>) -> ChaosOptions {
        ChaosOptions {
            trials: 10,
            seed: 0,
            scenario: ChaosScenario::Batch,
            dir: dir.into(),
            workers: 2,
            procs: 2,
            worker_exe: None,
            worker_forward_args: Vec::new(),
            inject_unsynced_rename: false,
            out: None,
        }
    }
}

/// One trial's derived fault schedule — the reproducer. Feeding the
/// same spec strings back through [`vfault::FaultPlan::parse`] /
/// [`vfault::IoFaultPlan::parse`] replays the trial bit-exactly.
///
/// Kind restrictions, by scenario:
///
/// * Batch trials draw from the full menu: crashes at pre-encode /
///   post-encode / pre-journal-flush on runs 0–1, journal faults of
///   every kind, and status faults of every kind except `lie` (no
///   software survives a lying fsync of its snapshot; the journal-side
///   invariants are defined against *honest* durability, which is why
///   `lie` stays in the journal menu).
/// * Dispatch trials use `worker-kill` crashes plus worker journal
///   faults restricted to `eio` and `fsync-eio` — the kinds that write
///   no bytes. A torn append (`short`, `enospc`) in a *shared* O_APPEND
///   journal merges with the next writer's record and destroys it; that
///   is a real hazard line-based journals accept (recovery converges by
///   quarantine + re-encode), but it makes "no acked record lost"
///   unfalsifiable, so the auditor does not script it multi-writer.
#[derive(Clone, Debug)]
pub struct TrialPlan {
    /// Trial index.
    pub trial: u32,
    /// The trial's derived seed (for logs; the specs are authoritative).
    pub seed: u64,
    /// `crash=` spec string, empty when the trial scripts no crashes.
    pub crash_spec: String,
    /// Storage-fault spec string, empty when the trial scripts none.
    pub io_spec: String,
}

/// One audited trial's outcome.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// The schedule that produced it.
    pub plan: TrialPlan,
    /// Clean resume attempts the recovery needed (0 = the faulted run
    /// itself completed and the first audit pass replayed it).
    pub resumes: u32,
    /// Jobs replayed from durable records on the final audit pass.
    pub replayed_final: usize,
    /// Encode invocations the final audit pass performed.
    pub encodes_final: u64,
    /// Storage faults the trial actually injected.
    pub faults_injected: u64,
    /// Invariant violations found (empty = the trial is green).
    pub violations: Vec<String>,
}

/// A full chaos run: every trial's schedule and verdict.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Which backend was audited.
    pub scenario: ChaosScenario,
    /// The master seed the schedules derive from.
    pub seed: u64,
    /// Per-trial outcomes, in trial order.
    pub trials: Vec<TrialResult>,
}

impl ChaosReport {
    /// Total invariant violations across all trials.
    pub fn violations(&self) -> usize {
        self.trials.iter().map(|t| t.violations.len()).sum()
    }

    /// The schema-versioned JSON report (`vbench.chaos.v1`). Top-level
    /// `"violations"` is the grep-friendly gate: `"violations":0` means
    /// every invariant held in every trial.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"vbench.chaos.v1\",\n");
        out.push_str(&format!("  \"scenario\": {},\n", jstr(self.scenario.name())));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"trials\": {},\n", self.trials.len()));
        out.push_str(&format!("  \"violations\": {},\n", self.violations()));
        out.push_str("  \"trial_results\": [\n");
        for (i, t) in self.trials.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"trial\": {}, \"seed\": {}, \"crash_plan\": {}, \"io_plan\": {}, \
                 \"resumes\": {}, \"replayed_final\": {}, \"encodes_final\": {}, \
                 \"faults_injected\": {}, \"violations\": [{}]}}{}\n",
                t.plan.trial,
                t.plan.seed,
                jstr(&t.plan.crash_spec),
                jstr(&t.plan.io_spec),
                t.resumes,
                t.replayed_final,
                t.encodes_final,
                t.faults_injected,
                t.violations.iter().map(|v| jstr(v)).collect::<Vec<_>>().join(", "),
                if i + 1 < self.trials.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report atomically (through the same
    /// fsync-before-rename discipline the auditor verifies).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        crate::exec::write_atomic(path, &self.to_json())
    }
}

/// JSON string literal via vtrace's escaper (the same rules the trace
/// writer uses).
fn jstr(s: &str) -> String {
    vtrace::FieldValue::Str(s.to_string()).to_json()
}

/// splitmix64: the standard 64-bit mixer — every trial's schedule is a
/// pure function of `(seed, trial)`, so a red trial reproduces from the
/// report alone.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic generator over splitmix64 (no external RNG
/// crates; no wall-clock anywhere in schedule derivation).
struct Rng(u64);

impl Rng {
    fn new(seed: u64, trial: u32) -> Rng {
        Rng(splitmix64(seed ^ splitmix64(u64::from(trial).wrapping_add(1))))
    }

    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Derives a batch-scenario schedule: 0–2 crashes (pre-encode,
/// post-encode, pre-journal-flush; runs 0–1), 0–3 journal storage
/// faults (full menu), and — unless the injected-bug demo is running —
/// at most one status fault (`lie` excluded; see [`TrialPlan`]).
fn batch_trial_plan(
    rng: &mut Rng,
    trial: u32,
    seed: u64,
    jobs: usize,
    marker_bug: bool,
) -> TrialPlan {
    const POINTS: [&str; 3] = ["pre-encode", "post-encode", "pre-journal-flush"];
    const JOURNAL_KINDS: [&str; 5] = ["short", "eio", "enospc", "fsync-eio", "lie"];
    const STATUS_KINDS: [&str; 4] = ["short", "eio", "fsync-eio", "rename-fail"];

    let mut crash = Vec::new();
    let mut crashed: Vec<(u64, u64)> = Vec::new();
    for _ in 0..rng.below(3) {
        let (job, run) = (rng.below(jobs as u64), rng.below(2));
        if crashed.contains(&(job, run)) {
            continue;
        }
        crashed.push((job, run));
        crash.push(format!("crash={job}@{}@{run}", rng.pick(&POINTS)));
    }

    let mut io = Vec::new();
    let mut used: Vec<(String, u64)> = Vec::new();
    for _ in 0..rng.below(4) {
        let kind = rng.pick(&JOURNAL_KINDS).to_string();
        // Early op indices: a 3-job batch performs roughly a dozen ops
        // per (class, op) stream; later indices would script nothing.
        let index = rng.below(8);
        if used.contains(&(kind.clone(), index)) {
            continue;
        }
        used.push((kind.clone(), index));
        io.push(format!("{kind}=journal@{index}"));
    }
    if !marker_bug && rng.below(2) == 1 {
        // The marker is one create/append/sync/rename sequence, so only
        // index 0 of each status stream can fire.
        io.push(format!("{}=status@0", rng.pick(&STATUS_KINDS)));
    }

    TrialPlan { trial, seed, crash_spec: crash.join(","), io_spec: io.join(",") }
}

/// Derives a dispatch-scenario schedule: 0–2 worker kills (run 0) and
/// 0–2 worker storage faults from the multi-writer-safe kinds (see
/// [`TrialPlan`] for why `short`/`enospc` are batch-only).
fn dispatch_trial_plan(rng: &mut Rng, trial: u32, seed: u64, jobs: usize) -> TrialPlan {
    const WORKER_KINDS: [&str; 2] = ["eio", "fsync-eio"];

    let mut crash = Vec::new();
    let mut killed: Vec<u64> = Vec::new();
    for _ in 0..rng.below(3) {
        let job = rng.below(jobs as u64);
        if killed.contains(&job) {
            continue;
        }
        killed.push(job);
        crash.push(format!("crash={job}@worker-kill@0"));
    }

    let mut io = Vec::new();
    let mut used: Vec<(String, u64)> = Vec::new();
    for _ in 0..rng.below(3) {
        let kind = rng.pick(&WORKER_KINDS).to_string();
        let index = rng.below(6);
        if used.contains(&(kind.clone(), index)) {
            continue;
        }
        used.push((kind.clone(), index));
        io.push(format!("{kind}=journal@{index}"));
    }

    TrialPlan { trial, seed, crash_spec: crash.join(","), io_spec: io.join(",") }
}

/// A [`Transcoder`] shim that counts encode invocations — how the
/// auditor proves replay did *zero* encode work (I2) instead of
/// trusting the report's own bookkeeping.
struct CountingEngine<'a> {
    inner: &'a dyn Transcoder,
    calls: AtomicU64,
}

impl<'a> CountingEngine<'a> {
    fn new(inner: &'a dyn Transcoder) -> CountingEngine<'a> {
        CountingEngine { inner, calls: AtomicU64::new(0) }
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Transcoder for CountingEngine<'_> {
    fn transcode(
        &self,
        src: &Video,
        req: &TranscodeRequest,
    ) -> Result<TranscodeOutcome, TranscodeError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.transcode(src, req)
    }

    fn transcode_stream(
        &self,
        src: &mut dyn FrameSource,
        req: &TranscodeRequest,
    ) -> Result<StreamOutcome, TranscodeError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.transcode_stream(src, req)
    }
}

/// The valid (parseable, CRC-verified, name-matched) job records in
/// `text`, as raw lines keyed by job index. A job with several valid
/// records maps to all of them — I3 demands the count be exactly one at
/// the end.
fn valid_records(text: &str, jobs: &[EngineJob]) -> BTreeMap<usize, Vec<String>> {
    let mut map: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let terminated = text.ends_with('\n');
    let lines: Vec<&str> = text.split('\n').collect();
    let count = if terminated { lines.len().saturating_sub(1) } else { lines.len() };
    for line in &lines[..count] {
        let Ok(parsed) = json::parse(line) else { continue };
        if parsed.get("kind").and_then(Value::as_str) != Some("job") {
            continue;
        }
        if let Some(record) = load_job_record(&parsed, jobs) {
            map.entry(record.job).or_default().push((*line).to_string());
        }
    }
    map
}

/// Reads the journal (empty when absent — a power cut can erase a file
/// whose creation was never made durable).
fn journal_text(path: &Path) -> String {
    std::fs::read(path).map(|b| String::from_utf8_lossy(&b).into_owned()).unwrap_or_default()
}

/// Checks I1 between two snapshots: every record durable at `before`
/// must still be present — byte-identical — in `after`.
fn check_durable_kept(
    before: &BTreeMap<usize, Vec<String>>,
    after: &BTreeMap<usize, Vec<String>>,
    stage: &str,
    violations: &mut Vec<String>,
) {
    for (job, lines) in before {
        let kept = after.get(job).map(Vec::as_slice).unwrap_or(&[]);
        for line in lines {
            if !kept.contains(line) {
                violations
                    .push(format!("I1: durable record for job {job} lost or rewritten {stage}"));
            }
        }
    }
}

/// Checks I4: every successful job's final bytes equal the clean
/// baseline's.
fn check_byte_identity(
    report: &EngineBatchReport,
    baseline: &EngineBatchReport,
    violations: &mut Vec<String>,
) {
    for (job, (got, want)) in report.results.iter().zip(&baseline.results).enumerate() {
        match (got.success(), want.success()) {
            (Some(got), Some(want)) => {
                if got.bytes() != want.bytes() {
                    violations.push(format!(
                        "I4: job {job} bytes differ from the uninterrupted baseline"
                    ));
                }
            }
            (None, None) => {}
            _ => violations
                .push(format!("I4: job {job} success/failure status differs from the baseline")),
        }
    }
}

/// Checks I3 on the final journal: exactly one valid record per job.
fn check_one_record_per_job(
    records: &BTreeMap<usize, Vec<String>>,
    jobs: usize,
    violations: &mut Vec<String>,
) {
    for job in 0..jobs {
        match records.get(&job).map(Vec::len).unwrap_or(0) {
            1 => {}
            0 => violations.push(format!("I3: job {job} has no durable record")),
            n => violations.push(format!("I3: job {job} has {n} durable records")),
        }
    }
}

/// Drives clean resumes until the batch completes, checking I1 after
/// every attempt and I2/I4 on the final one. Returns `(resumes,
/// replayed_final, encodes_final)`.
#[allow(clippy::too_many_arguments)]
fn audit_recovery(
    counting: &CountingEngine<'_>,
    jobs: &[EngineJob],
    policy: &ResilienceConfig,
    journal_path: &Path,
    workers: usize,
    baseline: &EngineBatchReport,
    mut durable: BTreeMap<usize, Vec<String>>,
    violations: &mut Vec<String>,
) -> (u32, usize, u64) {
    let config = JournalConfig::new(journal_path).with_resume(true);
    for attempt in 1..=MAX_RESUMES {
        let before = counting.calls();
        let outcome = run_batch_journaled(counting, jobs, workers, policy, &config);
        let encodes = counting.calls() - before;
        let now = valid_records(&journal_text(journal_path), jobs);
        check_durable_kept(&durable, &now, &format!("after resume {attempt}"), violations);
        durable = now;
        match outcome {
            Ok(report) => {
                let replayed = report.summary.replayed;
                let expected = (jobs.len() - replayed) as u64;
                if encodes != expected {
                    violations.push(format!(
                        "I2: final resume ran {encodes} encodes, expected {expected} \
                         ({replayed} replayed of {} jobs)",
                        jobs.len()
                    ));
                }
                check_one_record_per_job(&durable, jobs.len(), violations);
                check_byte_identity(&report, baseline, violations);
                return (attempt, replayed, encodes);
            }
            Err(JournalError::Crashed { .. }) => {
                // A scripted crash re-fired on this run index; the next
                // resume advances past it.
                vtrace::counter("chaos.resume_crashes", 1);
            }
            Err(e) => {
                violations.push(format!("recovery: resume {attempt} failed on clean storage: {e}"));
                return (attempt, 0, encodes);
            }
        }
    }
    violations.push(format!("recovery: batch did not converge within {MAX_RESUMES} resumes"));
    (MAX_RESUMES, 0, 0)
}

/// Runs one batch-scenario trial: faulted run, power cut, marker check,
/// recovery audit.
fn run_batch_trial(
    counting: &CountingEngine<'_>,
    jobs: &[EngineJob],
    opts: &ChaosOptions,
    baseline: &EngineBatchReport,
    plan: TrialPlan,
) -> TrialResult {
    let journal_path = opts.dir.join(format!("chaos_batch_{}.journal", plan.trial));
    let marker_path = opts.dir.join(format!("chaos_batch_{}.marker.json", plan.trial));
    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&marker_path);

    let mut violations = Vec::new();
    let io_plan = if plan.io_spec.is_empty() {
        IoFaultPlan::new()
    } else {
        IoFaultPlan::parse(&plan.io_spec).expect("derived io spec round-trips")
    };
    let mut policy = ResilienceConfig::default();
    if !plan.crash_spec.is_empty() {
        policy.fault_plan =
            FaultPlan::parse(&plan.crash_spec).expect("derived crash spec round-trips");
    }

    let faulted = FaultedIo::new(io_plan);
    // The status-snapshot half of the audit: one marker document written
    // through the atomic-replace discipline (or, for the bug demo, the
    // broken variant), checked for all-or-nothing survival after the cut.
    let marker_content =
        format!("{{\"chaos_marker\":true,\"trial\":{},\"seed\":{}}}\n", plan.trial, plan.seed);
    let marker_wrote = if opts.inject_unsynced_rename {
        status::write_atomic_unsynced_io(&faulted, &marker_path, &marker_content)
    } else {
        status::write_atomic_io(&faulted, &marker_path, &marker_content)
    };

    // The faulted run. Any outcome is legitimate here — completion, a
    // scripted crash, or a typed IO abort — the invariants constrain
    // what recovery finds afterwards, not how the run died.
    let config = JournalConfig::new(&journal_path);
    match run_batch_journaled_with_io(counting, jobs, opts.workers, &policy, &config, &faulted) {
        Ok(_) | Err(JournalError::Crashed { .. }) | Err(JournalError::Io { .. }) => {}
        Err(e) => violations.push(format!("faulted run died atypically: {e}")),
    }

    faulted.power_cut().expect("power cut truncates scratch files");
    let faults_injected = faulted.faults_injected();

    // I5: the marker is all-or-nothing across the cut.
    match std::fs::read(&marker_path) {
        Err(_) => {
            // Absent is fine — but only when the write itself failed.
            if marker_wrote.is_ok() {
                violations.push(
                    "I5: marker write acknowledged but the document is absent after the power cut"
                        .to_string(),
                );
            }
        }
        Ok(bytes) => {
            if bytes != marker_content.as_bytes() {
                violations.push(format!(
                    "I5: marker is torn after the power cut ({} of {} bytes survive)",
                    bytes.len(),
                    marker_content.len()
                ));
            }
        }
    }

    let durable = valid_records(&journal_text(&journal_path), jobs);
    let (resumes, replayed_final, encodes_final) = audit_recovery(
        counting,
        jobs,
        &policy,
        &journal_path,
        opts.workers,
        baseline,
        durable,
        &mut violations,
    );
    TrialResult { plan, resumes, replayed_final, encodes_final, faults_injected, violations }
}

/// Runs one dispatch-scenario trial: multi-process run under worker
/// kills and worker storage faults, then an in-process recovery audit
/// of the shared journal.
fn run_dispatch_trial(
    counting: &CountingEngine<'_>,
    jobs: &[EngineJob],
    opts: &ChaosOptions,
    baseline: &EngineBatchReport,
    plan: TrialPlan,
) -> TrialResult {
    let journal_path = opts.dir.join(format!("chaos_dispatch_{}.journal", plan.trial));
    let _ = std::fs::remove_file(&journal_path);

    let mut violations = Vec::new();
    let mut policy = ResilienceConfig::default();
    if !plan.crash_spec.is_empty() {
        policy.fault_plan =
            FaultPlan::parse(&plan.crash_spec).expect("derived crash spec round-trips");
    }
    let worker_exe = opts.worker_exe.clone().expect("dispatch scenario needs a worker exe");
    let mut worker_args = vec![
        "worker".to_string(),
        "--journal".to_string(),
        journal_path.display().to_string(),
        "--workers".to_string(),
        "1".to_string(),
    ];
    worker_args.extend(opts.worker_forward_args.iter().cloned());
    if !plan.crash_spec.is_empty() {
        // Workers parse the same spec string, so their policy Debug —
        // hence the manifest fingerprint — matches the dispatcher's
        // byte for byte.
        worker_args.push("--fault-plan".to_string());
        worker_args.push(plan.crash_spec.clone());
    }
    let dispatch = DispatchOptions {
        procs: opts.procs,
        worker_exe,
        worker_args,
        worker_trace_base: None,
        journal: JournalConfig::new(&journal_path),
        status_out: None,
        worker_io_fault_spec: (!plan.io_spec.is_empty()).then(|| plan.io_spec.clone()),
    };

    // Worker kills and worker IO aborts are scripted; the dispatcher is
    // expected to reap, expire, respawn, and still converge.
    match run_dispatch_with_io(jobs, &policy, &dispatch, &StdIo) {
        Ok(_) => {}
        Err(e) => violations.push(format!("dispatch did not converge under faults: {e}")),
    }

    let durable = valid_records(&journal_text(&journal_path), jobs);
    let (resumes, replayed_final, encodes_final) = audit_recovery(
        counting,
        jobs,
        &policy,
        &journal_path,
        opts.workers,
        baseline,
        durable,
        &mut violations,
    );
    if replayed_final != jobs.len() {
        violations.push(format!(
            "recovery: dispatch left only {replayed_final} of {} jobs replayable",
            jobs.len()
        ));
    }
    TrialResult { plan, resumes, replayed_final, encodes_final, faults_injected: 0, violations }
}

/// Runs a full chaos audit: a clean baseline, then `opts.trials` seeded
/// fault trials, each checked against the recovery invariants. The
/// returned report is complete even when trials are red — callers gate
/// on [`ChaosReport::violations`] (the `vbench` CLI exits
/// [`crate::cli::EXIT_CHAOS`]).
///
/// # Errors
///
/// [`JournalError::Batch`] when the clean baseline itself cannot run
/// (e.g. zero workers). Trial-level failures are never errors — they
/// are findings, reported as violations.
pub fn run_chaos(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    opts: &ChaosOptions,
) -> Result<ChaosReport, JournalError> {
    let mut span = vtrace::span("chaos.run");
    // The uninterrupted reference: what every trial's recovered outputs
    // must be byte-identical to (I4).
    let baseline =
        transcode_batch_resilient(engine, jobs, opts.workers, &ResilienceConfig::default())
            .map_err(JournalError::Batch)?;
    let counting = CountingEngine::new(engine);

    let mut trials = Vec::with_capacity(opts.trials as usize);
    for trial in 0..opts.trials {
        let mut rng = Rng::new(opts.seed, trial);
        let seed = splitmix64(opts.seed ^ u64::from(trial));
        let result = match opts.scenario {
            ChaosScenario::Batch => {
                let plan = batch_trial_plan(
                    &mut rng,
                    trial,
                    seed,
                    jobs.len(),
                    opts.inject_unsynced_rename,
                );
                run_batch_trial(&counting, jobs, opts, &baseline, plan)
            }
            ChaosScenario::Dispatch => {
                let plan = dispatch_trial_plan(&mut rng, trial, seed, jobs.len());
                run_dispatch_trial(&counting, jobs, opts, &baseline, plan)
            }
        };
        vtrace::counter("chaos.trials", 1);
        vtrace::counter("chaos.violations", result.violations.len() as u64);
        vtrace::counter("chaos.faults_injected", result.faults_injected);
        trials.push(result);
    }

    let report = ChaosReport { scenario: opts.scenario, seed: opts.seed, trials };
    if span.id().is_some() {
        span.record("scenario", opts.scenario.name());
        span.record("trials", report.trials.len());
        span.record("violations", report.violations());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RateMode};
    use std::sync::atomic::AtomicUsize;
    use vcodec::{CodecFamily, Preset};
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;

    /// A per-test scratch directory, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicUsize = AtomicUsize::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("vbench-chaos-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("scratch dir");
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn source(seed: u32) -> Video {
        let res = Resolution::new(64, 48);
        let frames = (0..6)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * (3 + seed) + y * 2 + 5 * t) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(frames, 30.0)
    }

    fn jobs(n: u32) -> Vec<EngineJob> {
        (0..n)
            .map(|i| {
                EngineJob::new(
                    format!("job{i}"),
                    source(i),
                    TranscodeRequest::software(
                        CodecFamily::Avc,
                        Preset::Fast,
                        RateMode::ConstQuality { crf: 30.0 },
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn schedules_are_deterministic_in_seed_and_trial() {
        for trial in 0..8 {
            let a = batch_trial_plan(&mut Rng::new(7, trial), trial, 0, 3, false);
            let b = batch_trial_plan(&mut Rng::new(7, trial), trial, 0, 3, false);
            assert_eq!(a.crash_spec, b.crash_spec);
            assert_eq!(a.io_spec, b.io_spec);
            let c = dispatch_trial_plan(&mut Rng::new(7, trial), trial, 0, 3);
            let d = dispatch_trial_plan(&mut Rng::new(7, trial), trial, 0, 3);
            assert_eq!(c.crash_spec, d.crash_spec);
            assert_eq!(c.io_spec, d.io_spec);
        }
        // Derived specs must round-trip through the plan parsers.
        for trial in 0..16 {
            let plan = batch_trial_plan(&mut Rng::new(3, trial), trial, 0, 3, false);
            if !plan.crash_spec.is_empty() {
                FaultPlan::parse(&plan.crash_spec).expect("crash spec parses");
            }
            if !plan.io_spec.is_empty() {
                IoFaultPlan::parse(&plan.io_spec).expect("io spec parses");
            }
        }
    }

    #[test]
    fn batch_chaos_holds_every_invariant_on_healthy_code() {
        let dir = TempDir::new("green");
        let jobs = jobs(3);
        let mut opts = ChaosOptions::batch(dir.path());
        opts.trials = 8;
        opts.seed = 7;
        let report = run_chaos(&Engine, &jobs, &opts).expect("chaos runs");
        let red: Vec<_> = report.trials.iter().filter(|t| !t.violations.is_empty()).collect();
        assert!(red.is_empty(), "healthy code must be green, got: {red:?}");
        assert_eq!(report.violations(), 0);
        // At least one trial must have actually injected something, or
        // the audit is vacuous.
        assert!(
            report
                .trials
                .iter()
                .any(|t| !t.plan.crash_spec.is_empty() || !t.plan.io_spec.is_empty()),
            "no trial scripted any fault"
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"vbench.chaos.v1\""));
        assert!(json.contains("\"violations\": 0"));
    }

    #[test]
    fn reintroduced_unsynced_rename_bug_is_caught_with_a_reproducing_seed() {
        let dir = TempDir::new("bug");
        let jobs = jobs(2);
        let mut opts = ChaosOptions::batch(dir.path());
        opts.trials = 3;
        opts.seed = 11;
        opts.inject_unsynced_rename = true;
        let report = run_chaos(&Engine, &jobs, &opts).expect("chaos runs");
        assert!(report.violations() > 0, "the rename-before-fsync bug must be caught");
        let caught = report
            .trials
            .iter()
            .find(|t| t.violations.iter().any(|v| v.starts_with("I5")))
            .expect("an I5 violation names the marker");
        // The report carries the reproducing schedule for the red trial.
        let json = report.to_json();
        assert!(json.contains(&format!("\"trial\": {}", caught.plan.trial)));
        assert!(json.contains("I5"));
    }

    /// Satellite: ENOSPC mid-record. The append hits disk-full, the run
    /// aborts with a typed IO error, and a resume on the cleaned volume
    /// replays every fsync'd record with zero re-encodes.
    #[test]
    fn enospc_mid_record_aborts_typed_and_resume_replays_without_reencoding() {
        let dir = TempDir::new("enospc");
        let path = dir.path().join("batch.journal");
        let jobs = jobs(3);
        let policy = ResilienceConfig::default();
        // Journal write ops: manifest(0), run record(1), then one per
        // job record — index 3 tears the second job record mid-line.
        let io = FaultedIo::new(IoFaultPlan::parse("enospc=journal@3").expect("plan"));
        let counting = CountingEngine::new(&Engine);
        let err = run_batch_journaled_with_io(
            &counting,
            &jobs,
            1,
            &policy,
            &JournalConfig::new(&path),
            &io,
        )
        .expect_err("disk-full aborts the batch");
        match &err {
            JournalError::Io { source, .. } => {
                assert_eq!(source.kind(), std::io::ErrorKind::StorageFull)
            }
            other => panic!("expected a typed IO abort, got {other}"),
        }
        // The "cleaned volume": faults are gone, the torn tail stays.
        let durable = valid_records(&journal_text(&path), &jobs);
        assert_eq!(durable.len(), 1, "one record was fsync-acknowledged before ENOSPC");
        let before = counting.calls();
        let resumed = run_batch_journaled(
            &counting,
            &jobs,
            1,
            &policy,
            &JournalConfig::new(&path).with_resume(true),
        )
        .expect("resume completes");
        assert_eq!(resumed.summary.replayed, 1, "the acked record replays");
        assert_eq!(counting.calls() - before, 2, "only the two unrecorded jobs re-encode");
        let finals = valid_records(&journal_text(&path), &jobs);
        assert!(finals.values().all(|v| v.len() == 1), "exactly one record per job");
        assert_eq!(finals.len(), 3);
    }

    #[test]
    fn report_json_escapes_specs_and_counts_violations() {
        let report = ChaosReport {
            scenario: ChaosScenario::Dispatch,
            seed: 9,
            trials: vec![TrialResult {
                plan: TrialPlan {
                    trial: 0,
                    seed: 1,
                    crash_spec: "crash=0@worker-kill@0".to_string(),
                    io_spec: String::new(),
                },
                resumes: 1,
                replayed_final: 3,
                encodes_final: 0,
                faults_injected: 0,
                violations: vec!["I3: job 1 has \"2\" durable records".to_string()],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"dispatch\""));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\\\"2\\\""), "violation strings are JSON-escaped");
        json::parse(&json).expect("report is valid JSON");
    }
}
