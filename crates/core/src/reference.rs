//! Reference transcode operations (Section 4.2 of the paper).
//!
//! "Each of these reference transcoding operations is a measuring stick,
//! grounded in real-world video sharing infrastructure." All references
//! run the AVC-class software encoder (the stand-in for ffmpeg+libx264 on
//! the paper's i7-6700K):
//!
//! * **Upload** — single pass, constant quality (CRF 18): preserve the
//!   original, bits are cheap (temporary file).
//! * **Live** — single pass, fixed bitrate, effort *inversely
//!   proportional to resolution* so the reference meets real time.
//! * **VOD / Platform** — two-pass, fixed bitrate, medium effort: the
//!   average archival case.
//! * **Popular** — two-pass, fixed bitrate at the encoder's highest
//!   quality setting.

use crate::engine::{transcode, TranscodeRequest};
use crate::measure::Measurement;
use crate::scenario::Scenario;
use vcodec::{CodecFamily, EncodeOutput, EncoderConfig, Preset, RateControl};
use vframe::{Resolution, Video};

/// CRF used by the Upload reference and by entropy measurement (the
/// paper's "visually lossless" operating point).
pub const UPLOAD_CRF: f64 = 18.0;

/// Target bitrate ladder in bits/pixel/second, as a smooth function of
/// resolution: larger frames stream at proportionally lower per-pixel
/// rates (the standard adaptive-bitrate ladder shape; ~3.7 at 480p down
/// to ~1.8 at 4K).
pub fn target_bpps(kpixels: u32) -> f64 {
    (3.7 * (f64::from(kpixels) / 410.0).powf(-0.25)).max(1.0)
}

/// Target bitrate in bits/second for a clip, from the ladder.
pub fn target_bps(video: &Video) -> u64 {
    target_bps_for(video.resolution())
}

/// [`target_bps`] from the resolution alone — the ladder target never
/// depended on frame content, so streaming callers need not materialize
/// a clip to compute it.
pub fn target_bps_for(resolution: Resolution) -> u64 {
    let bpps = target_bpps(resolution.kpixels());
    (bpps * resolution.pixels() as f64).round() as u64
}

/// The Live reference's effort, inversely proportional to resolution
/// (Section 4.2: "the encoder effort is lower for higher resolution
/// videos to ensure that the latency constraints are met"). Real-time
/// software encoding degrades hard: even 480p runs below the archival
/// presets, and HD and up drop to the minimum-effort search.
pub fn live_preset(kpixels: u32) -> Preset {
    match kpixels {
        0..=500 => Preset::VeryFast,
        _ => Preset::UltraFast,
    }
}

/// The reference encoder configuration for a scenario and clip.
///
/// Uses the clip's own resolution to choose the Live effort tier; when
/// running *scaled-down* replicas of suite videos, use
/// [`reference_config_with_native`] so the tier matches the category the
/// clip stands in for.
pub fn reference_config(scenario: Scenario, video: &Video) -> EncoderConfig {
    reference_config_with_native(scenario, video, video.resolution().kpixels())
}

/// Like [`reference_config`], but the Live effort tier is chosen from the
/// *native* category resolution (`native_kpixels`) rather than the clip's
/// actual (possibly scaled-down) resolution. Bitrate targets still follow
/// the actual resolution so reference and candidate stay comparable.
pub fn reference_config_with_native(
    scenario: Scenario,
    video: &Video,
    native_kpixels: u32,
) -> EncoderConfig {
    reference_config_for(scenario, video.resolution(), native_kpixels)
}

/// [`reference_config_with_native`] from source metadata alone: the
/// reference configuration depends only on the clip's resolution (bitrate
/// target) and native category (Live effort tier), so streaming callers
/// can build it without materializing any frames.
pub fn reference_config_for(
    scenario: Scenario,
    resolution: Resolution,
    native_kpixels: u32,
) -> EncoderConfig {
    let kpix = native_kpixels;
    let bps = target_bps_for(resolution);
    match scenario {
        Scenario::Upload => EncoderConfig::new(
            CodecFamily::Avc,
            Preset::Fast,
            RateControl::ConstQuality { crf: UPLOAD_CRF },
        ),
        Scenario::Live => {
            EncoderConfig::new(CodecFamily::Avc, live_preset(kpix), RateControl::Bitrate { bps })
        }
        Scenario::Vod | Scenario::Platform => EncoderConfig::new(
            CodecFamily::Avc,
            Preset::Medium,
            RateControl::TwoPassBitrate { bps },
        ),
        Scenario::Popular => EncoderConfig::new(
            CodecFamily::Avc,
            Preset::VerySlow,
            RateControl::TwoPassBitrate { bps },
        ),
    }
}

/// The reference transcode as an engine request (always the software
/// AVC-class backend, per Section 4.2).
pub fn reference_request(scenario: Scenario, video: &Video) -> TranscodeRequest {
    TranscodeRequest::from_config(&reference_config(scenario, video))
}

/// [`reference_request`] with a native-resolution hint (see
/// [`reference_config_with_native`]).
pub fn reference_request_with_native(
    scenario: Scenario,
    video: &Video,
    native_kpixels: u32,
) -> TranscodeRequest {
    TranscodeRequest::from_config(&reference_config_with_native(scenario, video, native_kpixels))
}

/// [`reference_request_with_native`] from source metadata alone (see
/// [`reference_config_for`]); identical to the clip-based request for the
/// same resolution, so streaming batches reproduce in-memory bitstreams.
pub fn reference_request_for(
    scenario: Scenario,
    resolution: Resolution,
    native_kpixels: u32,
) -> TranscodeRequest {
    TranscodeRequest::from_config(&reference_config_for(scenario, resolution, native_kpixels))
}

/// Runs the reference transcode for a scenario through the engine and
/// returns its measurement alongside the raw encode output.
///
/// # Panics
///
/// Panics if the source is degenerate (empty, or so pathological that a
/// measurement axis is invalid) — reference inputs are suite clips, which
/// are never either.
pub fn reference_encode(scenario: Scenario, video: &Video) -> (Measurement, EncodeOutput) {
    let outcome =
        transcode(video, &reference_request(scenario, video)).expect("reference transcode");
    (outcome.measurement, outcome.output)
}

/// [`reference_encode`] with a native-resolution hint (see
/// [`reference_config_with_native`]).
///
/// # Panics
///
/// Panics under the same (degenerate-source) conditions as
/// [`reference_encode`].
pub fn reference_encode_with_native(
    scenario: Scenario,
    video: &Video,
    native_kpixels: u32,
) -> (Measurement, EncodeOutput) {
    let req = reference_request_with_native(scenario, video, native_kpixels);
    let outcome = transcode(video, &req).expect("reference transcode");
    (outcome.measurement, outcome.output)
}

/// Measures a clip's *entropy* in the paper's sense: bits/pixel/second
/// when encoded at visually lossless quality (CRF 18) — Section 4.1.
///
/// # Panics
///
/// Panics if the clip is empty.
pub fn measure_entropy(video: &Video) -> f64 {
    let req = TranscodeRequest::software(
        CodecFamily::Avc,
        Preset::Fast,
        crate::engine::RateMode::ConstQuality { crf: UPLOAD_CRF },
    );
    transcode(video, &req).expect("entropy probe").measurement.bitrate_bpps
}

#[cfg(test)]
mod tests {
    use super::*;
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;

    fn clip() -> Video {
        let res = Resolution::new(64, 64);
        let fs = (0..6)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * 5 + y * 3 + 7 * t as u32) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(fs, 30.0)
    }

    #[test]
    fn ladder_decreases_with_resolution() {
        assert!(target_bpps(410) > target_bpps(922));
        assert!(target_bpps(922) > target_bpps(2074));
        assert!(target_bpps(2074) > target_bpps(8294));
        assert!((target_bpps(410) - 3.7).abs() < 1e-9);
    }

    #[test]
    fn live_effort_drops_with_resolution() {
        assert_eq!(live_preset(410), Preset::VeryFast);
        assert_eq!(live_preset(922), Preset::UltraFast);
        assert_eq!(live_preset(8294), Preset::UltraFast);
    }

    #[test]
    fn scenario_configs_match_paper_structure() {
        let v = clip();
        let up = reference_config(Scenario::Upload, &v);
        assert!(matches!(up.rate, RateControl::ConstQuality { .. }));
        let live = reference_config(Scenario::Live, &v);
        assert!(matches!(live.rate, RateControl::Bitrate { .. }));
        let vod = reference_config(Scenario::Vod, &v);
        assert!(matches!(vod.rate, RateControl::TwoPassBitrate { .. }));
        assert_eq!(vod.preset, Preset::Medium);
        let pop = reference_config(Scenario::Popular, &v);
        assert_eq!(pop.preset, Preset::VerySlow);
        // Platform shares the VOD reference.
        let plat = reference_config(Scenario::Platform, &v);
        assert_eq!(plat.preset, vod.preset);
    }

    #[test]
    fn reference_encode_produces_measurement() {
        let v = clip();
        let (m, out) = reference_encode(Scenario::Upload, &v);
        assert!(m.quality_db > 30.0, "upload reference is near-lossless, got {}", m.quality_db);
        assert!(!out.bytes.is_empty());
    }

    #[test]
    fn entropy_orders_content_by_complexity() {
        // A flat clip has much lower entropy than a noisy one.
        let res = Resolution::new(64, 64);
        let flat = Video::new(vec![vframe::Frame::filled(res, 60, 128, 128); 6], 30.0);
        let noisy = clip();
        let e_flat = measure_entropy(&flat);
        let e_noisy = measure_entropy(&noisy);
        assert!(e_noisy > e_flat * 3.0, "noisy {e_noisy} should dwarf flat {e_flat}");
    }
}
