//! # vbench — Benchmarking Video Transcoding in the Cloud
//!
//! A from-scratch Rust reproduction of the ASPLOS'18 paper *vbench:
//! Benchmarking Video Transcoding in the Cloud* (Lottarini et al.). This
//! crate is the benchmark proper; the substrates live in sibling crates:
//!
//! * [`vcodec`] — a complete hybrid video codec (the libx264 / libx265 /
//!   libvpx-vp9 stand-ins),
//! * [`vsynth`] — deterministic synthetic video sources,
//! * [`vcorpus`] — corpus modelling and the k-means video selection,
//! * [`varch`] — cache / branch / SIMD / Top-Down microarchitecture
//!   simulation,
//! * [`vhw`] — NVENC / QSV hardware-encoder models,
//! * [`vframe`] — raw frames and quality metrics.
//!
//! The benchmark's own pieces:
//!
//! * [`engine`] — the unified transcode engine: one [`Transcoder`] trait
//!   over the software codec families and the hardware encoder models,
//!   with the paper's quality-target bisection built in;
//! * [`exec`] — the executor core: the [`exec::WorkQueue`]
//!   claim/lease/publish contract, the in-process work-stealing backend,
//!   and the journal-backed multi-process dispatcher/worker backend;
//! * [`farm`] — the parallel batch driver API over [`exec`], generalized
//!   over any [`Transcoder`], with per-job panic isolation, retries,
//!   deadlines, and straggler hedging;
//! * [`resilience`] — the farm's policy layer: retry/backoff/deadline/
//!   hedge/degradation configuration and the [`vfault`]-driven
//!   fault-injection wrapper;
//! * [`journal`] — the durability layer: a crash-consistent write-ahead
//!   journal of batch execution with CRC-verified replay on resume;
//! * [`chaos`] — the crash-recovery auditor behind `vbench chaos`:
//!   seeded storage-fault + crash trials (via [`vfault::IoFaultPlan`]
//!   and simulated power cuts) that assert the durability layer's
//!   recovery invariants and report violations with reproducing
//!   schedules;
//! * [`service`] — the admission-controlled service front door: bounded
//!   per-QoS-class queues, an overload controller that degrades before
//!   it sheds, and the virtual-time saturation study;
//! * [`fleet`] — the cost plane: fleet sizing simulation, the
//!   content-feature cost predictor over the [`vhw::InstanceCatalog`],
//!   the dollar-minimizing deadline planner, and the byte-replayable
//!   cost-QoS frontier behind `vbench plan` / `vprof pareto`;
//! * [`cli`] — tracing/exit plumbing shared by the workspace binaries;
//! * [`suite`] — the 15-video suite of Table 2, regenerated as calibrated
//!   synthetic clips;
//! * [`measure`] — speed / bitrate / quality measurements and S/B/Q
//!   ratios;
//! * [`scenario`] — the five scoring scenarios of Table 1 with their QoS
//!   constraints;
//! * [`reference`] — the reference transcode operations each scenario
//!   compares against;
//! * [`report`] — per-video result tables (never averaged, per Section
//!   4.3);
//! * [`figures`] — the data-only Figure 1 series.
//!
//! # Quickstart
//!
//! ```
//! use vbench::reference::reference_encode;
//! use vbench::scenario::{score_with_video, Scenario};
//! use vbench::suite::{Suite, SuiteOptions};
//! use vbench::measure::Measurement;
//!
//! // A tiny suite configuration (full scale is for release runs).
//! let suite = Suite::vbench(&SuiteOptions::tiny());
//! let video = suite.by_name("desktop").expect("table 2 video").generate();
//!
//! // Reference VOD transcode...
//! let (reference, _) = reference_encode(Scenario::Vod, &video);
//!
//! // ...against a candidate (here: the HEVC-class encoder, same target).
//! let cfg = vcodec::EncoderConfig::new(
//!     vcodec::CodecFamily::Hevc,
//!     vcodec::Preset::Medium,
//!     vbench::reference::reference_config(Scenario::Vod, &video).rate,
//! );
//! let out = vcodec::encode(&video, &cfg);
//! let candidate = Measurement::from_encode(&video, &out);
//!
//! let result = score_with_video(Scenario::Vod, &video, &candidate, &reference);
//! // Ratios are always reported; the score only if the constraint held.
//! assert!(result.ratios.s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod bdrate;
pub mod chaos;
pub mod cli;
pub mod engine;
pub mod exec;
pub mod farm;
pub mod figures;
pub mod fleet;
pub mod journal;
pub mod ladder;
pub mod measure;
pub mod reference;
pub mod report;
pub mod resilience;
pub mod scenario;
pub mod service;
pub mod suite;

pub use bdrate::{bd_rate, RdPoint};
pub use chaos::{run_chaos, ChaosOptions, ChaosReport, ChaosScenario, TrialPlan, TrialResult};
pub use engine::{
    Backend, Engine, HardwareEngine, RateMode, SoftwareEngine, StreamOutcome, TranscodeError,
    TranscodeOutcome, TranscodeRequest, Transcoder,
};
pub use exec::{ChainResult, PlacedQueue, PlacementError, PlacementPlan, WorkQueue};
pub use farm::{
    transcode_batch, transcode_batch_placed, transcode_batch_resilient, transcode_batch_with,
    BatchError, BatchReport, BatchSummary, EngineBatchReport, EngineJob, EngineJobResult, JobError,
    JobOutcome, JobSource, ReplayedOutcome, TranscodeJob, TranscodeResult,
};
pub use fleet::{
    cheapest_job_dollars, fleet_size_for, fleet_size_for_resilient, pareto_report, plan_fleet,
    predict_encode_secs, predict_job_dollars, scenario_deadline_slack, simulate_fleet,
    simulate_fleet_with_faults, uniform_plan, FaultModel, FleetConfig, FleetPlan, FleetReport,
    JobFeatures, ParetoPoint, ParetoReport, PlanAssignment, PlanJob, UploadWorkload,
};
pub use journal::{run_batch_journaled, JournalConfig, JournalError};
pub use ladder::{
    standard_ladder, transcode_ladder, transcode_ladder_with, LadderOutput, LadderRung,
};
pub use measure::{Measurement, Ratios};
pub use reference::{reference_config, reference_encode, reference_request, target_bpps};
pub use resilience::{
    degrade_preset, degrade_preset_by, FaultyTranscoder, HedgePolicy, ResilienceConfig,
};
pub use scenario::{score, score_with_video, Scenario, ScenarioScore};
pub use service::{
    degraded_saturation_load, estimated_saturation_load, run_saturation, run_service,
    simulate_service, video_profiles, AdmissionError, EncodeProof, QosClass, SatReport,
    ServiceConfig, ServiceOutcome, ServicePoint, ShedEvent, ShedReason, VideoProfile,
};
pub use suite::{Suite, SuiteOptions, SuiteVideo};
