//! Resilience policies for the transcode farm.
//!
//! vbench's scenarios model a production fleet — Upload queues drain
//! under load, Live carries a hard real-time QoS bound — and production
//! fleets lose workers, hit poisoned inputs, and straggle. This module
//! is the policy layer the farm scheduler executes:
//!
//! * [`ResilienceConfig`] — retries with capped exponential backoff,
//!   per-job deadlines, straggler hedging, graceful preset degradation,
//!   and an optional [`FaultPlan`] for deterministic fault injection.
//! * [`FaultyTranscoder`] — wraps any [`Transcoder`] and consults the
//!   plan before each attempt: typed failures, panics, and artificial
//!   straggler latency, all keyed by `(job, attempt)` so runs replay
//!   bit-exactly at any worker count.
//! * [`degrade_preset`] — the one-notch effort downshift applied when a
//!   deadline miss triggers a degrading retry.
//!
//! The scheduler that executes these policies lives in [`crate::farm`];
//! the failure taxonomy is documented in DESIGN.md ("Failure model").

use crate::engine::{
    Backend, StreamOutcome, TranscodeError, TranscodeOutcome, TranscodeRequest, Transcoder,
};
use vcodec::Preset;
use vfault::{FaultKind, FaultPlan, InjectedFault};
use vframe::source::FrameSource;
use vframe::Video;

/// Straggler-hedging policy: when a job's attempt has been running
/// longer than `factor ×` the `quantile` of completed-job times (and at
/// least `min_samples` jobs have completed), an idle worker launches a
/// second copy; the first finisher wins and the loser's result is
/// discarded. Both copies run the same deterministic attempt sequence,
/// so hedged results are byte-identical to unhedged ones.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HedgePolicy {
    /// Quantile of observed per-job wall times that anchors the
    /// threshold, in `(0, 1]`.
    pub quantile: f64,
    /// Multiplier on the quantile: hedge when `elapsed > factor × q`.
    pub factor: f64,
    /// Minimum completed jobs before any hedge may launch (an empty
    /// sample has no quantile).
    pub min_samples: usize,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy { quantile: 0.9, factor: 2.0, min_samples: 3 }
    }
}

/// The farm's resilience policy. [`ResilienceConfig::default`] is the
/// zero-overhead baseline: no retries, no deadline, no hedging, no
/// faults — but panic isolation is always on (one poisoned job reports
/// failure instead of killing the batch).
#[derive(Clone, PartialEq, Debug)]
pub struct ResilienceConfig {
    /// Retries per job after its first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First retry's backoff wait in seconds; attempt `n` waits
    /// `base × 2ⁿ`, capped at [`ResilienceConfig::backoff_cap_secs`].
    /// 0.0 disables the wait entirely.
    pub backoff_base_secs: f64,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_secs: f64,
    /// Batch-wide per-job deadline on *encode* seconds (the job's
    /// reported stage total, which includes injected straggler latency).
    /// A job's own [`crate::farm::EngineJob::deadline_secs`] overrides
    /// this. Exceeding the deadline counts as a failed attempt.
    pub job_deadline_secs: Option<f64>,
    /// Downshift the preset one effort notch when retrying after a
    /// deadline miss (graceful degradation: a faster encode that ships
    /// beats a perfect one that misses the QoS bound).
    pub degrade_on_deadline_miss: bool,
    /// Straggler hedging, off by default.
    pub hedge: Option<HedgePolicy>,
    /// Deterministic fault injection, empty by default.
    pub fault_plan: FaultPlan,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_retries: 0,
            backoff_base_secs: 0.0,
            backoff_cap_secs: 0.2,
            job_deadline_secs: None,
            degrade_on_deadline_miss: false,
            hedge: None,
            fault_plan: FaultPlan::new(),
        }
    }
}

impl ResilienceConfig {
    /// Sets the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> ResilienceConfig {
        self.max_retries = retries;
        self
    }

    /// Sets the batch-wide per-job deadline.
    pub fn with_job_deadline(mut self, secs: f64) -> ResilienceConfig {
        self.job_deadline_secs = Some(secs);
        self
    }

    /// Enables preset degradation on deadline-miss retries.
    pub fn with_degradation(mut self) -> ResilienceConfig {
        self.degrade_on_deadline_miss = true;
        self
    }

    /// Enables hedging with the given policy.
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> ResilienceConfig {
        self.hedge = Some(hedge);
        self
    }

    /// Installs a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ResilienceConfig {
        self.fault_plan = plan;
        self
    }

    /// Sets the backoff curve.
    pub fn with_backoff(mut self, base_secs: f64, cap_secs: f64) -> ResilienceConfig {
        self.backoff_base_secs = base_secs;
        self.backoff_cap_secs = cap_secs;
        self
    }

    /// The backoff wait before retry number `retry` (1-based), in
    /// seconds: `base × 2^(retry-1)`, capped.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        capped_backoff_secs(self.backoff_base_secs, self.backoff_cap_secs, retry)
    }
}

/// The capped exponential backoff curve: the wait before retry number
/// `retry` (1-based) is `base × 2^(retry-1)`, capped at `cap`; a
/// non-positive `base` disables backoff entirely. Shared by the encode
/// retry chain ([`ResilienceConfig::backoff_secs`]) and the journal's
/// transient-IO retry ([`crate::exec::io::append_retrying`]).
pub fn capped_backoff_secs(base: f64, cap: f64, retry: u32) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    let exp = retry.saturating_sub(1).min(f64::MAX_EXP as u32 - 1);
    (base * 2f64.powi(exp as i32)).min(cap)
}

/// One effort notch down ("degrade"): the next-*faster* preset, per the
/// graceful-degradation policy — when a deadline was missed, trading
/// compression efficiency for speed is the only move that can still make
/// the QoS bound. Already at [`Preset::UltraFast`] there is nothing left
/// to shed and the preset is returned unchanged.
pub fn degrade_preset(preset: Preset) -> Preset {
    let idx = Preset::ALL.iter().position(|&p| p == preset).unwrap_or(0);
    Preset::ALL[idx.saturating_sub(1)]
}

/// `notches` applications of [`degrade_preset`]: the preset the overload
/// controller actually dispatches at. Saturates at
/// [`Preset::UltraFast`], like the single-notch form.
pub fn degrade_preset_by(preset: Preset, notches: u32) -> Preset {
    let mut out = preset;
    for _ in 0..notches {
        out = degrade_preset(out);
    }
    out
}

/// The request actually run on `attempt` of a job whose degradation
/// count is `degraded_notches`: hardware requests are returned unchanged
/// (an ASIC's effort is fixed at tape-out); software requests have their
/// preset downshifted one notch per degradation.
pub fn degraded_request(req: &TranscodeRequest, degraded_notches: u32) -> TranscodeRequest {
    let mut out = *req;
    if matches!(req.backend, Backend::Software(_)) {
        for _ in 0..degraded_notches {
            out.preset = degrade_preset(out.preset);
        }
    }
    out
}

/// A [`Transcoder`] wrapper that consults a [`FaultPlan`] before
/// delegating. The wrapper is built per `(job, attempt)` so the plan's
/// decisions stay a pure function of that key:
///
/// * a `Transient`/`Permanent` decision returns
///   [`TranscodeError::Injected`] without running the encode;
/// * a `Panic` decision panics (the farm's per-job `catch_unwind`
///   isolates it);
/// * a `Straggler` decision runs the encode, then charges the extra
///   latency to the outcome's pipeline stage and measured speed — and
///   sleeps a bounded real interval so wall-clock-driven policies
///   (hedging) can observe the straggle.
pub struct FaultyTranscoder<'a> {
    /// The engine to delegate non-faulted attempts to.
    pub inner: &'a dyn Transcoder,
    /// The plan to consult.
    pub plan: &'a FaultPlan,
    /// Batch index of the job being run.
    pub job: usize,
    /// Attempt number (0 = first try).
    pub attempt: u32,
}

/// Cap on the *real* sleep an injected straggler performs. The virtual
/// latency charged to the outcome is uncapped; the sleep only exists so
/// hedging has something to observe, and tests must not take minutes.
const MAX_REAL_STRAGGLE_SECS: f64 = 0.5;

impl FaultyTranscoder<'_> {
    /// Applies the plan's pre-attempt decision: panic, typed failure, or
    /// the bounded real straggler sleep. Returns the decision for the
    /// post-attempt latency charge.
    fn apply_pre_attempt(&self) -> Result<vfault::Decision, TranscodeError> {
        let decision = self.plan.decide(self.job, self.attempt);
        match decision.fail {
            Some(FaultKind::Panic) => {
                panic!("injected panic (job {}, attempt {})", self.job, self.attempt)
            }
            Some(kind) => {
                return Err(TranscodeError::Injected(InjectedFault {
                    kind,
                    job: self.job,
                    attempt: self.attempt,
                }));
            }
            None => {}
        }
        if decision.extra_secs > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                decision.extra_secs.min(MAX_REAL_STRAGGLE_SECS),
            ));
        }
        Ok(decision)
    }
}

/// Charges an injected straggle to the outcome's pipeline stage and
/// slows the measured speed to match, so deadline checks and fleet math
/// see the same latency the plan injected.
fn charge_straggle(timings: &mut vhw::StageSeconds, speed_pps: &mut f64, extra_secs: f64) {
    let before = timings.total().max(1e-9);
    timings.pipeline += extra_secs;
    *speed_pps *= before / timings.total();
}

impl Transcoder for FaultyTranscoder<'_> {
    fn transcode(
        &self,
        src: &Video,
        req: &TranscodeRequest,
    ) -> Result<TranscodeOutcome, TranscodeError> {
        let decision = self.apply_pre_attempt()?;
        let mut outcome = self.inner.transcode(src, req)?;
        if decision.extra_secs > 0.0 {
            charge_straggle(
                &mut outcome.timings,
                &mut outcome.measurement.speed_pps,
                decision.extra_secs,
            );
        }
        Ok(outcome)
    }

    fn transcode_stream(
        &self,
        src: &mut dyn FrameSource,
        req: &TranscodeRequest,
    ) -> Result<StreamOutcome, TranscodeError> {
        let decision = self.apply_pre_attempt()?;
        let mut outcome = self.inner.transcode_stream(src, req)?;
        if decision.extra_secs > 0.0 {
            charge_straggle(
                &mut outcome.timings,
                &mut outcome.measurement.speed_pps,
                decision.extra_secs,
            );
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RateMode};
    use vcodec::CodecFamily;
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;

    fn clip() -> Video {
        let res = Resolution::new(48, 32);
        let frames = (0..3)
            .map(|t| {
                frame_from_fn(res, |x, y| Yuv::new(((x * 3 + y + 7 * t) % 256) as u8, 128, 128))
            })
            .collect();
        Video::new(frames, 30.0)
    }

    fn request() -> TranscodeRequest {
        TranscodeRequest::software(
            CodecFamily::Avc,
            Preset::Fast,
            RateMode::ConstQuality { crf: 30.0 },
        )
    }

    #[test]
    fn degrade_walks_toward_ultrafast_and_saturates() {
        assert_eq!(degrade_preset(Preset::VerySlow), Preset::Slow);
        assert_eq!(degrade_preset(Preset::Fast), Preset::VeryFast);
        assert_eq!(degrade_preset(Preset::UltraFast), Preset::UltraFast);
    }

    #[test]
    fn degraded_request_leaves_hardware_alone() {
        let hw = TranscodeRequest::hardware(vhw::HwVendor::Nvenc, RateMode::Bitrate { bps: 1_000 });
        assert_eq!(degraded_request(&hw, 3).preset, hw.preset);
        let sw = request();
        assert_eq!(degraded_request(&sw, 2).preset, Preset::UltraFast);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = ResilienceConfig::default().with_backoff(0.01, 0.05);
        assert_eq!(cfg.backoff_secs(1), 0.01);
        assert_eq!(cfg.backoff_secs(2), 0.02);
        assert_eq!(cfg.backoff_secs(3), 0.04);
        assert_eq!(cfg.backoff_secs(4), 0.05, "capped");
        assert_eq!(ResilienceConfig::default().backoff_secs(5), 0.0, "disabled by default");
    }

    #[test]
    fn faulty_transcoder_injects_typed_errors() {
        let plan = FaultPlan::new().with_transient(0, 1);
        let v = clip();
        let first = FaultyTranscoder { inner: &Engine, plan: &plan, job: 0, attempt: 0 };
        assert!(matches!(
            first.transcode(&v, &request()),
            Err(TranscodeError::Injected(InjectedFault { kind: FaultKind::Transient, .. }))
        ));
        let second = FaultyTranscoder { inner: &Engine, plan: &plan, job: 0, attempt: 1 };
        assert!(second.transcode(&v, &request()).is_ok());
    }

    #[test]
    fn faulty_transcoder_passthrough_is_byte_identical() {
        let plan = FaultPlan::new();
        let v = clip();
        let wrapped = FaultyTranscoder { inner: &Engine, plan: &plan, job: 5, attempt: 0 }
            .transcode(&v, &request())
            .expect("clean attempt");
        let direct = Engine.transcode(&v, &request()).expect("direct");
        assert_eq!(wrapped.output.bytes, direct.output.bytes);
    }

    #[test]
    fn straggler_charges_latency_to_timings_and_speed() {
        let plan = FaultPlan::new().with_straggler(0, 0.05);
        let v = clip();
        let slow = FaultyTranscoder { inner: &Engine, plan: &plan, job: 0, attempt: 0 }
            .transcode(&v, &request())
            .expect("straggling attempt still succeeds");
        let fast = Engine.transcode(&v, &request()).expect("direct");
        assert_eq!(slow.output.bytes, fast.output.bytes, "bytes unaffected by latency");
        // The injected 0.05 s is charged to the pipeline stage on top of
        // whatever the encode itself measured, so it is a hard floor.
        // (Comparing against the independent fast run's wall-clock total
        // is load-sensitive and flakes under a saturated test machine.)
        assert!(slow.timings.pipeline >= 0.05);
        assert!(slow.timings.total() >= 0.05);
        assert!(slow.measurement.speed_pps < fast.measurement.speed_pps);
    }

    #[test]
    #[should_panic(expected = "injected panic (job 2, attempt 0)")]
    fn injected_panic_panics() {
        let plan = FaultPlan::new().with_panic(2, u32::MAX);
        let v = clip();
        let _ = FaultyTranscoder { inner: &Engine, plan: &plan, job: 2, attempt: 0 }
            .transcode(&v, &request());
    }
}
