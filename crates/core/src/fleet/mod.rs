//! Transcoding-fleet sizing and the cost plane.
//!
//! The paper argues hardware encoders' "higher speed would allow a
//! significant downsizing of the transcoding fleet at a video sharing
//! infrastructure" (Section 5.3), trading compute cost against the
//! storage/network cost of their larger outputs. This module makes that
//! argument computable, in two tiers:
//!
//! * **How many workers** — a discrete-event simulation of a homogeneous
//!   transcoding fleet fed by a stochastic upload arrival process
//!   ([`simulate_fleet`]), plus closed-form sizing helpers
//!   ([`fleet_size_for`], [`fleet_size_for_resilient`]).
//! * **Which workers at what price** — the cost plane: the
//!   [`vhw::InstanceCatalog`] of heterogeneous instance types, a
//!   content-feature cost [`predict`]or, a dollar-minimizing deadline
//!   [`plan`]ner, and the byte-replayable [`pareto`] cost-QoS frontier
//!   report behind `vbench plan` / `vprof pareto`.
//!
//! Randomness follows the workspace determinism contract: arrival gaps
//! come from a dedicated base stream and every per-job attribute (size,
//! hedge, failure draws) from the job's own [`rand::process::substream`],
//! so fleet results replay bit-exactly at any worker count — the same
//! structure `service::arrivals` uses.

pub mod pareto;
pub mod plan;
pub mod predict;

pub use pareto::{pareto_report, ParetoPoint, ParetoReport, DEADLINE_MULT_GRID, PARETO_VERSION};
pub use plan::{
    plan_fleet, scenario_deadline_slack, uniform_plan, FleetPlan, PlanAssignment, PlanJob,
};
pub use predict::{cheapest_job_dollars, predict_encode_secs, predict_job_dollars, JobFeatures};

use rand::rngs::SmallRng;
use rand::{process, Rng, SeedableRng};

/// A transcoding fleet: identical workers draining an upload queue in
/// FIFO order.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of workers.
    pub workers: u32,
    /// Per-worker transcoding speed in pixels/second.
    pub worker_speed_pps: f64,
}

/// An upload workload: job arrival rate and per-job size distribution.
#[derive(Clone, Copy, Debug)]
pub struct UploadWorkload {
    /// Mean arrivals per second (Poisson).
    pub arrivals_per_sec: f64,
    /// Mean pixels per uploaded video.
    pub mean_pixels: f64,
    /// Job-size spread: each job's pixels are
    /// `mean_pixels · exp(σ·Z - σ²/2)` (log-normal, unit mean).
    pub sigma: f64,
}

/// Worker-failure model for the fleet simulation: each transcode attempt
/// fails independently with `failure_prob` and is re-run up to
/// `max_retries` times; every attempt (failed or not) occupies a worker
/// for the job's full service time, which is how failures inflate fleet
/// size. Independently, `hedge_prob` of jobs launch a straggler hedge —
/// a duplicate attempt that occupies a second worker for the job's
/// service time but is *not* a retry and cannot fail the job.
#[derive(Clone, Copy, Debug)]
pub struct FaultModel {
    /// Probability that any single attempt fails, in `[0, 1)`.
    pub failure_prob: f64,
    /// Retries per job after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Probability that a job launches a hedged duplicate, in `[0, 1]`.
    pub hedge_prob: f64,
}

impl FaultModel {
    /// No failures, no hedging: attempts always succeed.
    pub fn none() -> FaultModel {
        FaultModel { failure_prob: 0.0, max_retries: 0, hedge_prob: 0.0 }
    }

    /// This model with a hedging rate.
    pub fn with_hedging(self, hedge_prob: f64) -> FaultModel {
        FaultModel { hedge_prob, ..self }
    }

    /// Expected attempts per job under this model, counting the retries
    /// of failed attempts: `Σ_{k=0..r} p^k = (1 − p^(r+1)) / (1 − p)`.
    /// Hedges are excluded — they are duplicates, not retries; use
    /// [`FaultModel::expected_worker_attempts`] when sizing a fleet.
    pub fn expected_attempts(&self) -> f64 {
        let p = self.failure_prob;
        if p <= 0.0 {
            return 1.0;
        }
        let r = self.max_retries;
        (1.0 - p.powi(r as i32 + 1)) / (1.0 - p)
    }

    /// Expected *worker occupations* per job: retry attempts plus the
    /// hedged duplicate, which burns a worker-service-time even though it
    /// is not a retry. This — not [`FaultModel::expected_attempts`] — is
    /// what capacity sizing must inflate by.
    pub fn expected_worker_attempts(&self) -> f64 {
        self.expected_attempts() + self.hedge_prob
    }
}

/// Result of a fleet simulation.
#[derive(Clone, Copy, Debug)]
pub struct FleetReport {
    /// Jobs completed.
    pub completed: u64,
    /// Jobs dropped after exhausting their retry budget.
    pub failed: u64,
    /// Retry attempts run (attempts beyond each job's first).
    pub retries: u64,
    /// Hedged duplicate attempts launched (worker time, not retries).
    pub hedges: u64,
    /// Mean worker utilization in `[0, 1]`.
    pub utilization: f64,
    /// Mean queueing delay (arrival → start) in seconds.
    pub mean_wait_secs: f64,
    /// 99th-percentile queueing delay in seconds.
    pub p99_wait_secs: f64,
}

/// Simulates `duration_secs` of fault-free fleet operation
/// (deterministic for a seed). Equivalent to
/// [`simulate_fleet_with_faults`] under [`FaultModel::none`], with a
/// bit-identical arrival/size sequence.
///
/// # Panics
///
/// Panics if the fleet has zero workers or non-positive speed, or the
/// workload has non-positive rate/size.
pub fn simulate_fleet(
    fleet: &FleetConfig,
    workload: &UploadWorkload,
    duration_secs: f64,
    seed: u64,
) -> FleetReport {
    simulate_fleet_with_faults(fleet, workload, duration_secs, seed, &FaultModel::none())
}

/// Simulates `duration_secs` of fleet operation under a worker-failure
/// model (deterministic for a seed). Arrival gaps come from a dedicated
/// base stream ([`rand::process::exp_gap`]) and each job's attributes —
/// size, hedge, failure draws — from that job's
/// [`rand::process::substream`], the same layout `service::arrivals`
/// uses. Failure and hedge draws happen only when their probabilities
/// are positive, so the fault-free path consumes the exact RNG sequence
/// [`simulate_fleet`] always has, and no draw depends on the worker
/// count.
///
/// # Panics
///
/// Panics if the fleet has zero workers or non-positive speed, the
/// workload has non-positive rate/size, `failure_prob` is outside
/// `[0, 1)`, or `hedge_prob` is outside `[0, 1]`.
pub fn simulate_fleet_with_faults(
    fleet: &FleetConfig,
    workload: &UploadWorkload,
    duration_secs: f64,
    seed: u64,
    faults: &FaultModel,
) -> FleetReport {
    assert!(fleet.workers > 0 && fleet.worker_speed_pps > 0.0, "fleet must be non-trivial");
    assert!(
        workload.arrivals_per_sec > 0.0 && workload.mean_pixels > 0.0,
        "workload must be non-trivial"
    );
    assert!((0.0..1.0).contains(&faults.failure_prob), "failure probability must be in [0, 1)");
    assert!((0.0..=1.0).contains(&faults.hedge_prob), "hedge probability must be in [0, 1]");
    let mut span = vtrace::span("fleet.simulate");
    let mut arrivals_rng = SmallRng::seed_from_u64(seed);
    // Per-worker next-free times.
    let mut free_at = vec![0.0f64; fleet.workers as usize];
    let mut t = 0.0f64;
    let mut index = 0u64;
    let mut waits: Vec<f64> = Vec::new();
    let mut busy_time = 0.0f64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut retries = 0u64;
    let mut hedges = 0u64;
    loop {
        // Poisson arrivals: exponential gaps off the base stream.
        t += process::exp_gap(&mut arrivals_rng) / workload.arrivals_per_sec;
        if t > duration_secs {
            break;
        }
        // Per-job attributes live on the job's own substream, so they
        // replay bit-exactly regardless of fleet shape or model knobs.
        let mut job_rng = process::substream(seed, index);
        index += 1;
        // Log-normal job size with unit mean.
        let pixels =
            workload.mean_pixels * process::log_normal_unit_mean(&mut job_rng, workload.sigma);
        let service = pixels / fleet.worker_speed_pps;
        // Hedge draw, only when hedging is on (no draw on the plain path).
        let hedged = faults.hedge_prob > 0.0 && job_rng.gen_range(0.0..1.0) < faults.hedge_prob;
        // Attempts the job burns: 1 on the fault-free path (no RNG draw,
        // keeping simulate_fleet's sequence bit-identical), else a
        // geometric draw truncated by the retry budget.
        let mut attempts = 1u64;
        let mut succeeded = true;
        if faults.failure_prob > 0.0 {
            succeeded = false;
            attempts = 0;
            for _ in 0..=faults.max_retries {
                attempts += 1;
                if job_rng.gen_range(0.0..1.0) >= faults.failure_prob {
                    succeeded = true;
                    break;
                }
            }
        }
        // FIFO: earliest-free worker takes the job; each attempt re-runs
        // the full transcode on the same worker.
        // Invariant: `workers > 0` is asserted on entry and free times
        // are sums of finite service times — neither expect can fire.
        let (idx, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("non-empty fleet");
        let start = earliest.max(t);
        waits.push(start - t);
        free_at[idx] = start + service * attempts as f64;
        busy_time += service * attempts as f64;
        retries += attempts - 1;
        if hedged {
            // The duplicate runs the full transcode on the next-free
            // worker. It never changes the job's outcome — with one
            // worker it simply queues behind the primary.
            let (hidx, &hfree) = free_at
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                .expect("non-empty fleet");
            free_at[hidx] = hfree.max(t) + service;
            busy_time += service;
            hedges += 1;
        }
        if succeeded {
            completed += 1;
        } else {
            failed += 1;
        }
    }
    waits.sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
    let mean_wait =
        if waits.is_empty() { 0.0 } else { waits.iter().sum::<f64>() / waits.len() as f64 };
    let p99 =
        if waits.is_empty() { 0.0 } else { waits[((waits.len() - 1) as f64 * 0.99) as usize] };
    let report = FleetReport {
        completed,
        failed,
        retries,
        hedges,
        utilization: (busy_time / (duration_secs * f64::from(fleet.workers))).min(1.0),
        mean_wait_secs: mean_wait,
        p99_wait_secs: p99,
    };
    if span.id().is_some() {
        span.record("workers", u64::from(fleet.workers));
        span.record("duration_secs", duration_secs);
        span.record("completed", report.completed);
        span.record("utilization", report.utilization);
        vtrace::counter("fleet.jobs_simulated", report.completed);
        if report.retries > 0 {
            vtrace::counter("fleet.sim_retries", report.retries);
        }
        if report.failed > 0 {
            vtrace::counter("fleet.sim_failed", report.failed);
        }
        if report.hedges > 0 {
            vtrace::counter("fleet.sim_hedges", report.hedges);
        }
        // Simulated (not wall-clock) queueing delays, in microseconds.
        for &w in &waits {
            vtrace::histogram("fleet.sim_wait_us", (w * 1e6) as u64);
        }
    }
    report
}

/// Closed-form fleet size: the number of workers needed to serve an
/// offered load (pixels/second of uploads) at a target utilization.
///
/// # Panics
///
/// Panics if arguments are non-positive or utilization is not in (0, 1].
pub fn fleet_size_for(
    offered_pixels_per_sec: f64,
    worker_speed_pps: f64,
    target_utilization: f64,
) -> u32 {
    assert!(offered_pixels_per_sec > 0.0 && worker_speed_pps > 0.0, "load must be positive");
    assert!(target_utilization > 0.0 && target_utilization <= 1.0, "utilization must be in (0, 1]");
    (offered_pixels_per_sec / (worker_speed_pps * target_utilization)).ceil() as u32
}

/// [`fleet_size_for`] under a failure model: the offered load is
/// inflated by the expected *worker occupations* per job
/// ([`FaultModel::expected_worker_attempts`]) — retry attempts, since
/// every failed attempt occupies a worker for the job's full service
/// time before the retry runs, plus hedged duplicates, which occupy a
/// second worker even though they are not retries.
///
/// # Panics
///
/// Panics if arguments are non-positive, utilization is not in (0, 1],
/// `failure_prob` is outside `[0, 1)`, or `hedge_prob` is outside
/// `[0, 1]`.
pub fn fleet_size_for_resilient(
    offered_pixels_per_sec: f64,
    worker_speed_pps: f64,
    target_utilization: f64,
    faults: &FaultModel,
) -> u32 {
    assert!((0.0..1.0).contains(&faults.failure_prob), "failure probability must be in [0, 1)");
    assert!((0.0..=1.0).contains(&faults.hedge_prob), "hedge probability must be in [0, 1]");
    fleet_size_for(
        offered_pixels_per_sec * faults.expected_worker_attempts(),
        worker_speed_pps,
        target_utilization,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> UploadWorkload {
        UploadWorkload { arrivals_per_sec: 2.0, mean_pixels: 10e6, sigma: 0.5 }
    }

    #[test]
    fn deterministic_per_seed() {
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let a = simulate_fleet(&fleet, &workload(), 500.0, 1);
        let b = simulate_fleet(&fleet, &workload(), 500.0, 1);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99_wait_secs, b.p99_wait_secs);
    }

    #[test]
    fn utilization_matches_offered_load() {
        // Offered load: 2 jobs/s x 10M pixels / 10M pps = 2 busy workers.
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let r = simulate_fleet(&fleet, &workload(), 2_000.0, 7);
        assert!((r.utilization - 0.5).abs() < 0.08, "utilization {}", r.utilization);
        assert!(r.completed > 3_000);
    }

    #[test]
    fn overloaded_fleet_builds_queues() {
        let under = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let over = FleetConfig { workers: 2, worker_speed_pps: 10e6 };
        let w_under = simulate_fleet(&under, &workload(), 1_000.0, 3).mean_wait_secs;
        let w_over = simulate_fleet(&over, &workload(), 1_000.0, 3).mean_wait_secs;
        assert!(w_over > w_under * 5.0, "saturated fleet must queue: {w_over} vs {w_under}");
    }

    #[test]
    fn faster_workers_shrink_the_fleet() {
        // The paper's hardware argument: a 10x faster worker cuts the
        // fleet 10x at equal utilization.
        let sw = fleet_size_for(1e9, 5e6, 0.7);
        let hw = fleet_size_for(1e9, 50e6, 0.7);
        assert_eq!(sw, 286);
        assert_eq!(hw, 29);
        assert!(sw >= hw * 9);
    }

    #[test]
    fn p99_at_least_mean() {
        let fleet = FleetConfig { workers: 3, worker_speed_pps: 10e6 };
        let r = simulate_fleet(&fleet, &workload(), 1_000.0, 11);
        assert!(r.p99_wait_secs >= r.mean_wait_secs);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let _ = fleet_size_for(1.0, 1.0, 1.5);
    }

    #[test]
    fn fault_free_model_matches_plain_simulation_exactly() {
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let plain = simulate_fleet(&fleet, &workload(), 500.0, 9);
        let faulted =
            simulate_fleet_with_faults(&fleet, &workload(), 500.0, 9, &FaultModel::none());
        assert_eq!(plain.completed, faulted.completed);
        assert_eq!(plain.p99_wait_secs, faulted.p99_wait_secs);
        assert_eq!(faulted.failed, 0);
        assert_eq!(faulted.retries, 0);
    }

    #[test]
    fn failures_inflate_utilization_and_queueing() {
        let fleet = FleetConfig { workers: 4, worker_speed_pps: 10e6 };
        let faults = FaultModel { failure_prob: 0.3, max_retries: 3, hedge_prob: 0.0 };
        let clean = simulate_fleet(&fleet, &workload(), 1_000.0, 5);
        let faulty = simulate_fleet_with_faults(&fleet, &workload(), 1_000.0, 5, &faults);
        assert!(faulty.retries > 0, "30% failure rate must retry");
        assert!(
            faulty.utilization > clean.utilization,
            "retries burn worker time: {} vs {}",
            faulty.utilization,
            clean.utilization
        );
        // Retry fraction tracks the model: E[attempts] − 1 ≈ 0.42.
        let per_job = faulty.retries as f64 / (faulty.completed + faulty.failed) as f64;
        assert!((per_job - (faults.expected_attempts() - 1.0)).abs() < 0.05, "got {per_job}");
    }

    #[test]
    fn exhausted_retries_drop_jobs() {
        let fleet = FleetConfig { workers: 8, worker_speed_pps: 50e6 };
        let faults = FaultModel { failure_prob: 0.5, max_retries: 0, hedge_prob: 0.0 };
        let r = simulate_fleet_with_faults(&fleet, &workload(), 1_000.0, 13, &faults);
        let total = r.completed + r.failed;
        assert!(total > 0);
        let drop_rate = r.failed as f64 / total as f64;
        assert!((drop_rate - 0.5).abs() < 0.05, "fail-fast at p=0.5 drops half: {drop_rate}");
    }

    #[test]
    fn resilient_sizing_grows_with_failure_rate() {
        let none = fleet_size_for_resilient(1e9, 5e6, 0.7, &FaultModel::none());
        assert_eq!(none, fleet_size_for(1e9, 5e6, 0.7));
        let flaky = FaultModel { failure_prob: 0.2, max_retries: 3, hedge_prob: 0.0 };
        let sized = fleet_size_for_resilient(1e9, 5e6, 0.7, &flaky);
        assert!(sized > none, "retry load needs more workers: {sized} vs {none}");
        // E[attempts] = (1 − 0.2⁴) / 0.8 = 1.248 → ~25% more workers.
        assert!((f64::from(sized) / f64::from(none) - 1.248).abs() < 0.02);
    }

    #[test]
    fn per_job_attributes_replay_across_worker_counts() {
        // Arrival gaps come from the base stream and job attributes from
        // per-index substreams, so nothing but queueing depends on the
        // worker count: counts and retry/hedge tallies replay bit-exactly.
        let faults = FaultModel { failure_prob: 0.2, max_retries: 2, hedge_prob: 0.3 };
        let small = FleetConfig { workers: 2, worker_speed_pps: 20e6 };
        let large = FleetConfig { workers: 9, worker_speed_pps: 20e6 };
        let a = simulate_fleet_with_faults(&small, &workload(), 800.0, 21, &faults);
        let b = simulate_fleet_with_faults(&large, &workload(), 800.0, 21, &faults);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.hedges, b.hedges);
    }

    #[test]
    fn hedges_occupy_workers_but_are_not_retries() {
        let fleet = FleetConfig { workers: 6, worker_speed_pps: 10e6 };
        let hedged = FaultModel::none().with_hedging(0.25);
        let clean = simulate_fleet(&fleet, &workload(), 1_000.0, 19);
        let r = simulate_fleet_with_faults(&fleet, &workload(), 1_000.0, 19, &hedged);
        assert_eq!(r.retries, 0, "hedges must not count as retries");
        assert_eq!(r.failed, 0, "hedges cannot fail a job");
        assert!(r.hedges > 0);
        // Hedge fraction tracks the model...
        let rate = r.hedges as f64 / r.completed as f64;
        assert!((rate - 0.25).abs() < 0.03, "hedge rate {rate}");
        // ...and the duplicates burn real worker time.
        assert!(r.utilization > clean.utilization, "{} vs {}", r.utilization, clean.utilization);
    }

    #[test]
    fn sizing_formula_matches_simulated_worker_occupations() {
        // The expected-attempts formula behind fleet_size_for_resilient,
        // pinned against what a simulated fleet actually burns: worker
        // occupations per job = attempts (1 + retries) + hedges.
        let faults = FaultModel { failure_prob: 0.2, max_retries: 3, hedge_prob: 0.4 };
        let fleet = FleetConfig { workers: 8, worker_speed_pps: 20e6 };
        let r = simulate_fleet_with_faults(&fleet, &workload(), 3_000.0, 23, &faults);
        let jobs = (r.completed + r.failed) as f64;
        let per_job = (jobs + r.retries as f64 + r.hedges as f64) / jobs;
        let expected = faults.expected_worker_attempts();
        assert!((per_job - expected).abs() < 0.03, "simulated {per_job} vs formula {expected}");
        // And the sizing helper inflates by exactly that factor (modulo
        // ceil): hedges need workers even though they are not retries.
        let plain = fleet_size_for(1e9, 5e6, 0.7);
        let sized = fleet_size_for_resilient(1e9, 5e6, 0.7, &faults);
        assert!((f64::from(sized) / f64::from(plain) - expected).abs() < 0.02);
    }

    #[test]
    fn hedge_only_sizing_still_inflates_the_fleet() {
        // Regression for the original bug: hedges occupy a worker but are
        // not retries, so a hedge-only model must still grow the fleet.
        let hedged = FaultModel::none().with_hedging(0.5);
        let plain = fleet_size_for_resilient(1e9, 5e6, 0.7, &FaultModel::none());
        let sized = fleet_size_for_resilient(1e9, 5e6, 0.7, &hedged);
        assert!((f64::from(sized) / f64::from(plain) - 1.5).abs() < 0.02, "{sized} vs {plain}");
    }
}
