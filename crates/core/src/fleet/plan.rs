//! Dollar-optimal fleet planning: which instances to buy, and where
//! each job runs, under per-scenario deadlines.
//!
//! The planner answers the cost plane's central question: given a batch
//! of jobs (with predicted encode seconds per catalog entry) and a
//! planning horizon, what mix of instance types completes every job
//! within its deadline for the fewest dollars? The model is the
//! standard two-constraint sizing:
//!
//! * **Latency**: a job is *feasible* on an instance type iff its
//!   predicted encode seconds fit inside the job's deadline — Live
//!   deadlines derive from [`crate::scenario::live_deadline_secs_for`]
//!   via the profile's play-out duration, with the scenario slack of
//!   [`scenario_deadline_slack`].
//! * **Capacity**: each instance type is bought in whole units sized so
//!   its assigned work fits the horizon
//!   (`ceil(busy_secs / horizon_secs)`), priced at the catalog rate for
//!   the full horizon.
//!
//! [`plan_fleet`] runs a small tournament: a greedy cheapest-feasible
//! mixed assignment against every uniform single-type fleet, winner by
//! fewest deadline misses then lowest dollar cost. The homogeneous
//! baseline (catalog entry 0, the old single-speed worker model) is
//! always a candidate, so a cost-aware plan is never more expensive
//! than the baseline at equal-or-lower misses — by construction, and
//! pinned by `tests/fleet_pareto.rs`.

use vhw::InstanceCatalog;

use super::predict::{predict_encode_secs, JobFeatures};
use crate::scenario::Scenario;

/// One job as the planner sees it: features to price it, a completion
/// deadline, and the catalog video it came from.
#[derive(Clone, Copy, Debug)]
pub struct PlanJob {
    /// Cost-prediction features.
    pub features: JobFeatures,
    /// Seconds from dispatch the job must complete within.
    pub deadline_secs: f64,
    /// Index into the service's video-profile slice (ties plan rows
    /// back to suite videos; duplicated freely across jobs).
    pub video: usize,
}

/// Where one job landed.
#[derive(Clone, Copy, Debug)]
pub struct PlanAssignment {
    /// Job index (position in the planned slice).
    pub job: usize,
    /// Catalog index of the chosen instance type.
    pub instance: usize,
    /// Predicted encode seconds there.
    pub predicted_secs: f64,
    /// Whether the prediction fits the job's deadline; infeasible jobs
    /// run on the fastest type and count as deadline misses.
    pub feasible: bool,
}

/// A complete plan: assignments, the fleet to buy, and its price.
#[derive(Clone, Debug)]
pub struct FleetPlan {
    /// Per-job placements, in job order.
    pub assignments: Vec<PlanAssignment>,
    /// Instances bought per catalog entry (parallel to the catalog).
    pub fleet: Vec<u32>,
    /// Renting that fleet for the horizon, in dollars.
    pub dollar_cost: f64,
    /// Jobs whose deadline no catalog entry (under this candidate's
    /// assignment) could meet.
    pub deadline_misses: u64,
    /// The planning horizon the fleet was sized against, in seconds.
    pub horizon_secs: f64,
}

impl FleetPlan {
    /// Deadline misses as a fraction of jobs (0 for an empty plan).
    pub fn miss_rate(&self) -> f64 {
        if self.assignments.is_empty() {
            0.0
        } else {
            self.deadline_misses as f64 / self.assignments.len() as f64
        }
    }

    /// Job indices grouped by catalog entry, in catalog then job order —
    /// the claim order a placement layer dispatches in.
    pub fn claim_order(&self, catalog_len: usize) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.assignments.len());
        for instance in 0..catalog_len {
            order.extend(self.assignments.iter().filter(|a| a.instance == instance).map(|a| a.job));
        }
        order
    }
}

/// Deadline slack each service scenario grants on a job's play-out
/// duration. Live uses the arrival layer's real-time slack (a segment
/// is useful until the stream laps it); Popular re-transcodes trend
/// quickly but tolerate a couple of handfuls of play-lengths (sized so
/// the heaviest two-pass reference still fits a software worker at the
/// scenario's own deadline — the homogeneous baseline must be feasible
/// at multiplier 1.0 for the cost-vs-baseline guarantee to bite);
/// Upload is batch work with the loosest window.
///
/// # Panics
///
/// Panics for non-service scenarios (Vod, Platform), which have no
/// arrival process to plan for.
pub fn scenario_deadline_slack(scenario: Scenario) -> f64 {
    match scenario {
        Scenario::Live => crate::service::arrivals::LIVE_SLACK,
        Scenario::Popular => 15.0,
        Scenario::Upload => 30.0,
        other => panic!("{other:?} is not a service scenario"),
    }
}

/// Evaluates one candidate: a chosen catalog entry per job.
fn evaluate(
    jobs: &[PlanJob],
    catalog: &InstanceCatalog,
    choice: &[usize],
    horizon_secs: f64,
) -> FleetPlan {
    let mut busy = vec![0.0f64; catalog.len()];
    let mut assignments = Vec::with_capacity(jobs.len());
    let mut misses = 0u64;
    for (job, (j, &instance)) in jobs.iter().zip(choice.iter().enumerate()) {
        let secs = predict_encode_secs(&job.features, &catalog.entries()[instance]);
        let feasible = secs <= job.deadline_secs;
        if !feasible {
            misses += 1;
        }
        busy[instance] += secs;
        assignments.push(PlanAssignment { job: j, instance, predicted_secs: secs, feasible });
    }
    let mut fleet = vec![0u32; catalog.len()];
    let mut dollar_cost = 0.0;
    for (i, (&b, entry)) in busy.iter().zip(catalog.entries()).enumerate() {
        if b > 0.0 {
            let n = (b / horizon_secs).ceil().max(1.0) as u32;
            fleet[i] = n;
            dollar_cost += f64::from(n) * entry.dollars_per_hour * horizon_secs / 3600.0;
        }
    }
    FleetPlan { assignments, fleet, dollar_cost, deadline_misses: misses, horizon_secs }
}

/// A uniform single-type fleet: every job on catalog entry `instance`.
/// `uniform_plan(jobs, catalog, 0, h)` is the homogeneous baseline the
/// cost-aware winner is always measured against.
pub fn uniform_plan(
    jobs: &[PlanJob],
    catalog: &InstanceCatalog,
    instance: usize,
    horizon_secs: f64,
) -> FleetPlan {
    assert!(instance < catalog.len(), "instance index out of catalog");
    assert!(horizon_secs > 0.0, "horizon must be positive");
    evaluate(jobs, catalog, &vec![instance; jobs.len()], horizon_secs)
}

/// Plans a batch: greedy cheapest-feasible mixed assignment, run as a
/// tournament against every uniform single-type fleet; the winner has
/// the fewest deadline misses, then the lowest dollar cost, then the
/// earliest candidate (greedy first, then catalog order — fully
/// deterministic).
///
/// # Panics
///
/// Panics if `horizon_secs` is not positive.
pub fn plan_fleet(jobs: &[PlanJob], catalog: &InstanceCatalog, horizon_secs: f64) -> FleetPlan {
    assert!(horizon_secs > 0.0, "horizon must be positive");
    // Greedy: per job, the cheapest feasible entry (predicted seconds ×
    // rate); if none is feasible, the fastest entry — the miss is
    // unavoidable, so minimize its lateness.
    let greedy: Vec<usize> = jobs
        .iter()
        .map(|job| {
            let mut best_feasible: Option<(f64, usize)> = None;
            let mut fastest = (f64::INFINITY, 0usize);
            for (i, entry) in catalog.entries().iter().enumerate() {
                let secs = predict_encode_secs(&job.features, entry);
                if secs < fastest.0 {
                    fastest = (secs, i);
                }
                if secs <= job.deadline_secs {
                    let dollars = secs * entry.dollars_per_hour;
                    if best_feasible.is_none_or(|(d, _)| dollars < d) {
                        best_feasible = Some((dollars, i));
                    }
                }
            }
            best_feasible.map_or(fastest.1, |(_, i)| i)
        })
        .collect();
    let mut best = evaluate(jobs, catalog, &greedy, horizon_secs);
    for instance in 0..catalog.len() {
        let candidate = uniform_plan(jobs, catalog, instance, horizon_secs);
        if (candidate.deadline_misses, candidate.dollar_cost)
            < (best.deadline_misses, best.dollar_cost)
        {
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcodec::Preset;

    fn job(pixels_per_frame: u64, frames: u64, entropy: f64, deadline_secs: f64) -> PlanJob {
        PlanJob {
            features: JobFeatures {
                pixels_per_frame,
                frames,
                fps: 30.0,
                entropy,
                preset: Preset::Medium,
            },
            deadline_secs,
            video: 0,
        }
    }

    #[test]
    fn relaxed_deadlines_buy_the_cheapest_fleet() {
        let catalog = InstanceCatalog::default_fleet();
        let jobs: Vec<PlanJob> = (0..8).map(|_| job(640 * 360, 60, 3.0, 1e9)).collect();
        let plan = plan_fleet(&jobs, &catalog, 3600.0);
        assert_eq!(plan.deadline_misses, 0);
        let baseline = uniform_plan(&jobs, &catalog, 0, 3600.0);
        assert!(plan.dollar_cost <= baseline.dollar_cost, "never beaten by the baseline");
    }

    #[test]
    fn tight_deadlines_force_fast_instances_and_raise_cost() {
        let catalog = InstanceCatalog::default_fleet();
        // Software needs ~minutes for these; fixed-function, a second
        // or so. A 2 s deadline rules the software entries out.
        let relaxed: Vec<PlanJob> = (0..6).map(|_| job(1920 * 1080, 240, 5.0, 1e9)).collect();
        let tight: Vec<PlanJob> = (0..6).map(|_| job(1920 * 1080, 240, 5.0, 2.0)).collect();
        let cheap = plan_fleet(&relaxed, &catalog, 3600.0);
        let fast = plan_fleet(&tight, &catalog, 3600.0);
        assert_eq!(fast.deadline_misses, 0, "accelerators make the deadline");
        assert!(fast
            .assignments
            .iter()
            .all(|a| { catalog.entries()[a.instance].encoder.is_fixed() }));
        assert!(
            fast.dollar_cost >= cheap.dollar_cost,
            "tighter deadlines cannot be cheaper: {} vs {}",
            fast.dollar_cost,
            cheap.dollar_cost
        );
    }

    #[test]
    fn impossible_deadlines_are_counted_not_hidden() {
        let catalog = InstanceCatalog::default_fleet();
        let jobs = vec![job(1920 * 1080, 240, 5.0, 1e-6)];
        let plan = plan_fleet(&jobs, &catalog, 3600.0);
        assert_eq!(plan.deadline_misses, 1);
        assert_eq!(plan.miss_rate(), 1.0);
        assert!(!plan.assignments[0].feasible);
    }

    #[test]
    fn claim_order_groups_jobs_by_instance() {
        let catalog = InstanceCatalog::default_fleet();
        let mut jobs = vec![job(64 * 64, 10, 1.0, 1e9); 4];
        jobs.push(job(1920 * 1080, 240, 5.0, 1.0)); // forced onto an accelerator
        let plan = plan_fleet(&jobs, &catalog, 3600.0);
        let order = plan.claim_order(catalog.len());
        assert_eq!(order.len(), jobs.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..jobs.len()).collect::<Vec<_>>(), "a permutation");
        // Jobs on the same instance keep their relative order.
        let instances: Vec<usize> = order.iter().map(|&j| plan.assignments[j].instance).collect();
        assert!(instances.windows(2).all(|w| w[0] <= w[1]), "grouped by catalog entry");
    }

    #[test]
    fn scenario_slacks_order_by_urgency() {
        assert!(
            scenario_deadline_slack(Scenario::Live) < scenario_deadline_slack(Scenario::Popular)
        );
        assert!(
            scenario_deadline_slack(Scenario::Popular) < scenario_deadline_slack(Scenario::Upload)
        );
    }

    #[test]
    #[should_panic(expected = "not a service scenario")]
    fn vod_has_no_deadline_slack() {
        scenario_deadline_slack(Scenario::Vod);
    }
}
