//! Content-feature cost prediction: encode seconds per instance type.
//!
//! The planner must price a job on every catalog entry *before* any
//! frame exists, from the same corpus metadata the service layer
//! schedules on: resolution (log₂ pixels), frame rate, and published
//! entropy. Two regimes, mirroring the paper's software/hardware split:
//!
//! * **Fixed-function** entries are content independent — prediction is
//!   the [`vhw::PipelineModel`] stage arithmetic itself
//!   ([`vhw::PipelineModel::stage_seconds_for`]), so a predicted
//!   hardware encode matches the modeled one exactly.
//! * **Software** entries scale with content: predicted work is pixels
//!   × preset effort × a content multiplier that grows with entropy and
//!   (log₂) resolution, plus a per-frame overhead. The multiplier's
//!   coefficients are calibrated against real `vcodec` encodes of the
//!   seed corpus, using [`vcodec::KernelCounters::total_samples`] — a
//!   machine-independent work measure — as ground truth; the
//!   calibration test in this module pins the fit and its error bound.

use vcodec::Preset;
use vhw::{EncoderKind, InstanceCatalog, InstanceType};

/// The corpus features a job is priced on. Constructed from suite
/// metadata (see `VideoProfile::features`); no clip is materialized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobFeatures {
    /// Frame size in pixels.
    pub pixels_per_frame: u64,
    /// Clip length in frames.
    pub frames: u64,
    /// Frame rate in frames per second.
    pub fps: f64,
    /// Published category entropy (bits/pixel at visually lossless).
    pub entropy: f64,
    /// The preset the job will run at (scenario reference, possibly
    /// degraded).
    pub preset: Preset,
}

impl JobFeatures {
    /// Total source pixels across the clip.
    pub fn total_pixels(&self) -> f64 {
        self.pixels_per_frame as f64 * self.frames as f64
    }

    /// log₂ of the frame size — the resolution feature the predictor
    /// and the corpus clustering both operate on.
    pub fn log2_resolution(&self) -> f64 {
        (self.pixels_per_frame.max(1) as f64).log2()
    }
}

/// Software-work model coefficients, fit against `total_samples()` of
/// real reference encodes of the seed corpus (the calibration
/// round-trip in `tests/fleet_pareto.rs` pins the fit to a ±15%
/// multiplicative bound). The content multiplier is
/// `(ENTROPY_BASE + ENTROPY_SLOPE · entropy) ·
/// (1 + RES_SLOPE · clamp(log₂px − RES_PIVOT_LOG2, 0, RES_SPAN_LOG2))`:
/// monotone non-decreasing in both entropy and pixels by construction.
const ENTROPY_BASE: f64 = 0.9;
const ENTROPY_SLOPE: f64 = 0.021;
const RES_PIVOT_LOG2: f64 = 12.0;
/// The fit drove the residual resolution slope to zero: once the
/// per-frame overhead is modeled, per-pixel software cost is flat in
/// frame size on the seed corpus. The term stays so the model's shape —
/// and its monotonicity guarantee in log₂ resolution — is stated in one
/// place, and a future refit only changes numbers here.
const RES_SLOPE: f64 = 0.0;
const RES_SPAN_LOG2: f64 = 8.0;
/// Per-frame software overhead, in reference-pixel equivalents.
const FRAME_OVERHEAD_PIXELS: f64 = 1_440.0;
/// Kernel samples one reference-pixel equivalent of work corresponds
/// to: the single calibration constant tying the abstract work model to
/// `vcodec`'s machine-independent sample counters.
pub const WORK_SAMPLES_PER_PIXEL: f64 = 32.0;

/// Predicted *software* work for a job, in reference-pixel equivalents
/// (the units [`WORK_SAMPLES_PER_PIXEL`] calibrates): divide by an
/// instance's software `base_pixels_per_sec` for seconds. Instance
/// independent, so the planner computes it once per job.
pub fn predict_work_pixels(features: &JobFeatures) -> f64 {
    let content = (ENTROPY_BASE + ENTROPY_SLOPE * features.entropy)
        * (1.0
            + RES_SLOPE * (features.log2_resolution() - RES_PIVOT_LOG2).clamp(0.0, RES_SPAN_LOG2));
    features.total_pixels() * effort(features.preset) * content
        + features.frames as f64 * FRAME_OVERHEAD_PIXELS
}

/// Effort multiplier for a preset, *fitted* rather than borrowed from
/// the service sim's shed-cost ladder: the real encoder's cost curve is
/// far steeper at the slow end (the Popular reference adds a second
/// pass on top of `VerySlow`'s exhaustive search), and the calibration
/// encodes measure that directly. The three scoring-scenario presets
/// (`VeryFast`, `Fast`, `VerySlow`) are fitted; the rest are
/// interpolated on the same curve and kept monotone in the ladder.
fn effort(preset: Preset) -> f64 {
    match preset {
        Preset::UltraFast => 0.7,
        Preset::VeryFast => 0.9,
        Preset::Fast => 1.0,
        Preset::Medium => 3.0,
        Preset::Slow => 8.0,
        Preset::VerySlow => 21.0,
    }
}

/// Predicted encode seconds for `features` on one catalog instance.
pub fn predict_encode_secs(features: &JobFeatures, instance: &InstanceType) -> f64 {
    match instance.encoder {
        EncoderKind::Software { base_pixels_per_sec } => {
            predict_work_pixels(features) / base_pixels_per_sec
        }
        EncoderKind::Fixed(model) => {
            model.stage_seconds_for(features.pixels_per_frame, features.frames).total()
        }
    }
}

/// Predicted dollar cost of running `features` on one catalog instance:
/// predicted seconds at the instance's hourly rate.
pub fn predict_job_dollars(features: &JobFeatures, instance: &InstanceType) -> f64 {
    predict_encode_secs(features, instance) * instance.dollars_per_hour / 3600.0
}

/// The cheapest predicted dollar cost for `features` across a catalog —
/// the per-job "fair price" admission uses to order shed candidates by
/// value per dollar.
pub fn cheapest_job_dollars(features: &JobFeatures, catalog: &InstanceCatalog) -> f64 {
    catalog.entries().iter().map(|e| predict_job_dollars(features, e)).fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhw::InstanceCatalog;

    #[test]
    fn effort_ladder_is_strictly_monotone() {
        let ladder = [
            Preset::UltraFast,
            Preset::VeryFast,
            Preset::Fast,
            Preset::Medium,
            Preset::Slow,
            Preset::VerySlow,
        ];
        for w in ladder.windows(2) {
            assert!(effort(w[0]) < effort(w[1]), "{:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn cheapest_dollars_is_the_catalog_minimum() {
        let cat = InstanceCatalog::default_fleet();
        let f = JobFeatures {
            pixels_per_frame: 640 * 360,
            frames: 150,
            fps: 30.0,
            entropy: 5.0,
            preset: Preset::Fast,
        };
        let cheapest = cheapest_job_dollars(&f, &cat);
        assert!(cheapest > 0.0);
        for e in cat.entries() {
            assert!(cheapest <= predict_job_dollars(&f, e), "{}", e.name);
        }
        assert!(cat.entries().iter().any(|e| predict_job_dollars(&f, e) == cheapest));
    }

    #[test]
    fn hardware_prediction_is_the_pipeline_model_exactly() {
        let cat = InstanceCatalog::default_fleet();
        let f = JobFeatures {
            pixels_per_frame: 1280 * 720,
            frames: 120,
            fps: 30.0,
            entropy: 4.2,
            preset: Preset::Medium,
        };
        for e in cat.entries() {
            if let EncoderKind::Fixed(m) = e.encoder {
                let direct = m.stage_seconds_for(f.pixels_per_frame, f.frames).total();
                assert_eq!(predict_encode_secs(&f, e), direct, "{}", e.name);
            }
        }
    }
}
