//! The `PARETO_<scenario>.json` cost-QoS frontier report.
//!
//! One point per deadline multiplier: the cost-aware plan's dollar cost
//! and deadline-miss rate next to the homogeneous baseline's, plus the
//! fleet actually bought. The serializer follows the workspace's stable
//! single-line JSON rules (fixed key order, shortest round-trip floats,
//! trailing newline) because byte-identical output at any `--workers`
//! is an acceptance criterion CI enforces with `cmp`.

use std::collections::BTreeSet;

use vhw::InstanceCatalog;

use super::plan::{plan_fleet, scenario_deadline_slack, uniform_plan, PlanJob};
use crate::engine::Transcoder;
use crate::exec::PlacementPlan;
use crate::farm::{transcode_batch_placed, BatchError, EngineJob, JobSource};
use crate::reference::reference_request_for;
use crate::resilience::ResilienceConfig;
use crate::service::arrivals::generate_arrivals;
use crate::service::{EncodeProof, ServiceConfig, VideoProfile};

/// Report format version; bump on any schema change.
pub const PARETO_VERSION: u32 = 1;

/// The deadline multipliers the frontier is swept over: fractions of
/// the scenario deadline, tight enough at the low end to price the
/// cheap software classes out and surface the cost-QoS trade-off.
pub const DEADLINE_MULT_GRID: &[f64] = &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0];

/// One frontier point: the planner's outcome at one deadline scale.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoPoint {
    /// Deadline multiplier this point planned under (1.0 = the
    /// scenario's own deadline).
    pub deadline_mult: f64,
    /// Cost-aware plan: dollars to rent its fleet for the horizon.
    pub dollar_cost: f64,
    /// Cost-aware plan: deadline misses per job.
    pub miss_rate: f64,
    /// Homogeneous baseline (catalog entry 0 only): dollars.
    pub baseline_dollar_cost: f64,
    /// Homogeneous baseline: deadline misses per job.
    pub baseline_miss_rate: f64,
    /// Instances bought per catalog entry (parallel to the report's
    /// `instances` names).
    pub fleet: Vec<u32>,
}

/// The full frontier report for one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoReport {
    /// Scenario the frontier was planned for.
    pub scenario: String,
    /// Admission-window length in virtual seconds (also the fleet-sizing
    /// horizon).
    pub duration_secs: f64,
    /// Mean arrival rate, jobs per virtual second.
    pub offered_load: f64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Jobs planned (arrivals inside the admission window).
    pub jobs: u64,
    /// Catalog entry names, in catalog order.
    pub instances: Vec<String>,
    /// Real-encode fingerprint over the planned job set's unique videos,
    /// encoded in the mult-1.0 plan's placement order.
    pub proof: EncodeProof,
    /// Frontier points, in grid order.
    pub points: Vec<ParetoPoint>,
}

impl ParetoReport {
    /// Whether the mult-1.0 point (the scenario's own deadline) had any
    /// job no catalog entry could serve in time.
    pub fn infeasible_at_unit_deadline(&self) -> bool {
        self.points.iter().any(|p| p.deadline_mult == 1.0 && p.miss_rate > 0.0)
    }

    /// Serializes to the stable single-line JSON document (trailing
    /// newline included). Equal reports produce equal bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.points.len() * 160);
        out.push_str(&format!(
            "{{\"kind\":\"pareto\",\"version\":{},\"scenario\":\"{}\",\"duration_secs\":{},\
             \"offered_load\":{},\"seed\":{},\"jobs\":{},\"instances\":[",
            PARETO_VERSION,
            self.scenario,
            jf64(self.duration_secs),
            jf64(self.offered_load),
            self.seed,
            self.jobs,
        ));
        for (i, name) in self.instances.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\""));
        }
        out.push_str(&format!(
            "],\"unique_encodes\":{},\"encode_crc32\":{},\"encoded_bytes\":{},\"points\":[",
            self.proof.unique_encodes, self.proof.encode_crc32, self.proof.encoded_bytes,
        ));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"deadline_mult\":{},\"dollar_cost\":{},\"miss_rate\":{},\
                 \"baseline_dollar_cost\":{},\"baseline_miss_rate\":{},\"fleet\":[",
                jf64(p.deadline_mult),
                jf64(p.dollar_cost),
                jf64(p.miss_rate),
                jf64(p.baseline_dollar_cost),
                jf64(p.baseline_miss_rate),
            ));
            for (k, n) in p.fleet.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&n.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

/// The planner's job list for one service run: every arrival inside the
/// admission window, priced on the profile's features, with the
/// scenario deadline scaled by `deadline_mult`. Live deadlines derive
/// from the profile's play-out duration — the
/// [`crate::scenario::live_deadline_secs_for`] arithmetic — times the
/// arrival layer's real-time slack.
pub fn plan_jobs(
    config: &ServiceConfig,
    profiles: &[VideoProfile],
    deadline_mult: f64,
) -> Vec<PlanJob> {
    let slack = scenario_deadline_slack(config.scenario);
    let window_us = (config.duration_secs * 1e6).round() as u64;
    generate_arrivals(config, profiles)
        .into_iter()
        .filter(|a| a.at_us <= window_us)
        .map(|a| PlanJob {
            features: profiles[a.video].features(),
            deadline_secs: profiles[a.video].play_secs * slack * deadline_mult,
            video: a.video,
        })
        .collect()
}

/// Sweeps the deadline grid and assembles the frontier report,
/// including the real-encode proof: the planned job set's unique
/// videos, encoded once each through the placed executor in the
/// mult-1.0 plan's claim order. The virtual planning never depends on
/// `workers`, and the farm's determinism contract makes the proof
/// fingerprint worker-independent too — so the report is byte-identical
/// at any worker count. Emits the mult-1.0 plan's `fleet.dollar_cost`
/// gauge.
///
/// # Errors
///
/// [`BatchError`] when the proof encode batch fails.
pub fn pareto_report(
    config: &ServiceConfig,
    profiles: &[VideoProfile],
    catalog: &InstanceCatalog,
    engine: &dyn Transcoder,
    workers: usize,
) -> Result<ParetoReport, BatchError> {
    let mut points = Vec::with_capacity(DEADLINE_MULT_GRID.len());
    let mut job_count = 0u64;
    for &mult in DEADLINE_MULT_GRID {
        let jobs = plan_jobs(config, profiles, mult);
        job_count = jobs.len() as u64;
        let plan = plan_fleet(&jobs, catalog, config.duration_secs);
        let baseline = uniform_plan(&jobs, catalog, 0, config.duration_secs);
        if mult == 1.0 {
            vtrace::gauge("fleet.dollar_cost", plan.dollar_cost);
        }
        points.push(ParetoPoint {
            deadline_mult: mult,
            dollar_cost: plan.dollar_cost,
            miss_rate: plan.miss_rate(),
            baseline_dollar_cost: baseline.dollar_cost,
            baseline_miss_rate: baseline.miss_rate(),
            fleet: plan.fleet,
        });
    }
    let proof = encode_proof(config, profiles, catalog, engine, workers)?;
    Ok(ParetoReport {
        scenario: config.scenario.name().to_ascii_lowercase(),
        duration_secs: config.duration_secs,
        offered_load: config.offered_load,
        seed: config.seed,
        jobs: job_count,
        instances: catalog.entries().iter().map(|e| e.name.to_string()).collect(),
        proof,
        points,
    })
}

/// Encodes each unique video in the planned job set once, at the
/// scenario reference request, through [`transcode_batch_placed`] in
/// the mult-1.0 plan's claim order — real encodes behind the plan, with
/// the same CRC folding as the service proof.
fn encode_proof(
    config: &ServiceConfig,
    profiles: &[VideoProfile],
    catalog: &InstanceCatalog,
    engine: &dyn Transcoder,
    workers: usize,
) -> Result<EncodeProof, BatchError> {
    let jobs = plan_jobs(config, profiles, 1.0);
    let videos: BTreeSet<usize> = jobs.iter().map(|j| j.video).collect();
    let unique: Vec<PlanJob> = videos
        .iter()
        .map(|&v| {
            // One planner job per unique video, deadline at mult 1.0.
            let slack = scenario_deadline_slack(config.scenario);
            PlanJob {
                features: profiles[v].features(),
                deadline_secs: profiles[v].play_secs * slack,
                video: v,
            }
        })
        .collect();
    let plan = plan_fleet(&unique, catalog, config.duration_secs);
    let placement =
        PlacementPlan::new(plan.claim_order(catalog.len())).expect("claim order is a permutation");
    let engine_jobs: Vec<EngineJob> = unique
        .iter()
        .map(|j| {
            let p = &profiles[j.video];
            let request = reference_request_for(config.scenario, p.spec.resolution, p.kpixels);
            EngineJob::streaming(p.name, JobSource::Synth(p.spec.clone()), request)
        })
        .collect();
    let report = transcode_batch_placed(
        engine,
        &engine_jobs,
        workers,
        &ResilienceConfig::default(),
        &placement,
    )?
    .require_complete()?;
    let mut folded = Vec::with_capacity(report.results.len() * 4);
    let mut encoded_bytes = 0u64;
    for r in &report.results {
        if let Ok(outcome) = &r.outcome {
            folded.extend_from_slice(&vpack::crc32(outcome.bytes()).to_be_bytes());
            encoded_bytes += outcome.bytes().len() as u64;
        }
    }
    Ok(EncodeProof {
        unique_encodes: engine_jobs.len(),
        encode_crc32: vpack::crc32(&folded),
        encoded_bytes,
    })
}

/// JSON float formatting: shortest round-trip via `{:?}`, `null` for
/// non-finite values (matching the journal writer's convention).
fn jf64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ParetoReport {
        ParetoReport {
            scenario: "live".to_string(),
            duration_secs: 8.0,
            offered_load: 12.5,
            seed: 0x5eed,
            jobs: 90,
            instances: vec!["x86-sw".to_string(), "x86-qsv".to_string()],
            proof: EncodeProof { unique_encodes: 3, encode_crc32: 0xBEEF, encoded_bytes: 4096 },
            points: vec![
                ParetoPoint {
                    deadline_mult: 0.1,
                    dollar_cost: 0.5,
                    miss_rate: 0.25,
                    baseline_dollar_cost: 0.4,
                    baseline_miss_rate: 1.0,
                    fleet: vec![0, 2],
                },
                ParetoPoint {
                    deadline_mult: 1.0,
                    dollar_cost: 0.25,
                    miss_rate: 0.0,
                    baseline_dollar_cost: 0.4,
                    baseline_miss_rate: 0.0,
                    fleet: vec![1, 1],
                },
            ],
        }
    }

    #[test]
    fn serialization_is_byte_stable() {
        let r = report();
        assert_eq!(r.to_json(), r.to_json());
        assert!(r.to_json().ends_with("]}\n"));
        assert_eq!(r.to_json().lines().count(), 1, "single line");
    }

    #[test]
    fn schema_keys_in_fixed_order() {
        let json = report().to_json();
        assert!(json.starts_with("{\"kind\":\"pareto\",\"version\":1,\"scenario\":\"live\","));
        let d = json.find("\"dollar_cost\"").unwrap();
        let m = json.find("\"miss_rate\"").unwrap();
        let b = json.find("\"baseline_dollar_cost\"").unwrap();
        assert!(d < m && m < b, "point key order is pinned");
        assert!(json.contains("\"instances\":[\"x86-sw\",\"x86-qsv\"]"));
        assert!(json.contains("\"fleet\":[0,2]"));
    }

    #[test]
    fn unit_deadline_feasibility_looks_at_the_right_point() {
        let mut r = report();
        assert!(!r.infeasible_at_unit_deadline());
        r.points[1].miss_rate = 0.5;
        assert!(r.infeasible_at_unit_deadline());
    }
}
