//! Parallel batch transcoding with real worker threads — now resilient.
//!
//! The paper's reference machine runs ffmpeg on 4 cores / 8 threads;
//! production fleets drain upload queues with many workers per box. This
//! module is the workspace's real (not simulated — see [`crate::fleet`]
//! for the queueing model) parallel driver: a work-stealing batch encoder
//! over OS threads, used to measure aggregate box throughput and to
//! transcode the suite in parallel.
//!
//! Two entry points share one scheduler:
//!
//! * [`transcode_batch_with`] drives [`EngineJob`]s through any
//!   [`Transcoder`] — software and hardware requests mix freely in one
//!   batch (this is how Tables 3/4/5 fan out). It runs under the default
//!   (zero-overhead) [`ResilienceConfig`]; [`transcode_batch_resilient`]
//!   takes an explicit policy: retries with capped exponential backoff,
//!   per-job deadlines, straggler hedging, preset degradation, and
//!   deterministic fault injection.
//! * [`transcode_batch`] is the raw-software path: plain
//!   [`vcodec::EncoderConfig`] jobs, kept for callers that sit below the
//!   engine (and as the equivalence baseline for it).
//!
//! The engine path never dies wholesale: each attempt runs inside
//! `catch_unwind`, so one poisoned job reports
//! [`JobError::Panicked`] in its slot of the [`EngineBatchReport`]
//! instead of taking the batch down, and every other job's result is
//! byte-identical to an unfaulted run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::engine::{
    StreamOutcome, TranscodeError, TranscodeOutcome, TranscodeRequest, Transcoder,
};
use crate::measure::Measurement;
use crate::resilience::{degraded_request, FaultyTranscoder, ResilienceConfig};
use vcodec::{encode, EncodeOutput, EncodeStats, EncoderConfig};
use vframe::source::{FrameSource, VideoSource};
use vframe::Video;
use vhw::StageSeconds;
use vsynth::SourceSpec;

/// One raw-software transcode job: a source clip and the configuration to
/// encode it with.
#[derive(Clone, Debug)]
pub struct TranscodeJob {
    /// Job label (e.g. the suite video name).
    pub name: String,
    /// Source clip.
    pub video: Video,
    /// Encoder configuration.
    pub config: EncoderConfig,
}

/// One finished raw-software job.
#[derive(Debug)]
pub struct TranscodeResult {
    /// Job label.
    pub name: String,
    /// Encode output (bitstream, stats, reconstruction).
    pub output: EncodeOutput,
}

/// Aggregate outcome of a raw-software batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in the order of the input jobs.
    pub results: Vec<TranscodeResult>,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Aggregate throughput: total source pixels / wall seconds.
    pub aggregate_pps: f64,
    /// Sum of per-job encode seconds (CPU-seconds of useful work).
    pub cpu_secs: f64,
}

impl BatchReport {
    /// Parallel speedup achieved: CPU-seconds of work divided by
    /// wall-clock seconds (≈ effective busy workers).
    pub fn speedup(&self) -> f64 {
        self.cpu_secs / self.wall_secs.max(1e-9)
    }
}

/// Where an engine job's frames come from.
///
/// In-memory jobs carry the whole clip (the pre-streaming contract);
/// synthetic jobs carry only the [`SourceSpec`] and render frames on
/// demand, so a streamed batch never materializes its inputs at all.
#[derive(Clone, Debug)]
pub enum JobSource {
    /// A fully materialized clip.
    InMemory(Video),
    /// A synthetic source rendered frame by frame as the encoder pulls.
    Synth(SourceSpec),
}

impl JobSource {
    /// Total source pixels (frames × pixels per frame).
    pub fn total_pixels(&self) -> u64 {
        match self {
            JobSource::InMemory(v) => v.total_pixels(),
            JobSource::Synth(spec) => spec.resolution.pixels() * spec.frames as u64,
        }
    }

    /// Frame count.
    pub fn frames(&self) -> usize {
        match self {
            JobSource::InMemory(v) => v.len(),
            JobSource::Synth(spec) => spec.frames,
        }
    }

    /// Opens a fresh pull stream over the source.
    pub fn open(&self) -> Box<dyn FrameSource + '_> {
        match self {
            JobSource::InMemory(v) => Box::new(VideoSource::new(v)),
            JobSource::Synth(spec) => Box::new(spec.source()),
        }
    }

    /// The materialized clip: borrowed for in-memory sources, rendered
    /// for synthetic ones.
    pub fn materialize(&self) -> std::borrow::Cow<'_, Video> {
        match self {
            JobSource::InMemory(v) => std::borrow::Cow::Borrowed(v),
            JobSource::Synth(spec) => std::borrow::Cow::Owned(spec.generate()),
        }
    }
}

/// One engine transcode job: a frame source and the request to run it
/// with. The backend lives inside the request, so one batch can span
/// software and hardware rows.
#[derive(Clone, Debug)]
pub struct EngineJob {
    /// Job label (e.g. the suite video name).
    pub name: String,
    /// Frame source.
    pub source: JobSource,
    /// Transcode request.
    pub request: TranscodeRequest,
    /// Run through [`Transcoder::transcode_stream`] (bounded residency,
    /// no reconstruction) instead of the in-memory path.
    pub stream: bool,
    /// Per-job deadline on encode seconds, overriding the batch-wide
    /// [`ResilienceConfig::job_deadline_secs`]. The Live scenario derives
    /// this from the clip's real-time pixel rate
    /// ([`crate::scenario::live_deadline_secs`]).
    pub deadline_secs: Option<f64>,
}

impl EngineJob {
    /// An in-memory job with no per-job deadline.
    pub fn new(name: impl Into<String>, video: Video, request: TranscodeRequest) -> EngineJob {
        EngineJob {
            name: name.into(),
            source: JobSource::InMemory(video),
            request,
            stream: false,
            deadline_secs: None,
        }
    }

    /// A streaming job: frames are pulled from `source` per attempt and
    /// residency stays bounded on backends with a streaming path.
    pub fn streaming(
        name: impl Into<String>,
        source: JobSource,
        request: TranscodeRequest,
    ) -> EngineJob {
        EngineJob { name: name.into(), source, request, stream: true, deadline_secs: None }
    }

    /// Attaches a per-job deadline on encode seconds.
    pub fn with_deadline(mut self, secs: f64) -> EngineJob {
        self.deadline_secs = Some(secs);
        self
    }
}

/// Why one engine job ultimately failed (after exhausting its retry
/// budget).
#[derive(Clone, PartialEq, Debug)]
pub enum JobError {
    /// Every attempt returned a typed transcode error; this is the last
    /// one.
    Transcode(TranscodeError),
    /// The final attempt panicked; the panic was caught and isolated to
    /// this job.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The final attempt produced a valid outcome, but its encode time
    /// exceeded the job's deadline.
    DeadlineExceeded {
        /// The deadline that applied, in seconds.
        deadline_secs: f64,
        /// The encode seconds the final attempt actually took.
        encode_secs: f64,
    },
    /// The job failed in a *previous* journaled run and the failure was
    /// replayed from the journal instead of re-run (`--resume` replays
    /// outcomes, successful or not; rerunning a failed job would change
    /// the batch's deterministic fault replay).
    ReplayedFailure {
        /// The original failure's message, as journaled.
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Transcode(e) => e.fmt(f),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::DeadlineExceeded { deadline_secs, encode_secs } => {
                write!(f, "deadline {deadline_secs:.3}s exceeded: encode took {encode_secs:.3}s")
            }
            JobError::ReplayedFailure { message } => {
                write!(f, "failed in a previous journaled run: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Transcode(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a batch could not run at all. Per-job failures do *not* land
/// here — they live in each job's slot of the [`EngineBatchReport`] —
/// except through [`EngineBatchReport::require_complete`], which converts
/// the first failed job (in job order) into [`BatchError::JobFailed`]
/// for callers that need every job to succeed.
#[derive(Clone, PartialEq, Debug)]
pub enum BatchError {
    /// The batch was asked to run on zero workers.
    NoWorkers,
    /// A job failed (first in job order), surfaced by
    /// [`EngineBatchReport::require_complete`].
    JobFailed {
        /// The failing job's label.
        job: String,
        /// Why it failed.
        error: JobError,
    },
    /// A supervisor hook stopped the batch mid-run. Only journaled
    /// execution installs such hooks (scripted [`vfault::CrashPoint`]
    /// aborts); the journal driver maps this to its own typed crash
    /// error, so plain batch callers never observe it.
    Aborted,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::NoWorkers => write!(f, "batch needs at least one worker"),
            BatchError::JobFailed { job, error } => write!(f, "job '{job}' failed: {error}"),
            BatchError::Aborted => write!(f, "batch aborted by a supervisor hook"),
        }
    }
}

impl std::error::Error for BatchError {}

/// A completed job loaded back from a durability journal
/// (`crate::journal`) instead of re-encoded: the journaled bitstream
/// (already CRC-verified against its recorded checksum) plus the
/// measurement, timings, and partial stats the original run recorded.
///
/// The journal does not persist reconstructions or kernel counters, so
/// `stats.kernels` is zeroed — a replayed outcome is for output
/// identity and reporting, not for microarchitectural analysis.
#[derive(Clone, Debug)]
pub struct ReplayedOutcome {
    /// The journaled bitstream, byte-identical to the original encode.
    pub bytes: Vec<u8>,
    /// `vpack::crc32` of `bytes`, as journaled and re-verified on load.
    pub crc32: u32,
    /// The original run's measurement.
    pub measurement: Measurement,
    /// The original run's stage timings.
    pub timings: StageSeconds,
    /// The bitrate the rate policy operated at, if any.
    pub chosen_bps: Option<u64>,
    /// Partial stats (encode seconds, sizes, frame/superblock counts);
    /// kernel counters are zeroed.
    pub stats: EncodeStats,
}

/// A completed job's payload: the in-memory outcome (with
/// reconstruction) or the streaming outcome (bounded residency, no
/// reconstruction), depending on [`EngineJob::stream`] — or a
/// journal-replayed outcome when the batch resumed. The accessors
/// cover every field shared by all shapes.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// From [`Transcoder::transcode`]: bitstream + reconstruction.
    Full(TranscodeOutcome),
    /// From [`Transcoder::transcode_stream`]: bitstream only, plus the
    /// peak frame residency the encode reached.
    Streamed(StreamOutcome),
    /// Loaded from a durability journal on `--resume`; never re-encoded.
    Replayed(ReplayedOutcome),
}

impl JobOutcome {
    /// The transcode's measurement.
    pub fn measurement(&self) -> &Measurement {
        match self {
            JobOutcome::Full(o) => &o.measurement,
            JobOutcome::Streamed(o) => &o.measurement,
            JobOutcome::Replayed(o) => &o.measurement,
        }
    }

    /// Stage timings.
    pub fn timings(&self) -> &StageSeconds {
        match self {
            JobOutcome::Full(o) => &o.timings,
            JobOutcome::Streamed(o) => &o.timings,
            JobOutcome::Replayed(o) => &o.timings,
        }
    }

    /// The produced bitstream.
    pub fn bytes(&self) -> &[u8] {
        match self {
            JobOutcome::Full(o) => &o.output.bytes,
            JobOutcome::Streamed(o) => &o.bytes,
            JobOutcome::Replayed(o) => &o.bytes,
        }
    }

    /// Work and timing statistics.
    pub fn stats(&self) -> &EncodeStats {
        match self {
            JobOutcome::Full(o) => &o.output.stats,
            JobOutcome::Streamed(o) => &o.stats,
            JobOutcome::Replayed(o) => &o.stats,
        }
    }

    /// The bitrate the rate policy operated at, if any.
    pub fn chosen_bps(&self) -> Option<u64> {
        match self {
            JobOutcome::Full(o) => o.chosen_bps,
            JobOutcome::Streamed(o) => o.chosen_bps,
            JobOutcome::Replayed(o) => o.chosen_bps,
        }
    }

    /// Peak resident frames, reported by streamed jobs only.
    pub fn peak_resident_frames(&self) -> Option<usize> {
        match self {
            JobOutcome::Streamed(o) => Some(o.peak_resident_frames),
            _ => None,
        }
    }

    /// The in-memory outcome, if this job ran the in-memory path.
    pub fn as_full(&self) -> Option<&TranscodeOutcome> {
        match self {
            JobOutcome::Full(o) => Some(o),
            _ => None,
        }
    }

    /// Consumes into the in-memory outcome, if this job ran that path.
    pub fn into_full(self) -> Option<TranscodeOutcome> {
        match self {
            JobOutcome::Full(o) => Some(o),
            _ => None,
        }
    }

    /// The streaming outcome, if this job streamed.
    pub fn as_streamed(&self) -> Option<&StreamOutcome> {
        match self {
            JobOutcome::Streamed(o) => Some(o),
            _ => None,
        }
    }

    /// The journal-replayed outcome, if this job was resumed from a
    /// journal rather than encoded in this run.
    pub fn as_replayed(&self) -> Option<&ReplayedOutcome> {
        match self {
            JobOutcome::Replayed(o) => Some(o),
            _ => None,
        }
    }
}

/// One finished engine job: its outcome (or why it failed) plus the
/// resilience history that produced it.
#[derive(Debug)]
pub struct EngineJobResult {
    /// Job label.
    pub name: String,
    /// The transcode's outcome, or why the job failed after its retry
    /// budget.
    pub outcome: Result<JobOutcome, JobError>,
    /// Attempts run (1 = first try succeeded). Hedge copies do not
    /// count: they re-run the same attempt sequence.
    pub attempts: u32,
    /// Whether a hedge copy was launched for this job.
    pub hedged: bool,
    /// Effort notches shed by deadline-miss degradation (0 = the
    /// requested preset ran).
    pub degraded: u32,
    /// Whether any attempt missed its deadline.
    pub deadline_missed: bool,
}

impl EngineJobResult {
    /// The successful outcome, if the job completed.
    pub fn success(&self) -> Option<&JobOutcome> {
        self.outcome.as_ref().ok()
    }

    /// The failure, if the job did not complete.
    pub fn error(&self) -> Option<&JobError> {
        self.outcome.as_ref().err()
    }
}

/// Aggregate resilience counters for one batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchSummary {
    /// Jobs that produced an outcome.
    pub completed: usize,
    /// Jobs that failed after exhausting their retry budget.
    pub failed: usize,
    /// Retry attempts run across the batch (excluding first attempts).
    pub retries: u64,
    /// Hedge copies launched.
    pub hedges: u64,
    /// Attempts whose encode time exceeded their deadline.
    pub deadline_misses: u64,
    /// Jobs that ran with a degraded (downshifted) preset.
    pub degraded: u64,
    /// Panics caught and isolated.
    pub panics: u64,
    /// Jobs whose outcome (success or failure) was replayed from a
    /// durability journal instead of re-run.
    pub replayed: usize,
    /// The largest peak frame residency any *streamed* job reported
    /// (0 when no job streamed): the batch's bounded-memory high-water
    /// mark.
    pub peak_resident_frames: usize,
}

/// Aggregate outcome of an engine batch: per-job results (every job has
/// a slot, failed or not) plus the resilience summary.
#[derive(Debug)]
pub struct EngineBatchReport {
    /// Per-job results, in the order of the input jobs.
    pub results: Vec<EngineJobResult>,
    /// Resilience counters.
    pub summary: BatchSummary,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Aggregate throughput: total source pixels / wall seconds.
    pub aggregate_pps: f64,
    /// Sum of per-job modelled/measured transcode seconds over the jobs
    /// that completed.
    pub cpu_secs: f64,
}

impl EngineBatchReport {
    /// Parallel speedup achieved: transcode-seconds of work divided by
    /// wall-clock seconds (≈ effective busy workers).
    pub fn speedup(&self) -> f64 {
        self.cpu_secs / self.wall_secs.max(1e-9)
    }

    /// The first failed job in job order, if any.
    pub fn first_failure(&self) -> Option<(&str, &JobError)> {
        self.results.iter().find_map(|r| r.error().map(|e| (r.name.as_str(), e)))
    }

    /// Demands an all-success batch: returns the report unchanged when
    /// every job completed, or [`BatchError::JobFailed`] for the first
    /// failure in job order (the pre-resilience all-or-nothing contract,
    /// for callers like the ladder whose output is meaningless with
    /// holes in it).
    pub fn require_complete(self) -> Result<EngineBatchReport, BatchError> {
        match self.first_failure() {
            None => Ok(self),
            Some((job, error)) => {
                Err(BatchError::JobFailed { job: job.to_string(), error: error.clone() })
            }
        }
    }
}

/// The shared work-stealing scheduler for the raw-software path: runs
/// `run` over every job on `workers` OS threads (a shared atomic cursor
/// hands out work) and returns the results in input order plus the batch
/// wall time. An empty batch yields an empty result list; zero workers is
/// [`BatchError::NoWorkers`].
///
/// # Panics
///
/// Propagates a panicking `run` (the engine path isolates panics per job
/// instead; this raw path sits below the engine and keeps the blunt
/// contract).
fn run_batch<J, R, F>(jobs: &[J], workers: usize, run: F) -> Result<(Vec<R>, f64), BatchError>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    if workers == 0 {
        return Err(BatchError::NoWorkers);
    }
    let spawned = workers.min(jobs.len());
    let mut batch_span = vtrace::span("farm.batch");
    let batch_id = batch_span.id();
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    // Busy microseconds across all workers, for the utilization gauge.
    let busy_us = AtomicU64::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let slot_refs: Vec<Mutex<&mut Option<R>>> = slots.iter_mut().map(Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..spawned {
            scope.spawn(|| {
                // Parent is passed explicitly: the batch span lives on the
                // main thread's stack, invisible to this thread's.
                let mut worker_span = vtrace::span_with_parent("farm.worker", batch_id);
                let mut jobs_done = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let traced_at = vtrace::enabled().then(|| {
                        // Queue wait: how long the job sat between batch
                        // start and this worker picking it up.
                        vtrace::histogram(
                            "farm.queue_wait_us",
                            started.elapsed().as_micros() as u64,
                        );
                        if jobs_done > 0 {
                            // Every grab after a worker's first is a pull
                            // from the shared queue.
                            vtrace::counter("farm.steals", 1);
                        }
                        Instant::now()
                    });
                    let result = run(&jobs[i]);
                    if let Some(t0) = traced_at {
                        busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                    }
                    jobs_done += 1;
                    // Invariant: the cursor hands each index to exactly
                    // one worker, so the slot lock is never contended and
                    // never poisoned (run's panics abort the scope).
                    **slot_refs[i].lock().expect("unique slot owner") = Some(result);
                }
                if worker_span.id().is_some() {
                    worker_span.record("jobs", jobs_done);
                    vtrace::counter("farm.jobs_completed", jobs_done);
                }
            });
        }
    });

    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    if batch_span.id().is_some() {
        batch_span.record("jobs", jobs.len());
        batch_span.record("workers", spawned);
        // Fraction of worker-seconds spent running jobs (1.0 = no worker
        // ever idled waiting for the queue to drain).
        let utilization =
            busy_us.load(Ordering::Relaxed) as f64 / 1e6 / (spawned.max(1) as f64 * wall_secs);
        vtrace::gauge("farm.batch_utilization", utilization);
    }
    drop(batch_span);
    drop(slot_refs);
    // Invariant: the scope above joined every worker and the cursor
    // covered every index, so each slot was filled exactly once.
    let results: Vec<R> = slots.into_iter().map(|s| s.expect("every job completed")).collect();
    Ok((results, wall_secs))
}

/// Encodes `jobs` on `workers` OS threads (work stealing via a shared
/// atomic cursor) and reports aggregate throughput. An empty batch
/// returns an empty report.
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero.
pub fn transcode_batch(jobs: &[TranscodeJob], workers: usize) -> Result<BatchReport, BatchError> {
    let (results, wall_secs) = run_batch(jobs, workers, |job| TranscodeResult {
        name: job.name.clone(),
        output: encode(&job.video, &job.config),
    })?;
    let total_pixels: u64 = jobs.iter().map(|j| j.video.total_pixels()).sum();
    let cpu_secs: f64 = results.iter().map(|r| r.output.stats.encode_seconds).sum();
    Ok(BatchReport { results, wall_secs, aggregate_pps: total_pixels as f64 / wall_secs, cpu_secs })
}

/// What one attempt chain produced: the per-job slot of the report.
/// `pub(crate)` so the journal driver can prefill slots with replayed
/// outcomes and inspect finished chains from its hooks.
pub(crate) struct ChainResult {
    pub(crate) outcome: Result<JobOutcome, JobError>,
    pub(crate) attempts: u32,
    pub(crate) degraded: u32,
    pub(crate) deadline_missed: bool,
}

impl ChainResult {
    /// A slot prefilled from a journal: zero attempts ran in this
    /// process.
    pub(crate) fn replayed(outcome: Result<JobOutcome, JobError>) -> ChainResult {
        ChainResult { outcome, attempts: 0, degraded: 0, deadline_missed: false }
    }

    /// Whether this chain was replayed rather than run (attempt count
    /// zero is only produced by [`ChainResult::replayed`]).
    fn was_replayed(&self) -> bool {
        self.attempts == 0
    }
}

/// Post-job supervisor hook: `(job index, winning chain) -> continue?`.
pub(crate) type AfterJobHook<'a> = &'a (dyn Fn(usize, &ChainResult) -> bool + Sync);

/// Supervisor hooks for [`run_engine_batch`]: the mechanism the journal
/// driver uses to persist results as they land and to simulate scripted
/// process crashes without duplicating the scheduler.
///
/// A hook returning `false` aborts the whole batch
/// ([`BatchError::Aborted`]): in-flight chains finish their current
/// attempt, no new work starts, and no report is produced.
#[derive(Default)]
pub(crate) struct BatchHooks<'a> {
    /// Pre-resolved chains, one per `(job index, result)` pair: the
    /// scheduler seeds these slots and never runs those jobs. Live jobs
    /// keep their original indices, so fault-plan decisions replay
    /// identically whether or not slots were prefilled.
    pub(crate) prefilled: Vec<(usize, ChainResult)>,
    /// Runs before a job's first attempt starts (the journal driver's
    /// pre-encode crash point).
    pub(crate) before_job: Option<&'a (dyn Fn(usize) -> bool + Sync)>,
    /// Runs once per job, for the race-winning chain only, while the
    /// job's slot lock is held (so a hedge copy can never double-fire
    /// it). This is where the journal driver appends and fsyncs the
    /// job's record.
    pub(crate) after_job: Option<AfterJobHook<'a>>,
}

/// Runs one job's full attempt chain: first attempt plus retries under
/// the policy, with fault injection, panic isolation, deadline checks,
/// backoff, and deadline-miss degradation. Pure with respect to
/// scheduling: the chain's decisions depend only on
/// `(job index, attempt)` and the outcome contents, so a hedge copy
/// re-running the chain lands on a byte-identical result.
fn run_attempt_chain(
    engine: &dyn Transcoder,
    job_index: usize,
    job: &EngineJob,
    policy: &ResilienceConfig,
) -> ChainResult {
    let deadline = job.deadline_secs.or(policy.job_deadline_secs);
    let mut degraded = 0u32;
    let mut deadline_missed = false;
    let mut attempt = 0u32;
    loop {
        let faulty =
            FaultyTranscoder { inner: engine, plan: &policy.fault_plan, job: job_index, attempt };
        let request = degraded_request(&job.request, degraded);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if job.stream {
                // A fresh pull stream per attempt: retries re-pull from
                // frame zero, exactly like the in-memory path re-reads
                // the clip.
                let mut source = job.source.open();
                faulty.transcode_stream(source.as_mut(), &request).map(JobOutcome::Streamed)
            } else {
                faulty.transcode(&job.source.materialize(), &request).map(JobOutcome::Full)
            }
        }));
        let failure = match caught {
            Ok(Ok(outcome)) => match deadline {
                Some(limit) if outcome.timings().total() > limit => {
                    deadline_missed = true;
                    vtrace::counter("farm.deadline_misses", 1);
                    Err(JobError::DeadlineExceeded {
                        deadline_secs: limit,
                        encode_secs: outcome.timings().total(),
                    })
                }
                _ => Ok(outcome),
            },
            Ok(Err(e)) => Err(JobError::Transcode(e)),
            Err(payload) => {
                vtrace::counter("farm.panics_caught", 1);
                Err(JobError::Panicked { message: panic_message(payload.as_ref()) })
            }
        };
        match failure {
            Ok(outcome) => {
                return ChainResult {
                    outcome: Ok(outcome),
                    attempts: attempt + 1,
                    degraded,
                    deadline_missed,
                };
            }
            Err(error) => {
                let retryable = match &error {
                    JobError::Transcode(e) => e.is_retryable(),
                    JobError::Panicked { .. } | JobError::DeadlineExceeded { .. } => true,
                    // Never produced by a live chain; replays only come
                    // from prefilled journal slots.
                    JobError::ReplayedFailure { .. } => false,
                };
                if attempt >= policy.max_retries || !retryable {
                    return ChainResult {
                        outcome: Err(error),
                        attempts: attempt + 1,
                        degraded,
                        deadline_missed,
                    };
                }
                if matches!(error, JobError::DeadlineExceeded { .. }) {
                    if policy.degrade_on_deadline_miss {
                        degraded += 1;
                        vtrace::counter("farm.degraded", 1);
                    }
                } else {
                    // Backoff applies to error/panic retries: a deadline
                    // miss already *has* a result, waiting cannot help it.
                    let wait = policy.backoff_secs(attempt + 1);
                    if wait > 0.0 {
                        vtrace::histogram("farm.backoff_wait_us", (wait * 1e6) as u64);
                        std::thread::sleep(std::time::Duration::from_secs_f64(wait));
                    }
                }
                vtrace::counter("farm.retries", 1);
                attempt += 1;
            }
        }
    }
}

/// The panic payload's message, when it carried one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-job shared state for the resilient scheduler.
struct JobSlot {
    result: Option<ChainResult>,
    /// When the primary copy started (hedge-eligibility clock).
    started_at: Option<Instant>,
    /// Whether a hedge copy has been claimed for this job.
    hedge_launched: bool,
}

/// Runs `jobs` through `engine` on `workers` OS threads under the
/// default zero-overhead policy (no retries, no deadline, no hedging, no
/// faults — panic isolation only). Job order is preserved in the results
/// regardless of scheduling; every job gets a slot whether it succeeded
/// or failed.
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero. Per-job failures do
/// not error the batch — see [`EngineBatchReport::require_complete`].
pub fn transcode_batch_with(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
) -> Result<EngineBatchReport, BatchError> {
    transcode_batch_resilient(engine, jobs, workers, &ResilienceConfig::default())
}

/// [`transcode_batch_with`] under an explicit resilience policy: retries
/// with capped exponential backoff, per-job deadlines, straggler
/// hedging, deadline-miss preset degradation, and deterministic fault
/// injection.
///
/// Determinism: every per-job field that does not measure wall time —
/// bitstream bytes, chosen bitrate, success/failure status, attempt
/// count, degradation — is a pure function of `(jobs, policy)`,
/// independent of the worker count, because fault decisions key on
/// `(job index, attempt)` and hedge copies re-run the same attempt
/// sequence. The `hedged` flags and [`BatchSummary::hedges`] are the
/// exception: whether a hedge fires depends on observed wall time.
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero.
pub fn transcode_batch_resilient(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
) -> Result<EngineBatchReport, BatchError> {
    run_engine_batch(engine, jobs, workers, policy, BatchHooks::default())
}

/// The full scheduler behind [`transcode_batch_resilient`], with
/// supervisor hooks: prefilled (replayed) slots, per-job callbacks, and
/// cooperative abort. The journal driver is the only other caller.
pub(crate) fn run_engine_batch(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
    hooks: BatchHooks<'_>,
) -> Result<EngineBatchReport, BatchError> {
    if workers == 0 {
        return Err(BatchError::NoWorkers);
    }
    let spawned = workers.min(jobs.len());
    let mut batch_span = vtrace::span("farm.batch");
    let batch_id = batch_span.id();
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let hedges_launched = AtomicU64::new(0);
    let busy_us = AtomicU64::new(0);
    let abort = AtomicBool::new(false);
    let mut slots: Vec<Mutex<JobSlot>> = jobs
        .iter()
        .map(|_| Mutex::new(JobSlot { result: None, started_at: None, hedge_launched: false }))
        .collect();
    let mut hooks = hooks;
    let mut prefilled_count = 0usize;
    for (i, chain) in hooks.prefilled.drain(..) {
        let slot = slots[i].get_mut().expect("slot lock");
        assert!(slot.result.is_none(), "job {i} prefilled twice");
        slot.result = Some(chain);
        prefilled_count += 1;
    }
    let remaining = AtomicUsize::new(jobs.len() - prefilled_count);
    // Completed-chain wall times, the hedge threshold's sample.
    let chain_secs: Mutex<Vec<f64>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..spawned {
            scope.spawn(|| {
                let mut worker_span = vtrace::span_with_parent("farm.worker", batch_id);
                let mut jobs_done = 0u64;
                loop {
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i < jobs.len() {
                        // Prefilled (replayed) slots are already resolved;
                        // the cursor just walks past them.
                        if slots[i].lock().expect("slot lock").result.is_some() {
                            continue;
                        }
                        if let Some(before) = hooks.before_job {
                            if !before(i) {
                                abort.store(true, Ordering::Release);
                                break;
                            }
                        }
                        if vtrace::enabled() {
                            vtrace::histogram(
                                "farm.queue_wait_us",
                                started.elapsed().as_micros() as u64,
                            );
                            if jobs_done > 0 {
                                vtrace::counter("farm.steals", 1);
                            }
                        }
                        let t0 = Instant::now();
                        slots[i].lock().expect("slot lock").started_at = Some(t0);
                        let chain = run_attempt_chain(engine, i, &jobs[i], policy);
                        busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                        jobs_done += 1;
                        if !finish_chain(i, &slots[i], &remaining, &chain_secs, t0, chain, &hooks) {
                            abort.store(true, Ordering::Release);
                            break;
                        }
                        continue;
                    }
                    // Primary queue drained: hedge stragglers, or exit
                    // when everything is done.
                    if remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    let Some(hedge) = policy.hedge else { break };
                    match claim_hedge(&slots, &chain_secs, &hedge) {
                        Some(h) => {
                            vtrace::counter("farm.hedges", 1);
                            hedges_launched.fetch_add(1, Ordering::Relaxed);
                            let t0 = Instant::now();
                            let chain = run_attempt_chain(engine, h, &jobs[h], policy);
                            busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                            if !finish_chain(
                                h,
                                &slots[h],
                                &remaining,
                                &chain_secs,
                                t0,
                                chain,
                                &hooks,
                            ) {
                                abort.store(true, Ordering::Release);
                                break;
                            }
                        }
                        // No straggler past the threshold yet: let the
                        // in-flight primaries advance before rescanning.
                        None => std::thread::sleep(std::time::Duration::from_micros(200)),
                    }
                }
                if worker_span.id().is_some() {
                    worker_span.record("jobs", jobs_done);
                    vtrace::counter("farm.jobs_completed", jobs_done);
                }
            });
        }
    });

    if abort.load(Ordering::Acquire) {
        return Err(BatchError::Aborted);
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let mut results = Vec::with_capacity(jobs.len());
    let mut summary =
        BatchSummary { hedges: hedges_launched.load(Ordering::Relaxed), ..BatchSummary::default() };
    for (job, slot) in jobs.iter().zip(slots) {
        let slot = slot.into_inner().expect("slot lock");
        // Invariant: the scope joined every worker and `remaining` hit
        // zero only after every slot was filled.
        let chain = slot.result.expect("every job resolved");
        match &chain.outcome {
            Ok(outcome) => {
                summary.completed += 1;
                if let Some(peak) = outcome.peak_resident_frames() {
                    summary.peak_resident_frames = summary.peak_resident_frames.max(peak);
                }
            }
            Err(_) => summary.failed += 1,
        }
        summary.replayed += usize::from(chain.was_replayed());
        summary.retries += u64::from(chain.attempts.saturating_sub(1));
        summary.deadline_misses += u64::from(chain.deadline_missed);
        summary.degraded += u64::from(chain.degraded > 0);
        if matches!(chain.outcome, Err(JobError::Panicked { .. })) {
            summary.panics += 1;
        }
        results.push(EngineJobResult {
            name: job.name.clone(),
            outcome: chain.outcome,
            attempts: chain.attempts,
            hedged: slot.hedge_launched,
            degraded: chain.degraded,
            deadline_missed: chain.deadline_missed,
        });
    }
    if summary.failed > 0 {
        vtrace::counter("farm.jobs_failed", summary.failed as u64);
    }
    if batch_span.id().is_some() {
        batch_span.record("jobs", jobs.len());
        batch_span.record("workers", spawned);
        batch_span.record("failed", summary.failed as u64);
        batch_span.record("retries", summary.retries);
        if summary.peak_resident_frames > 0 {
            vtrace::gauge("farm.peak_resident_frames", summary.peak_resident_frames as f64);
        }
        let utilization =
            busy_us.load(Ordering::Relaxed) as f64 / 1e6 / (spawned.max(1) as f64 * wall_secs);
        vtrace::gauge("farm.batch_utilization", utilization);
    }
    drop(batch_span);
    let total_pixels: u64 = jobs.iter().map(|j| j.source.total_pixels()).sum();
    // Replayed jobs carry the *original* run's timings; only work done in
    // this process counts as CPU-seconds here.
    let cpu_secs: f64 = results
        .iter()
        .filter(|r| r.attempts > 0)
        .filter_map(|r| r.success())
        .map(|o| o.timings().total())
        .sum();
    Ok(EngineBatchReport {
        results,
        summary,
        wall_secs,
        aggregate_pps: total_pixels as f64 / wall_secs,
        cpu_secs,
    })
}

/// Stores a finished chain in its slot unless a racing copy already did
/// (first finisher wins; the loser's byte-identical result is dropped),
/// and publishes the chain time for the hedge threshold. The winner
/// fires the `after_job` hook while the slot lock is held, so a hedge
/// copy can never double-fire it; returns `false` when the hook demands
/// a batch abort.
fn finish_chain(
    job_index: usize,
    slot: &Mutex<JobSlot>,
    remaining: &AtomicUsize,
    chain_secs: &Mutex<Vec<f64>>,
    t0: Instant,
    chain: ChainResult,
    hooks: &BatchHooks<'_>,
) -> bool {
    {
        let mut s = slot.lock().expect("slot lock");
        if s.result.is_some() {
            // The other copy won the race. Both copies ran the identical
            // deterministic attempt sequence, so nothing is lost.
            vtrace::counter("farm.hedge_losses", 1);
            return true;
        }
        if let Some(after) = hooks.after_job {
            if !after(job_index, &chain) {
                return false;
            }
        }
        s.result = Some(chain);
    }
    chain_secs.lock().expect("chain times lock").push(t0.elapsed().as_secs_f64());
    remaining.fetch_sub(1, Ordering::AcqRel);
    true
}

/// Finds and claims one hedge candidate: an unfinished job whose primary
/// has been running longer than the policy threshold and that has no
/// hedge yet. Returns its index, with the claim recorded so no second
/// hedge launches.
fn claim_hedge(
    slots: &[Mutex<JobSlot>],
    chain_secs: &Mutex<Vec<f64>>,
    hedge: &crate::resilience::HedgePolicy,
) -> Option<usize> {
    let threshold = {
        let times = chain_secs.lock().expect("chain times lock");
        if times.len() < hedge.min_samples.max(1) {
            return None;
        }
        let mut sorted = times.clone();
        drop(times);
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite chain times"));
        let q = hedge.quantile.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx] * hedge.factor
    };
    for (i, slot) in slots.iter().enumerate() {
        let mut s = slot.lock().expect("slot lock");
        if s.result.is_none() && !s.hedge_launched {
            if let Some(t0) = s.started_at {
                if t0.elapsed().as_secs_f64() > threshold {
                    s.hedge_launched = true;
                    return Some(i);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RateMode};
    use vcodec::{CodecFamily, Preset, RateControl};
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;
    use vhw::HwVendor;

    fn source(seed: u32) -> Video {
        let res = Resolution::new(64, 48);
        let frames = (0..6)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * (3 + seed) + y * 2 + 5 * t) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(frames, 30.0)
    }

    fn job(name: &str, seed: u32) -> TranscodeJob {
        TranscodeJob {
            name: name.to_string(),
            video: source(seed),
            config: EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Fast,
                RateControl::ConstQuality { crf: 30.0 },
            ),
        }
    }

    #[test]
    fn batch_completes_all_jobs_in_order() {
        let jobs: Vec<TranscodeJob> = (0..7).map(|i| job(&format!("job{i}"), i)).collect();
        let report = transcode_batch(&jobs, 4).expect("batch runs");
        assert_eq!(report.results.len(), 7);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"), "result order preserved");
            assert!(!r.output.bytes.is_empty());
        }
        assert!(report.aggregate_pps > 0.0);
    }

    #[test]
    fn parallel_output_matches_serial_output() {
        // Encoding is deterministic, so thread scheduling must not change
        // a single bit of any stream.
        let jobs: Vec<TranscodeJob> = (0..4).map(|i| job(&format!("j{i}"), i)).collect();
        let parallel = transcode_batch(&jobs, 4).expect("parallel batch");
        let serial = transcode_batch(&jobs, 1).expect("serial batch");
        for (p, s) in parallel.results.iter().zip(&serial.results) {
            assert_eq!(p.output.bytes, s.output.bytes, "{}", p.name);
        }
    }

    #[test]
    fn more_workers_do_not_lose_work() {
        let jobs: Vec<TranscodeJob> = (0..3).map(|i| job(&format!("j{i}"), i)).collect();
        // More workers than jobs is fine.
        let report = transcode_batch(&jobs, 16).expect("batch runs");
        assert_eq!(report.results.len(), 3);
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = transcode_batch(&[], 2).expect("empty batch is fine");
        assert!(report.results.is_empty());
        let engine_report =
            transcode_batch_with(&Engine, &[], 2).expect("empty engine batch is fine");
        assert!(engine_report.results.is_empty());
        assert_eq!(engine_report.summary, BatchSummary::default());
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        assert_eq!(transcode_batch(&[job("j", 0)], 0).unwrap_err(), BatchError::NoWorkers);
        let jobs = [EngineJob::new(
            "j",
            source(0),
            TranscodeRequest::software(
                CodecFamily::Avc,
                Preset::Fast,
                RateMode::ConstQuality { crf: 30.0 },
            ),
        )];
        assert_eq!(transcode_batch_with(&Engine, &jobs, 0).unwrap_err(), BatchError::NoWorkers);
    }

    #[test]
    fn engine_batch_mixes_backends() {
        let jobs = vec![
            EngineJob::new(
                "sw",
                source(0),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            ),
            EngineJob::new(
                "hw",
                source(1),
                TranscodeRequest::hardware(HwVendor::Nvenc, RateMode::Bitrate { bps: 400_000 }),
            ),
        ];
        let report = transcode_batch_with(&Engine, &jobs, 2).expect("batch runs");
        assert_eq!(report.results[0].name, "sw");
        assert_eq!(report.results[1].name, "hw");
        // The hardware job reports modelled stage timings.
        let hw = report.results[1].success().expect("hw job valid");
        assert!(hw.timings().transfer > 0.0);
        assert!(report.speedup() > 0.0);
        assert_eq!(report.summary.completed, 2);
        assert_eq!(report.summary.failed, 0);
    }

    #[test]
    fn engine_batch_surfaces_job_errors_per_slot() {
        let jobs = vec![
            EngineJob::new(
                "bad",
                source(0),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::Bitrate { bps: 0 },
                ),
            ),
            EngineJob::new(
                "good",
                source(1),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            ),
        ];
        let report = transcode_batch_with(&Engine, &jobs, 2).expect("batch still runs");
        assert!(report.results[0].error().is_some(), "bad job failed in its slot");
        assert!(report.results[1].success().is_some(), "good job unaffected");
        assert_eq!(report.summary.failed, 1);
        assert_eq!(report.summary.completed, 1);
        // The all-or-nothing view surfaces the first failure.
        let err = report.require_complete().unwrap_err();
        assert!(matches!(err, BatchError::JobFailed { ref job, .. } if job == "bad"));
    }

    #[test]
    fn structural_errors_do_not_burn_retries() {
        // A zero-bitrate request fails identically on every attempt; the
        // chain must fail fast instead of retrying it.
        let jobs = vec![EngineJob::new(
            "bad",
            source(0),
            TranscodeRequest::software(
                CodecFamily::Avc,
                Preset::Fast,
                RateMode::Bitrate { bps: 0 },
            ),
        )];
        let policy = ResilienceConfig::default().with_max_retries(5);
        let report = transcode_batch_resilient(&Engine, &jobs, 1, &policy).expect("batch runs");
        assert_eq!(report.results[0].attempts, 1, "non-retryable error fails fast");
        assert_eq!(report.summary.retries, 0);
    }
}
