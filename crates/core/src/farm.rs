//! Parallel batch transcoding with real worker threads.
//!
//! The paper's reference machine runs ffmpeg on 4 cores / 8 threads;
//! production fleets drain upload queues with many workers per box. This
//! module is the workspace's real (not simulated — see [`crate::fleet`]
//! for the queueing model) parallel driver: a work-stealing batch encoder
//! over OS threads, used to measure aggregate box throughput and to
//! transcode the suite in parallel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use vcodec::{encode, EncodeOutput, EncoderConfig};
use vframe::Video;

/// One transcode job: a source clip and the configuration to encode it
/// with.
#[derive(Clone, Debug)]
pub struct TranscodeJob {
    /// Job label (e.g. the suite video name).
    pub name: String,
    /// Source clip.
    pub video: Video,
    /// Encoder configuration.
    pub config: EncoderConfig,
}

/// One finished job.
#[derive(Debug)]
pub struct TranscodeResult {
    /// Job label.
    pub name: String,
    /// Encode output (bitstream, stats, reconstruction).
    pub output: EncodeOutput,
}

/// Aggregate outcome of a parallel batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in the order of the input jobs.
    pub results: Vec<TranscodeResult>,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Aggregate throughput: total source pixels / wall seconds.
    pub aggregate_pps: f64,
    /// Sum of per-job encode seconds (CPU-seconds of useful work).
    pub cpu_secs: f64,
}

impl BatchReport {
    /// Parallel speedup achieved: CPU-seconds of work divided by
    /// wall-clock seconds (≈ effective busy workers).
    pub fn speedup(&self) -> f64 {
        self.cpu_secs / self.wall_secs.max(1e-9)
    }
}

/// Encodes `jobs` on `workers` OS threads (work stealing via a shared
/// atomic cursor) and reports aggregate throughput.
///
/// # Panics
///
/// Panics if `workers` is zero or `jobs` is empty, or if a worker thread
/// panics (the panic is propagated).
pub fn transcode_batch(jobs: &[TranscodeJob], workers: usize) -> BatchReport {
    assert!(workers > 0, "need at least one worker");
    assert!(!jobs.is_empty(), "batch is empty");
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<TranscodeResult>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<TranscodeResult>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let output = encode(&job.video, &job.config);
                let result = TranscodeResult { name: job.name.clone(), output };
                **slot_refs[i].lock().expect("slot lock") = Some(result);
            });
        }
    });

    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    drop(slot_refs);
    let results: Vec<TranscodeResult> =
        slots.into_iter().map(|s| s.expect("every job completed")).collect();
    let total_pixels: u64 = jobs.iter().map(|j| j.video.total_pixels()).sum();
    let cpu_secs: f64 = results.iter().map(|r| r.output.stats.encode_seconds).sum();
    BatchReport {
        results,
        wall_secs,
        aggregate_pps: total_pixels as f64 / wall_secs,
        cpu_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcodec::{CodecFamily, Preset, RateControl};
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;

    fn job(name: &str, seed: u32) -> TranscodeJob {
        let res = Resolution::new(64, 48);
        let frames = (0..6)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * (3 + seed) + y * 2 + 5 * t) % 256) as u8, 128, 128)
                })
            })
            .collect();
        TranscodeJob {
            name: name.to_string(),
            video: Video::new(frames, 30.0),
            config: EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Fast,
                RateControl::ConstQuality { crf: 30.0 },
            ),
        }
    }

    #[test]
    fn batch_completes_all_jobs_in_order() {
        let jobs: Vec<TranscodeJob> = (0..7).map(|i| job(&format!("job{i}"), i)).collect();
        let report = transcode_batch(&jobs, 4);
        assert_eq!(report.results.len(), 7);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"), "result order preserved");
            assert!(!r.output.bytes.is_empty());
        }
        assert!(report.aggregate_pps > 0.0);
    }

    #[test]
    fn parallel_output_matches_serial_output() {
        // Encoding is deterministic, so thread scheduling must not change
        // a single bit of any stream.
        let jobs: Vec<TranscodeJob> = (0..4).map(|i| job(&format!("j{i}"), i)).collect();
        let parallel = transcode_batch(&jobs, 4);
        let serial = transcode_batch(&jobs, 1);
        for (p, s) in parallel.results.iter().zip(&serial.results) {
            assert_eq!(p.output.bytes, s.output.bytes, "{}", p.name);
        }
    }

    #[test]
    fn more_workers_do_not_lose_work() {
        let jobs: Vec<TranscodeJob> = (0..3).map(|i| job(&format!("j{i}"), i)).collect();
        // More workers than jobs is fine.
        let report = transcode_batch(&jobs, 16);
        assert_eq!(report.results.len(), 3);
        assert!(report.speedup() > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch is empty")]
    fn empty_batch_rejected() {
        let _ = transcode_batch(&[], 2);
    }
}
