//! Parallel batch transcoding with real worker threads — now resilient.
//!
//! The paper's reference machine runs ffmpeg on 4 cores / 8 threads;
//! production fleets drain upload queues with many workers per box. This
//! module is the workspace's real (not simulated — see [`crate::fleet`]
//! for the queueing model) parallel driver: a work-stealing batch encoder
//! over OS threads, used to measure aggregate box throughput and to
//! transcode the suite in parallel.
//!
//! Every entry point here runs on the executor core in [`crate::exec`]
//! (the in-process [`crate::exec::local`] backend — one scheduler loop,
//! shared with the journal driver and the multi-process dispatcher):
//!
//! * [`transcode_batch_with`] drives [`EngineJob`]s through any
//!   [`Transcoder`] — software and hardware requests mix freely in one
//!   batch (this is how Tables 3/4/5 fan out). It runs under the default
//!   (zero-overhead) [`ResilienceConfig`]; [`transcode_batch_resilient`]
//!   takes an explicit policy: retries with capped exponential backoff,
//!   per-job deadlines, straggler hedging, preset degradation, and
//!   deterministic fault injection.
//! * [`transcode_batch`] is the raw-software convenience wrapper: plain
//!   [`vcodec::EncoderConfig`] jobs, lifted into engine requests via
//!   [`TranscodeRequest::from_config`] (which reproduces every knob
//!   bit-for-bit) and run through the same executor.
//!
//! The engine path never dies wholesale: each attempt runs inside
//! `catch_unwind`, so one poisoned job reports
//! [`JobError::Panicked`] in its slot of the [`EngineBatchReport`]
//! instead of taking the batch down, and every other job's result is
//! byte-identical to an unfaulted run.

use crate::engine::{
    Engine, StreamOutcome, TranscodeError, TranscodeOutcome, TranscodeRequest, Transcoder,
};
use crate::exec::local::{run_engine_batch, BatchHooks};
use crate::measure::Measurement;
use crate::resilience::ResilienceConfig;
use vcodec::{EncodeOutput, EncodeStats, EncoderConfig};
use vframe::source::{FrameSource, VideoSource};
use vframe::Video;
use vhw::StageSeconds;
use vsynth::SourceSpec;

/// One raw-software transcode job: a source clip and the configuration to
/// encode it with.
#[derive(Clone, Debug)]
pub struct TranscodeJob {
    /// Job label (e.g. the suite video name).
    pub name: String,
    /// Source clip.
    pub video: Video,
    /// Encoder configuration.
    pub config: EncoderConfig,
}

/// One finished raw-software job.
#[derive(Debug)]
pub struct TranscodeResult {
    /// Job label.
    pub name: String,
    /// Encode output (bitstream, stats, reconstruction).
    pub output: EncodeOutput,
}

/// Aggregate outcome of a raw-software batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in the order of the input jobs.
    pub results: Vec<TranscodeResult>,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Aggregate throughput: total source pixels / wall seconds.
    pub aggregate_pps: f64,
    /// Sum of per-job encode seconds (CPU-seconds of useful work).
    pub cpu_secs: f64,
}

impl BatchReport {
    /// Parallel speedup achieved: CPU-seconds of work divided by
    /// wall-clock seconds (≈ effective busy workers).
    pub fn speedup(&self) -> f64 {
        speedup_of(self.cpu_secs, self.wall_secs)
    }
}

/// The one speedup definition both report types share: CPU-seconds of
/// useful work over wall-clock seconds (≈ effective busy workers).
fn speedup_of(cpu_secs: f64, wall_secs: f64) -> f64 {
    cpu_secs / wall_secs.max(1e-9)
}

/// Where an engine job's frames come from.
///
/// In-memory jobs carry the whole clip (the pre-streaming contract);
/// synthetic jobs carry only the [`SourceSpec`] and render frames on
/// demand, so a streamed batch never materializes its inputs at all.
#[derive(Clone, Debug)]
pub enum JobSource {
    /// A fully materialized clip.
    InMemory(Video),
    /// A synthetic source rendered frame by frame as the encoder pulls.
    Synth(SourceSpec),
}

impl JobSource {
    /// Total source pixels (frames × pixels per frame).
    pub fn total_pixels(&self) -> u64 {
        match self {
            JobSource::InMemory(v) => v.total_pixels(),
            JobSource::Synth(spec) => spec.resolution.pixels() * spec.frames as u64,
        }
    }

    /// Frame count.
    pub fn frames(&self) -> usize {
        match self {
            JobSource::InMemory(v) => v.len(),
            JobSource::Synth(spec) => spec.frames,
        }
    }

    /// Opens a fresh pull stream over the source.
    pub fn open(&self) -> Box<dyn FrameSource + '_> {
        match self {
            JobSource::InMemory(v) => Box::new(VideoSource::new(v)),
            JobSource::Synth(spec) => Box::new(spec.source()),
        }
    }

    /// The materialized clip: borrowed for in-memory sources, rendered
    /// for synthetic ones.
    pub fn materialize(&self) -> std::borrow::Cow<'_, Video> {
        match self {
            JobSource::InMemory(v) => std::borrow::Cow::Borrowed(v),
            JobSource::Synth(spec) => std::borrow::Cow::Owned(spec.generate()),
        }
    }
}

/// One engine transcode job: a frame source and the request to run it
/// with. The backend lives inside the request, so one batch can span
/// software and hardware rows.
#[derive(Clone, Debug)]
pub struct EngineJob {
    /// Job label (e.g. the suite video name).
    pub name: String,
    /// Frame source.
    pub source: JobSource,
    /// Transcode request.
    pub request: TranscodeRequest,
    /// Run through [`Transcoder::transcode_stream`] (bounded residency,
    /// no reconstruction) instead of the in-memory path.
    pub stream: bool,
    /// Per-job deadline on encode seconds, overriding the batch-wide
    /// [`ResilienceConfig::job_deadline_secs`]. The Live scenario derives
    /// this from the clip's real-time pixel rate
    /// ([`crate::scenario::live_deadline_secs`]).
    pub deadline_secs: Option<f64>,
}

impl EngineJob {
    /// An in-memory job with no per-job deadline.
    pub fn new(name: impl Into<String>, video: Video, request: TranscodeRequest) -> EngineJob {
        EngineJob {
            name: name.into(),
            source: JobSource::InMemory(video),
            request,
            stream: false,
            deadline_secs: None,
        }
    }

    /// A streaming job: frames are pulled from `source` per attempt and
    /// residency stays bounded on backends with a streaming path.
    pub fn streaming(
        name: impl Into<String>,
        source: JobSource,
        request: TranscodeRequest,
    ) -> EngineJob {
        EngineJob { name: name.into(), source, request, stream: true, deadline_secs: None }
    }

    /// Attaches a per-job deadline on encode seconds.
    pub fn with_deadline(mut self, secs: f64) -> EngineJob {
        self.deadline_secs = Some(secs);
        self
    }
}

/// Why one engine job ultimately failed (after exhausting its retry
/// budget).
#[derive(Clone, PartialEq, Debug)]
pub enum JobError {
    /// Every attempt returned a typed transcode error; this is the last
    /// one.
    Transcode(TranscodeError),
    /// The final attempt panicked; the panic was caught and isolated to
    /// this job.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The final attempt produced a valid outcome, but its encode time
    /// exceeded the job's deadline.
    DeadlineExceeded {
        /// The deadline that applied, in seconds.
        deadline_secs: f64,
        /// The encode seconds the final attempt actually took.
        encode_secs: f64,
    },
    /// The job failed in a *previous* journaled run and the failure was
    /// replayed from the journal instead of re-run (`--resume` replays
    /// outcomes, successful or not; rerunning a failed job would change
    /// the batch's deterministic fault replay).
    ReplayedFailure {
        /// The original failure's message, as journaled.
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Transcode(e) => e.fmt(f),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::DeadlineExceeded { deadline_secs, encode_secs } => {
                write!(f, "deadline {deadline_secs:.3}s exceeded: encode took {encode_secs:.3}s")
            }
            JobError::ReplayedFailure { message } => {
                write!(f, "failed in a previous journaled run: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Transcode(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a batch could not run at all. Per-job failures do *not* land
/// here — they live in each job's slot of the [`EngineBatchReport`] —
/// except through [`EngineBatchReport::require_complete`], which converts
/// the first failed job (in job order) into [`BatchError::JobFailed`]
/// for callers that need every job to succeed.
#[derive(Clone, PartialEq, Debug)]
pub enum BatchError {
    /// The batch was asked to run on zero workers.
    NoWorkers,
    /// A job failed (first in job order), surfaced by
    /// [`EngineBatchReport::require_complete`].
    JobFailed {
        /// The failing job's label.
        job: String,
        /// Why it failed.
        error: JobError,
    },
    /// A supervisor hook stopped the batch mid-run. Only journaled
    /// execution installs such hooks (scripted [`vfault::CrashPoint`]
    /// aborts); the journal driver maps this to its own typed crash
    /// error, so plain batch callers never observe it.
    Aborted,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::NoWorkers => write!(f, "batch needs at least one worker"),
            BatchError::JobFailed { job, error } => write!(f, "job '{job}' failed: {error}"),
            BatchError::Aborted => write!(f, "batch aborted by a supervisor hook"),
        }
    }
}

impl std::error::Error for BatchError {}

/// A completed job loaded back from a durability journal
/// (`crate::journal`) instead of re-encoded: the journaled bitstream
/// (already CRC-verified against its recorded checksum) plus the
/// measurement, timings, and partial stats the original run recorded.
///
/// The journal does not persist reconstructions or kernel counters, so
/// `stats.kernels` is zeroed — a replayed outcome is for output
/// identity and reporting, not for microarchitectural analysis.
#[derive(Clone, Debug)]
pub struct ReplayedOutcome {
    /// The journaled bitstream, byte-identical to the original encode.
    pub bytes: Vec<u8>,
    /// `vpack::crc32` of `bytes`, as journaled and re-verified on load.
    pub crc32: u32,
    /// The original run's measurement.
    pub measurement: Measurement,
    /// The original run's stage timings.
    pub timings: StageSeconds,
    /// The bitrate the rate policy operated at, if any.
    pub chosen_bps: Option<u64>,
    /// Partial stats (encode seconds, sizes, frame/superblock counts);
    /// kernel counters are zeroed.
    pub stats: EncodeStats,
}

/// A completed job's payload: the in-memory outcome (with
/// reconstruction) or the streaming outcome (bounded residency, no
/// reconstruction), depending on [`EngineJob::stream`] — or a
/// journal-replayed outcome when the batch resumed. The accessors
/// cover every field shared by all shapes.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// From [`Transcoder::transcode`]: bitstream + reconstruction.
    Full(TranscodeOutcome),
    /// From [`Transcoder::transcode_stream`]: bitstream only, plus the
    /// peak frame residency the encode reached.
    Streamed(StreamOutcome),
    /// Loaded from a durability journal on `--resume`; never re-encoded.
    Replayed(ReplayedOutcome),
}

impl JobOutcome {
    /// The transcode's measurement.
    pub fn measurement(&self) -> &Measurement {
        match self {
            JobOutcome::Full(o) => &o.measurement,
            JobOutcome::Streamed(o) => &o.measurement,
            JobOutcome::Replayed(o) => &o.measurement,
        }
    }

    /// Stage timings.
    pub fn timings(&self) -> &StageSeconds {
        match self {
            JobOutcome::Full(o) => &o.timings,
            JobOutcome::Streamed(o) => &o.timings,
            JobOutcome::Replayed(o) => &o.timings,
        }
    }

    /// The produced bitstream.
    pub fn bytes(&self) -> &[u8] {
        match self {
            JobOutcome::Full(o) => &o.output.bytes,
            JobOutcome::Streamed(o) => &o.bytes,
            JobOutcome::Replayed(o) => &o.bytes,
        }
    }

    /// Work and timing statistics.
    pub fn stats(&self) -> &EncodeStats {
        match self {
            JobOutcome::Full(o) => &o.output.stats,
            JobOutcome::Streamed(o) => &o.stats,
            JobOutcome::Replayed(o) => &o.stats,
        }
    }

    /// The bitrate the rate policy operated at, if any.
    pub fn chosen_bps(&self) -> Option<u64> {
        match self {
            JobOutcome::Full(o) => o.chosen_bps,
            JobOutcome::Streamed(o) => o.chosen_bps,
            JobOutcome::Replayed(o) => o.chosen_bps,
        }
    }

    /// Peak resident frames, reported by streamed jobs only.
    pub fn peak_resident_frames(&self) -> Option<usize> {
        match self {
            JobOutcome::Streamed(o) => Some(o.peak_resident_frames),
            _ => None,
        }
    }

    /// The in-memory outcome, if this job ran the in-memory path.
    pub fn as_full(&self) -> Option<&TranscodeOutcome> {
        match self {
            JobOutcome::Full(o) => Some(o),
            _ => None,
        }
    }

    /// Consumes into the in-memory outcome, if this job ran that path.
    pub fn into_full(self) -> Option<TranscodeOutcome> {
        match self {
            JobOutcome::Full(o) => Some(o),
            _ => None,
        }
    }

    /// The streaming outcome, if this job streamed.
    pub fn as_streamed(&self) -> Option<&StreamOutcome> {
        match self {
            JobOutcome::Streamed(o) => Some(o),
            _ => None,
        }
    }

    /// The journal-replayed outcome, if this job was resumed from a
    /// journal rather than encoded in this run.
    pub fn as_replayed(&self) -> Option<&ReplayedOutcome> {
        match self {
            JobOutcome::Replayed(o) => Some(o),
            _ => None,
        }
    }
}

/// One finished engine job: its outcome (or why it failed) plus the
/// resilience history that produced it.
#[derive(Debug)]
pub struct EngineJobResult {
    /// Job label.
    pub name: String,
    /// The transcode's outcome, or why the job failed after its retry
    /// budget.
    pub outcome: Result<JobOutcome, JobError>,
    /// Attempts run (1 = first try succeeded). Hedge copies do not
    /// count: they re-run the same attempt sequence.
    pub attempts: u32,
    /// Whether a hedge copy was launched for this job.
    pub hedged: bool,
    /// Effort notches shed by deadline-miss degradation (0 = the
    /// requested preset ran).
    pub degraded: u32,
    /// Whether any attempt missed its deadline.
    pub deadline_missed: bool,
}

impl EngineJobResult {
    /// The successful outcome, if the job completed.
    pub fn success(&self) -> Option<&JobOutcome> {
        self.outcome.as_ref().ok()
    }

    /// The failure, if the job did not complete.
    pub fn error(&self) -> Option<&JobError> {
        self.outcome.as_ref().err()
    }
}

/// Aggregate resilience counters for one batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchSummary {
    /// Jobs that produced an outcome.
    pub completed: usize,
    /// Jobs that failed after exhausting their retry budget.
    pub failed: usize,
    /// Retry attempts run across the batch (excluding first attempts).
    pub retries: u64,
    /// Hedge copies launched.
    pub hedges: u64,
    /// Attempts whose encode time exceeded their deadline.
    pub deadline_misses: u64,
    /// Jobs that ran with a degraded (downshifted) preset.
    pub degraded: u64,
    /// Panics caught and isolated.
    pub panics: u64,
    /// Jobs whose outcome (success or failure) was replayed from a
    /// durability journal instead of re-run.
    pub replayed: usize,
    /// The largest peak frame residency any *streamed* job reported
    /// (0 when no job streamed): the batch's bounded-memory high-water
    /// mark.
    pub peak_resident_frames: usize,
}

/// Aggregate outcome of an engine batch: per-job results (every job has
/// a slot, failed or not) plus the resilience summary.
#[derive(Debug)]
pub struct EngineBatchReport {
    /// Per-job results, in the order of the input jobs.
    pub results: Vec<EngineJobResult>,
    /// Resilience counters.
    pub summary: BatchSummary,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Aggregate throughput: total source pixels / wall seconds.
    pub aggregate_pps: f64,
    /// Sum of per-job modelled/measured transcode seconds over the jobs
    /// that completed.
    pub cpu_secs: f64,
}

impl EngineBatchReport {
    /// Parallel speedup achieved: transcode-seconds of work divided by
    /// wall-clock seconds (≈ effective busy workers).
    pub fn speedup(&self) -> f64 {
        speedup_of(self.cpu_secs, self.wall_secs)
    }

    /// The first failed job in job order, if any.
    pub fn first_failure(&self) -> Option<(&str, &JobError)> {
        self.results.iter().find_map(|r| r.error().map(|e| (r.name.as_str(), e)))
    }

    /// Demands an all-success batch: returns the report unchanged when
    /// every job completed, or [`BatchError::JobFailed`] for the first
    /// failure in job order (the pre-resilience all-or-nothing contract,
    /// for callers like the ladder whose output is meaningless with
    /// holes in it).
    pub fn require_complete(self) -> Result<EngineBatchReport, BatchError> {
        match self.first_failure() {
            None => Ok(self),
            Some((job, error)) => {
                Err(BatchError::JobFailed { job: job.to_string(), error: error.clone() })
            }
        }
    }
}

/// Encodes raw-software `jobs` on `workers` OS threads and reports
/// aggregate throughput. Each [`vcodec::EncoderConfig`] is lifted into
/// an engine request with [`TranscodeRequest::from_config`] — which
/// reproduces every knob, so the bitstreams are byte-identical to a
/// direct [`vcodec::encode`] call — and the batch runs on the same
/// executor as [`transcode_batch_with`]. An empty batch returns an
/// empty report.
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero, and
/// [`BatchError::JobFailed`] for the first failing job: this wrapper
/// keeps the all-or-nothing contract (a panicking encode surfaces as
/// [`JobError::Panicked`] instead of unwinding through the caller).
pub fn transcode_batch(jobs: &[TranscodeJob], workers: usize) -> Result<BatchReport, BatchError> {
    let engine_jobs: Vec<EngineJob> = jobs
        .iter()
        .map(|j| {
            EngineJob::new(
                j.name.clone(),
                j.video.clone(),
                TranscodeRequest::from_config(&j.config),
            )
        })
        .collect();
    let report = transcode_batch_with(&Engine, &engine_jobs, workers)?.require_complete()?;
    let wall_secs = report.wall_secs;
    let aggregate_pps = report.aggregate_pps;
    let results: Vec<TranscodeResult> = report
        .results
        .into_iter()
        .map(|r| TranscodeResult {
            name: r.name,
            output: r
                .outcome
                .ok()
                .and_then(JobOutcome::into_full)
                .expect("complete in-memory software batch")
                .output,
        })
        .collect();
    let cpu_secs: f64 = results.iter().map(|r| r.output.stats.encode_seconds).sum();
    Ok(BatchReport { results, wall_secs, aggregate_pps, cpu_secs })
}

/// Runs `jobs` through `engine` on `workers` OS threads under the
/// default zero-overhead policy (no retries, no deadline, no hedging, no
/// faults — panic isolation only). Job order is preserved in the results
/// regardless of scheduling; every job gets a slot whether it succeeded
/// or failed.
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero. Per-job failures do
/// not error the batch — see [`EngineBatchReport::require_complete`].
pub fn transcode_batch_with(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
) -> Result<EngineBatchReport, BatchError> {
    transcode_batch_resilient(engine, jobs, workers, &ResilienceConfig::default())
}

/// [`transcode_batch_resilient`] under a fleet placement: jobs are
/// claimed in the plan's order (grouped by assigned instance class),
/// results return in job order. Equivalent to running the local backend
/// through [`crate::exec::PlacedQueue`] — the in-process queue hands
/// out sequential claim slots, so dispatching the placement-permuted
/// job list *is* the placed claim order — and byte-identical to the
/// unplaced batch per job, since encodes are pure functions of the job.
/// Emits one `fleet.placements` count per placed job.
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero.
///
/// # Panics
///
/// Panics if the placement does not span exactly `jobs.len()` jobs.
pub fn transcode_batch_placed(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
    placement: &crate::exec::PlacementPlan,
) -> Result<EngineBatchReport, BatchError> {
    assert_eq!(placement.len(), jobs.len(), "placement must cover the batch");
    let placed_jobs = placement.apply(jobs);
    let report = transcode_batch_resilient(engine, &placed_jobs, workers, policy)?;
    vtrace::counter("fleet.placements", jobs.len() as u64);
    // Results came back in claim order; restore job order so callers
    // (and fingerprints over results) never see the permutation.
    let mut slots: Vec<Option<EngineJobResult>> = (0..jobs.len()).map(|_| None).collect();
    for (slot, result) in report.results.into_iter().enumerate() {
        slots[placement.order()[slot]] = Some(result);
    }
    Ok(EngineBatchReport {
        results: slots.into_iter().map(|r| r.expect("placement is a permutation")).collect(),
        summary: report.summary,
        wall_secs: report.wall_secs,
        aggregate_pps: report.aggregate_pps,
        cpu_secs: report.cpu_secs,
    })
}

/// [`transcode_batch_with`] under an explicit resilience policy: retries
/// with capped exponential backoff, per-job deadlines, straggler
/// hedging, deadline-miss preset degradation, and deterministic fault
/// injection.
///
/// Determinism: every per-job field that does not measure wall time —
/// bitstream bytes, chosen bitrate, success/failure status, attempt
/// count, degradation — is a pure function of `(jobs, policy)`,
/// independent of the worker count, because fault decisions key on
/// `(job index, attempt)` and hedge copies re-run the same attempt
/// sequence. The `hedged` flags and [`BatchSummary::hedges`] are the
/// exception: whether a hedge fires depends on observed wall time.
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero.
pub fn transcode_batch_resilient(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
    policy: &ResilienceConfig,
) -> Result<EngineBatchReport, BatchError> {
    run_engine_batch(engine, jobs, workers, policy, BatchHooks::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RateMode};
    use vcodec::{CodecFamily, Preset, RateControl};
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;
    use vhw::HwVendor;

    fn source(seed: u32) -> Video {
        let res = Resolution::new(64, 48);
        let frames = (0..6)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * (3 + seed) + y * 2 + 5 * t) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(frames, 30.0)
    }

    fn job(name: &str, seed: u32) -> TranscodeJob {
        TranscodeJob {
            name: name.to_string(),
            video: source(seed),
            config: EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Fast,
                RateControl::ConstQuality { crf: 30.0 },
            ),
        }
    }

    #[test]
    fn batch_completes_all_jobs_in_order() {
        let jobs: Vec<TranscodeJob> = (0..7).map(|i| job(&format!("job{i}"), i)).collect();
        let report = transcode_batch(&jobs, 4).expect("batch runs");
        assert_eq!(report.results.len(), 7);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"), "result order preserved");
            assert!(!r.output.bytes.is_empty());
        }
        assert!(report.aggregate_pps > 0.0);
    }

    #[test]
    fn parallel_output_matches_serial_output() {
        // Encoding is deterministic, so thread scheduling must not change
        // a single bit of any stream.
        let jobs: Vec<TranscodeJob> = (0..4).map(|i| job(&format!("j{i}"), i)).collect();
        let parallel = transcode_batch(&jobs, 4).expect("parallel batch");
        let serial = transcode_batch(&jobs, 1).expect("serial batch");
        for (p, s) in parallel.results.iter().zip(&serial.results) {
            assert_eq!(p.output.bytes, s.output.bytes, "{}", p.name);
        }
    }

    #[test]
    fn more_workers_do_not_lose_work() {
        let jobs: Vec<TranscodeJob> = (0..3).map(|i| job(&format!("j{i}"), i)).collect();
        // More workers than jobs is fine.
        let report = transcode_batch(&jobs, 16).expect("batch runs");
        assert_eq!(report.results.len(), 3);
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = transcode_batch(&[], 2).expect("empty batch is fine");
        assert!(report.results.is_empty());
        let engine_report =
            transcode_batch_with(&Engine, &[], 2).expect("empty engine batch is fine");
        assert!(engine_report.results.is_empty());
        assert_eq!(engine_report.summary, BatchSummary::default());
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        assert_eq!(transcode_batch(&[job("j", 0)], 0).unwrap_err(), BatchError::NoWorkers);
        let jobs = [EngineJob::new(
            "j",
            source(0),
            TranscodeRequest::software(
                CodecFamily::Avc,
                Preset::Fast,
                RateMode::ConstQuality { crf: 30.0 },
            ),
        )];
        assert_eq!(transcode_batch_with(&Engine, &jobs, 0).unwrap_err(), BatchError::NoWorkers);
    }

    #[test]
    fn engine_batch_mixes_backends() {
        let jobs = vec![
            EngineJob::new(
                "sw",
                source(0),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            ),
            EngineJob::new(
                "hw",
                source(1),
                TranscodeRequest::hardware(HwVendor::Nvenc, RateMode::Bitrate { bps: 400_000 }),
            ),
        ];
        let report = transcode_batch_with(&Engine, &jobs, 2).expect("batch runs");
        assert_eq!(report.results[0].name, "sw");
        assert_eq!(report.results[1].name, "hw");
        // The hardware job reports modelled stage timings.
        let hw = report.results[1].success().expect("hw job valid");
        assert!(hw.timings().transfer > 0.0);
        assert!(report.speedup() > 0.0);
        assert_eq!(report.summary.completed, 2);
        assert_eq!(report.summary.failed, 0);
    }

    #[test]
    fn engine_batch_surfaces_job_errors_per_slot() {
        let jobs = vec![
            EngineJob::new(
                "bad",
                source(0),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::Bitrate { bps: 0 },
                ),
            ),
            EngineJob::new(
                "good",
                source(1),
                TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            ),
        ];
        let report = transcode_batch_with(&Engine, &jobs, 2).expect("batch still runs");
        assert!(report.results[0].error().is_some(), "bad job failed in its slot");
        assert!(report.results[1].success().is_some(), "good job unaffected");
        assert_eq!(report.summary.failed, 1);
        assert_eq!(report.summary.completed, 1);
        // The all-or-nothing view surfaces the first failure.
        let err = report.require_complete().unwrap_err();
        assert!(matches!(err, BatchError::JobFailed { ref job, .. } if job == "bad"));
    }

    #[test]
    fn structural_errors_do_not_burn_retries() {
        // A zero-bitrate request fails identically on every attempt; the
        // chain must fail fast instead of retrying it.
        let jobs = vec![EngineJob::new(
            "bad",
            source(0),
            TranscodeRequest::software(
                CodecFamily::Avc,
                Preset::Fast,
                RateMode::Bitrate { bps: 0 },
            ),
        )];
        let policy = ResilienceConfig::default().with_max_retries(5);
        let report = transcode_batch_resilient(&Engine, &jobs, 1, &policy).expect("batch runs");
        assert_eq!(report.results[0].attempts, 1, "non-retryable error fails fast");
        assert_eq!(report.summary.retries, 0);
    }
}
