//! Parallel batch transcoding with real worker threads.
//!
//! The paper's reference machine runs ffmpeg on 4 cores / 8 threads;
//! production fleets drain upload queues with many workers per box. This
//! module is the workspace's real (not simulated — see [`crate::fleet`]
//! for the queueing model) parallel driver: a work-stealing batch encoder
//! over OS threads, used to measure aggregate box throughput and to
//! transcode the suite in parallel.
//!
//! Two entry points share one scheduler:
//!
//! * [`transcode_batch_with`] drives [`EngineJob`]s through any
//!   [`Transcoder`] — software and hardware requests mix freely in one
//!   batch (this is how Tables 3/4/5 fan out).
//! * [`transcode_batch`] is the raw-software path: plain
//!   [`vcodec::EncoderConfig`] jobs, kept for callers that sit below the
//!   engine (and as the equivalence baseline for it).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::engine::{TranscodeError, TranscodeOutcome, TranscodeRequest, Transcoder};
use vcodec::{encode, EncodeOutput, EncoderConfig};
use vframe::Video;

/// One raw-software transcode job: a source clip and the configuration to
/// encode it with.
#[derive(Clone, Debug)]
pub struct TranscodeJob {
    /// Job label (e.g. the suite video name).
    pub name: String,
    /// Source clip.
    pub video: Video,
    /// Encoder configuration.
    pub config: EncoderConfig,
}

/// One finished raw-software job.
#[derive(Debug)]
pub struct TranscodeResult {
    /// Job label.
    pub name: String,
    /// Encode output (bitstream, stats, reconstruction).
    pub output: EncodeOutput,
}

/// Aggregate outcome of a raw-software batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in the order of the input jobs.
    pub results: Vec<TranscodeResult>,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Aggregate throughput: total source pixels / wall seconds.
    pub aggregate_pps: f64,
    /// Sum of per-job encode seconds (CPU-seconds of useful work).
    pub cpu_secs: f64,
}

impl BatchReport {
    /// Parallel speedup achieved: CPU-seconds of work divided by
    /// wall-clock seconds (≈ effective busy workers).
    pub fn speedup(&self) -> f64 {
        self.cpu_secs / self.wall_secs.max(1e-9)
    }
}

/// One engine transcode job: a source clip and the request to run it
/// with. The backend lives inside the request, so one batch can span
/// software and hardware rows.
#[derive(Clone, Debug)]
pub struct EngineJob {
    /// Job label (e.g. the suite video name).
    pub name: String,
    /// Source clip.
    pub video: Video,
    /// Transcode request.
    pub request: TranscodeRequest,
}

/// One finished engine job.
#[derive(Debug)]
pub struct EngineJobResult {
    /// Job label.
    pub name: String,
    /// The transcode's outcome (bitstream, measurement, timings).
    pub outcome: TranscodeOutcome,
}

/// Aggregate outcome of an engine batch.
#[derive(Debug)]
pub struct EngineBatchReport {
    /// Per-job results, in the order of the input jobs.
    pub results: Vec<EngineJobResult>,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Aggregate throughput: total source pixels / wall seconds.
    pub aggregate_pps: f64,
    /// Sum of per-job modelled/measured transcode seconds.
    pub cpu_secs: f64,
}

impl EngineBatchReport {
    /// Parallel speedup achieved: transcode-seconds of work divided by
    /// wall-clock seconds (≈ effective busy workers).
    pub fn speedup(&self) -> f64 {
        self.cpu_secs / self.wall_secs.max(1e-9)
    }
}

/// The shared work-stealing scheduler: runs `run` over every job on
/// `workers` OS threads (a shared atomic cursor hands out work) and
/// returns the results in input order plus the batch wall time.
///
/// # Panics
///
/// Panics if `workers` is zero or `jobs` is empty, or if a worker thread
/// panics (the panic is propagated).
fn run_batch<J, R, F>(jobs: &[J], workers: usize, run: F) -> (Vec<R>, f64)
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    assert!(!jobs.is_empty(), "batch is empty");
    let spawned = workers.min(jobs.len());
    let mut batch_span = vtrace::span("farm.batch");
    let batch_id = batch_span.id();
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    // Busy microseconds across all workers, for the utilization gauge.
    let busy_us = AtomicU64::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<R>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..spawned {
            scope.spawn(|| {
                // Parent is passed explicitly: the batch span lives on the
                // main thread's stack, invisible to this thread's.
                let mut worker_span = vtrace::span_with_parent("farm.worker", batch_id);
                let mut jobs_done = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let traced_at = vtrace::enabled().then(|| {
                        // Queue wait: how long the job sat between batch
                        // start and this worker picking it up.
                        vtrace::histogram(
                            "farm.queue_wait_us",
                            started.elapsed().as_micros() as u64,
                        );
                        if jobs_done > 0 {
                            // Every grab after a worker's first is a pull
                            // from the shared queue.
                            vtrace::counter("farm.steals", 1);
                        }
                        Instant::now()
                    });
                    let result = run(&jobs[i]);
                    if let Some(t0) = traced_at {
                        busy_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                    }
                    jobs_done += 1;
                    **slot_refs[i].lock().expect("slot lock") = Some(result);
                }
                if worker_span.id().is_some() {
                    worker_span.record("jobs", jobs_done);
                    vtrace::counter("farm.jobs_completed", jobs_done);
                }
            });
        }
    });

    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    if batch_span.id().is_some() {
        batch_span.record("jobs", jobs.len());
        batch_span.record("workers", spawned);
        // Fraction of worker-seconds spent running jobs (1.0 = no worker
        // ever idled waiting for the queue to drain).
        let utilization =
            busy_us.load(Ordering::Relaxed) as f64 / 1e6 / (spawned as f64 * wall_secs);
        vtrace::gauge("farm.batch_utilization", utilization);
    }
    drop(batch_span);
    drop(slot_refs);
    let results: Vec<R> = slots.into_iter().map(|s| s.expect("every job completed")).collect();
    (results, wall_secs)
}

/// Encodes `jobs` on `workers` OS threads (work stealing via a shared
/// atomic cursor) and reports aggregate throughput.
///
/// # Panics
///
/// Panics if `workers` is zero or `jobs` is empty, or if a worker thread
/// panics (the panic is propagated).
pub fn transcode_batch(jobs: &[TranscodeJob], workers: usize) -> BatchReport {
    let (results, wall_secs) = run_batch(jobs, workers, |job| TranscodeResult {
        name: job.name.clone(),
        output: encode(&job.video, &job.config),
    });
    let total_pixels: u64 = jobs.iter().map(|j| j.video.total_pixels()).sum();
    let cpu_secs: f64 = results.iter().map(|r| r.output.stats.encode_seconds).sum();
    BatchReport { results, wall_secs, aggregate_pps: total_pixels as f64 / wall_secs, cpu_secs }
}

/// Runs `jobs` through `engine` on `workers` OS threads (same
/// work-stealing scheduler as [`transcode_batch`]) and reports aggregate
/// throughput. Job order is preserved in the results regardless of
/// scheduling. If any request fails, the first failing job's error (in
/// job order) is returned.
///
/// # Panics
///
/// Panics if `workers` is zero or `jobs` is empty, or if a worker thread
/// panics (the panic is propagated).
pub fn transcode_batch_with(
    engine: &dyn Transcoder,
    jobs: &[EngineJob],
    workers: usize,
) -> Result<EngineBatchReport, TranscodeError> {
    let (raw, wall_secs) =
        run_batch(jobs, workers, |job| engine.transcode(&job.video, &job.request));
    let mut results = Vec::with_capacity(jobs.len());
    for (job, outcome) in jobs.iter().zip(raw) {
        results.push(EngineJobResult { name: job.name.clone(), outcome: outcome? });
    }
    let total_pixels: u64 = jobs.iter().map(|j| j.video.total_pixels()).sum();
    let cpu_secs: f64 = results.iter().map(|r| r.outcome.timings.total()).sum();
    Ok(EngineBatchReport {
        results,
        wall_secs,
        aggregate_pps: total_pixels as f64 / wall_secs,
        cpu_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RateMode};
    use vcodec::{CodecFamily, Preset, RateControl};
    use vframe::color::{frame_from_fn, Yuv};
    use vframe::Resolution;
    use vhw::HwVendor;

    fn source(seed: u32) -> Video {
        let res = Resolution::new(64, 48);
        let frames = (0..6)
            .map(|t| {
                frame_from_fn(res, |x, y| {
                    Yuv::new(((x * (3 + seed) + y * 2 + 5 * t) % 256) as u8, 128, 128)
                })
            })
            .collect();
        Video::new(frames, 30.0)
    }

    fn job(name: &str, seed: u32) -> TranscodeJob {
        TranscodeJob {
            name: name.to_string(),
            video: source(seed),
            config: EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Fast,
                RateControl::ConstQuality { crf: 30.0 },
            ),
        }
    }

    #[test]
    fn batch_completes_all_jobs_in_order() {
        let jobs: Vec<TranscodeJob> = (0..7).map(|i| job(&format!("job{i}"), i)).collect();
        let report = transcode_batch(&jobs, 4);
        assert_eq!(report.results.len(), 7);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.name, format!("job{i}"), "result order preserved");
            assert!(!r.output.bytes.is_empty());
        }
        assert!(report.aggregate_pps > 0.0);
    }

    #[test]
    fn parallel_output_matches_serial_output() {
        // Encoding is deterministic, so thread scheduling must not change
        // a single bit of any stream.
        let jobs: Vec<TranscodeJob> = (0..4).map(|i| job(&format!("j{i}"), i)).collect();
        let parallel = transcode_batch(&jobs, 4);
        let serial = transcode_batch(&jobs, 1);
        for (p, s) in parallel.results.iter().zip(&serial.results) {
            assert_eq!(p.output.bytes, s.output.bytes, "{}", p.name);
        }
    }

    #[test]
    fn more_workers_do_not_lose_work() {
        let jobs: Vec<TranscodeJob> = (0..3).map(|i| job(&format!("j{i}"), i)).collect();
        // More workers than jobs is fine.
        let report = transcode_batch(&jobs, 16);
        assert_eq!(report.results.len(), 3);
        assert!(report.speedup() > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch is empty")]
    fn empty_batch_rejected() {
        let _ = transcode_batch(&[], 2);
    }

    #[test]
    fn engine_batch_mixes_backends() {
        let jobs = vec![
            EngineJob {
                name: "sw".to_string(),
                video: source(0),
                request: TranscodeRequest::software(
                    CodecFamily::Avc,
                    Preset::Fast,
                    RateMode::ConstQuality { crf: 30.0 },
                ),
            },
            EngineJob {
                name: "hw".to_string(),
                video: source(1),
                request: TranscodeRequest::hardware(
                    HwVendor::Nvenc,
                    RateMode::Bitrate { bps: 400_000 },
                ),
            },
        ];
        let report = transcode_batch_with(&Engine, &jobs, 2).expect("both jobs valid");
        assert_eq!(report.results[0].name, "sw");
        assert_eq!(report.results[1].name, "hw");
        // The hardware job reports modelled stage timings.
        assert!(report.results[1].outcome.timings.transfer > 0.0);
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn engine_batch_surfaces_job_errors() {
        let jobs = vec![EngineJob {
            name: "bad".to_string(),
            video: source(0),
            request: TranscodeRequest::software(
                CodecFamily::Avc,
                Preset::Fast,
                RateMode::Bitrate { bps: 0 },
            ),
        }];
        assert!(transcode_batch_with(&Engine, &jobs, 2).is_err());
    }
}
