//! The adaptive-bitrate transcode ladder (Figure 3 of the paper).
//!
//! "Each upload must be converted to a range of resolutions, formats, and
//! bitrates to suit varied viewer capabilities" (Section 1). This module
//! implements the fan-out: the standard resolution rungs, per-rung bitrate
//! targets from the ladder model in [`crate::reference`], and a parallel
//! driver that produces every rung from one source.

use crate::engine::{Backend, Engine, RateMode, TranscodeRequest, Transcoder};
use crate::farm::{transcode_batch_with, BatchError, EngineJob};
use crate::measure::Measurement;
use crate::reference::target_bps;
use vcodec::{CodecFamily, EncodeOutput, Preset};
use vframe::scale::resize_video;
use vframe::{Resolution, Video};

/// One rung of the ladder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LadderRung {
    /// Conventional name ("720p", …).
    pub name: &'static str,
    /// Output resolution.
    pub resolution: Resolution,
}

/// The standard output ladder, largest first.
pub fn standard_ladder() -> Vec<LadderRung> {
    vec![
        LadderRung { name: "2160p", resolution: Resolution::new(3840, 2160) },
        LadderRung { name: "1440p", resolution: Resolution::new(2560, 1440) },
        LadderRung { name: "1080p", resolution: Resolution::new(1920, 1080) },
        LadderRung { name: "720p", resolution: Resolution::new(1280, 720) },
        LadderRung { name: "480p", resolution: Resolution::new(854, 480) },
        LadderRung { name: "360p", resolution: Resolution::new(640, 360) },
        LadderRung { name: "240p", resolution: Resolution::new(426, 240) },
        LadderRung { name: "144p", resolution: Resolution::new(256, 144) },
    ]
}

/// The rungs a source of `native` resolution is transcoded to: everything
/// at or below the source (a service never upscales), scaled by
/// `1/scale` to mirror scaled-down experiment runs.
///
/// # Panics
///
/// Panics if `scale` is zero.
pub fn rungs_for(native: Resolution, scale: u32) -> Vec<LadderRung> {
    assert!(scale > 0, "scale must be non-zero");
    standard_ladder()
        .into_iter()
        .filter(|r| r.resolution.pixels() <= native.pixels() * u64::from(scale) * u64::from(scale))
        .map(|r| LadderRung {
            name: r.name,
            resolution: Resolution::new(
                (r.resolution.width() / scale).max(16) & !1,
                (r.resolution.height() / scale).max(16) & !1,
            ),
        })
        .collect()
}

/// One produced rung.
#[derive(Debug)]
pub struct LadderOutput {
    /// The rung.
    pub rung: LadderRung,
    /// The downscaled source the rung was encoded from.
    pub source: Video,
    /// Encode output.
    pub output: EncodeOutput,
}

impl LadderOutput {
    /// The rung's measurement (speed/bitrate/quality vs its own scaled
    /// source).
    pub fn measurement(&self) -> Measurement {
        Measurement::from_encode(&self.source, &self.output)
    }
}

/// Produces every ladder rung at or below the source resolution, encoding
/// rungs in parallel on `workers` threads through the software engine.
/// Each rung is encoded two-pass at its ladder bitrate (the VOD fan-out
/// of Figure 3).
///
/// # Panics
///
/// Panics if `workers` is zero or the source is smaller than the lowest
/// rung at the chosen scale.
pub fn transcode_ladder(
    source: &Video,
    family: CodecFamily,
    preset: Preset,
    scale: u32,
    workers: usize,
) -> Vec<LadderOutput> {
    transcode_ladder_with(&Engine, Backend::Software(family), preset, source, scale, workers)
        .expect("software ladder transcode")
}

/// Backend-generic ladder: produces every rung through `engine` for any
/// [`Backend`]. Software rungs are encoded two-pass at their ladder
/// bitrate; hardware rungs use the ASIC's single-pass mode at the same
/// target (two-pass is not a hardware capability).
///
/// A ladder with holes is useless to a player, so per-rung failures are
/// folded back into an all-or-nothing [`BatchError::JobFailed`] via
/// [`crate::farm::EngineBatchReport::require_complete`].
///
/// # Errors
///
/// [`BatchError::NoWorkers`] when `workers` is zero;
/// [`BatchError::JobFailed`] when any rung's transcode failed.
///
/// # Panics
///
/// Panics if the source is smaller than the lowest rung at the chosen
/// scale.
pub fn transcode_ladder_with(
    engine: &dyn Transcoder,
    backend: Backend,
    preset: Preset,
    source: &Video,
    scale: u32,
    workers: usize,
) -> Result<Vec<LadderOutput>, BatchError> {
    let mut ladder_span = vtrace::span("ladder");
    let sources: Vec<(LadderRung, Video)> = rungs_for(source.resolution(), scale)
        .into_iter()
        .filter(|r| r.resolution.pixels() <= source.resolution().pixels())
        .map(|r| (r, resize_video(source, r.resolution)))
        .collect();
    assert!(!sources.is_empty(), "no ladder rung fits the source resolution");
    if ladder_span.id().is_some() {
        ladder_span.record("backend", backend.name());
        ladder_span.record("rungs", sources.len());
        vtrace::counter("ladder.rungs_encoded", sources.len() as u64);
    }
    let jobs: Vec<EngineJob> = sources
        .iter()
        .map(|(rung, video)| {
            let bps = target_bps(video);
            let rate = match backend {
                Backend::Software(_) => RateMode::TwoPassBitrate { bps },
                Backend::Hardware(_) => RateMode::Bitrate { bps },
            };
            EngineJob::new(rung.name, video.clone(), TranscodeRequest::new(backend, preset, rate))
        })
        .collect();
    let report = transcode_batch_with(engine, &jobs, workers)?.require_complete()?;
    Ok(sources
        .into_iter()
        .zip(report.results)
        .map(|((rung, video), result)| LadderOutput {
            rung,
            source: video,
            // Invariant: require_complete() above guarantees every slot
            // holds a success, and ladder jobs always run in memory.
            output: result
                .outcome
                .expect("complete ladder")
                .into_full()
                .expect("in-memory ladder job")
                .output,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vframe::color::{frame_from_fn, Yuv};

    fn source() -> Video {
        // A 240p-class source at "scale 2" semantics: big enough to cover
        // several scaled rungs.
        let res = Resolution::new(426, 240);
        let frames = (0..4)
            .map(|t| {
                frame_from_fn(res, |x, y| Yuv::new(((x * 2 + y + 7 * t) % 256) as u8, 128, 128))
            })
            .collect();
        Video::new(frames, 30.0)
    }

    #[test]
    fn standard_ladder_is_sorted_desc() {
        let l = standard_ladder();
        for pair in l.windows(2) {
            assert!(pair[0].resolution.pixels() > pair[1].resolution.pixels());
        }
        assert_eq!(l[0].name, "2160p");
        assert_eq!(l.last().unwrap().name, "144p");
    }

    #[test]
    fn rungs_never_exceed_native() {
        let rungs = rungs_for(Resolution::new(1280, 720), 1);
        assert!(rungs.iter().all(|r| r.resolution.pixels() <= 1280 * 720));
        assert_eq!(rungs[0].name, "720p");
        assert!(rungs.iter().any(|r| r.name == "144p"));
    }

    #[test]
    fn scaled_rungs_shrink_dimensions() {
        let rungs = rungs_for(Resolution::new(480, 270), 4);
        // At scale 4, the 1080p rung becomes 480x270.
        let r1080 = rungs.iter().find(|r| r.name == "1080p").expect("1080p rung");
        assert_eq!(r1080.resolution, Resolution::new(480, 270));
    }

    #[test]
    fn ladder_produces_decodable_rungs_with_descending_sizes() {
        let out = transcode_ladder(&source(), CodecFamily::Avc, Preset::Fast, 1, 4);
        assert!(out.len() >= 2, "expected at least 240p and 144p, got {}", out.len());
        let mut last_pixels = u64::MAX;
        for rung in &out {
            assert!(rung.rung.resolution.pixels() < last_pixels, "descending order");
            last_pixels = rung.rung.resolution.pixels();
            let decoded = vcodec::decode(&rung.output.bytes).expect("rung decodes");
            assert_eq!(decoded.resolution(), rung.rung.resolution);
            let m = rung.measurement();
            assert!(m.quality_db > 20.0, "{}: {} dB", rung.rung.name, m.quality_db);
        }
        // Smaller rungs cost fewer absolute bytes.
        assert!(
            out.last().unwrap().output.bytes.len() < out[0].output.bytes.len(),
            "ladder should shrink"
        );
    }

    #[test]
    fn hardware_ladder_runs_single_pass() {
        let out = transcode_ladder_with(
            &Engine,
            Backend::Hardware(vhw::HwVendor::Qsv),
            Preset::Fast,
            &source(),
            1,
            2,
        )
        .expect("hardware ladder");
        assert!(out.len() >= 2);
        for rung in &out {
            let decoded = vcodec::decode(&rung.output.bytes).expect("rung decodes");
            assert_eq!(decoded.resolution(), rung.rung.resolution);
        }
    }
}
