//! Corpus modelling and algorithmic video selection for the vbench
//! reproduction.
//!
//! The paper's first contribution is methodological: instead of curating
//! videos by eye, vbench *derives* its suite from a commercial corpus —
//! bin six months of transcode logs into `(resolution, framerate,
//! entropy)` categories, weight each by transcode time, cluster with
//! weighted k-means in a log-scaled normalized feature space, and take
//! each cluster's mode as representative (Section 4.1).
//!
//! This crate reproduces that pipeline end to end:
//!
//! * [`category`] — video categories and the normalized feature space;
//! * [`corpus`] — a generative stand-in for the YouTube corpus (standard
//!   resolution/framerate ladders, log-normal entropy mixture spanning
//!   four orders of magnitude, power-law popularity);
//! * [`kmeans`] — weighted k-means with k-means++ seeding;
//! * [`selection`] — the end-to-end suite selection;
//! * [`datasets`] — the published Table 2 suite and the Netflix / Xiph /
//!   SPEC profiles the paper compares against;
//! * [`coverage`] — the Figure 4 coverage set and coverage metric.
//!
//! # Example
//!
//! ```
//! use vcorpus::corpus::CorpusModel;
//! use vcorpus::selection::{select_suite, SelectionConfig};
//!
//! let corpus = CorpusModel::new().sample_categories(5_000, 42);
//! let suite = select_suite(&corpus, &SelectionConfig::default());
//! assert_eq!(suite.len(), 15);
//! // Every suite entry accounts for a nonzero share of transcode time.
//! assert!(suite.iter().all(|s| s.share > 0.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod category;
pub mod corpus;
pub mod coverage;
pub mod datasets;
pub mod kmeans;
pub mod selection;

pub use category::{FeatureSpace, VideoCategory, WeightedCategory};
pub use corpus::{CorpusModel, PopularityModel, PopularitySampler};
pub use coverage::{coverage_categories, coverage_fraction};
pub use datasets::{vbench_table2, DatasetProfile, DatasetVideo};
pub use selection::{select_suite, SelectedVideo, SelectionConfig};
