//! A statistical model of a commercial upload corpus.
//!
//! The paper's selection pipeline consumed six months of YouTube transcode
//! logs — data that cannot ship with a reproduction. This module replaces
//! it with a generative model whose marginals match what the paper reports
//! about the corpus: thousands of categories across 40+ resolutions and
//! 200+ entropy values spanning four orders of magnitude (Figure 4), with
//! uploads concentrated in the standard ladder rungs, and watch time
//! following a power law with exponential cutoff [Cha et al. 2009].

use crate::category::{VideoCategory, WeightedCategory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Standard resolution ladder: (kilopixels, upload share).
const RESOLUTION_TIERS: [(u32, f64); 8] = [
    (37, 0.04),   // 256x144
    (102, 0.07),  // 426x240
    (230, 0.16),  // 640x360
    (410, 0.21),  // 854x480
    (922, 0.25),  // 1280x720
    (2074, 0.19), // 1920x1080
    (3686, 0.04), // 2560x1440
    (8294, 0.04), // 3840x2160
];

/// Framerate ladder: (fps, share).
const FPS_TIERS: [(u32, f64); 6] =
    [(15, 0.04), (24, 0.14), (25, 0.12), (30, 0.50), (50, 0.05), (60, 0.15)];

/// Content archetypes: (median entropy bits/pix/s, log-σ, share).
/// Spans the paper's four-order-of-magnitude entropy range, from
/// slideshows (< 0.1) to high-motion sports (> 10).
const CONTENT_MODES: [(f64, f64, f64); 6] = [
    (0.06, 0.8, 0.08), // slideshows / still images
    (0.30, 0.7, 0.10), // screen capture / presentations
    (1.20, 0.6, 0.20), // animation
    (3.50, 0.5, 0.34), // natural video
    (5.50, 0.4, 0.16), // gaming
    (9.50, 0.5, 0.12), // sports / high motion
];

/// The corpus generator.
#[derive(Clone, Copy, Debug, Default)]
pub struct CorpusModel;

impl CorpusModel {
    /// Creates the default model.
    pub fn new() -> CorpusModel {
        CorpusModel
    }

    /// Samples one video's category.
    pub fn sample_video(&self, rng: &mut SmallRng) -> VideoCategory {
        let kpix = pick(rng, RESOLUTION_TIERS.iter().map(|&(v, w)| (v, w)));
        let fps = pick(rng, FPS_TIERS.iter().map(|&(v, w)| (v, w)));
        let (median, sigma, _) =
            CONTENT_MODES[pick(rng, CONTENT_MODES.iter().enumerate().map(|(i, m)| (i, m.2)))];
        // Log-normal around the mode's median.
        let z = standard_normal(rng);
        let entropy = (median.ln() + sigma * z).exp().clamp(0.02, 60.0);
        VideoCategory::new(kpix, fps, entropy)
    }

    /// Samples `n` uploads and aggregates them into weighted categories.
    ///
    /// Weights model *transcode time*: proportional to pixels per second
    /// and sub-linearly to content entropy (complex videos take longer at
    /// fixed settings), matching the paper's weighting of categories by
    /// time spent transcoding.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_categories(&self, n: usize, seed: u64) -> Vec<WeightedCategory> {
        assert!(n > 0, "need at least one sample");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bins: BTreeMap<(u32, u32, u64), f64> = BTreeMap::new();
        for _ in 0..n {
            let cat = self.sample_video(&mut rng);
            let time = transcode_time_weight(&cat);
            *bins
                .entry((cat.kpixels, cat.fps, (cat.entropy * 10.0).round() as u64))
                .or_default() += time;
        }
        bins.into_iter()
            .map(|((kpix, fps, e10), weight)| WeightedCategory {
                category: VideoCategory::new(kpix, fps, e10 as f64 / 10.0),
                weight,
            })
            .collect()
    }
}

/// Relative transcode time of one video in a category.
fn transcode_time_weight(cat: &VideoCategory) -> f64 {
    f64::from(cat.kpixels) * f64::from(cat.fps) / 30.0 * cat.entropy.powf(0.25)
}

fn pick<T: Copy>(rng: &mut SmallRng, items: impl Iterator<Item = (T, f64)>) -> T {
    let items: Vec<(T, f64)> = items.collect();
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen_range(0.0..total);
    for &(v, w) in &items {
        if target < w {
            return v;
        }
        target -= w;
    }
    items.last().expect("non-empty tier list").0
}

/// Standard normal via Box–Muller.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Watch-time popularity: a power law with exponential cutoff
/// (Section 2.5 of the paper, after Cha et al.): most watch time
/// concentrates in a few popular videos with a long tail.
#[derive(Clone, Copy, Debug)]
pub struct PopularityModel {
    /// Power-law exponent (≈ 0.8 for user-generated content).
    pub alpha: f64,
    /// Exponential cutoff rank.
    pub cutoff: f64,
}

impl Default for PopularityModel {
    fn default() -> PopularityModel {
        PopularityModel { alpha: 0.8, cutoff: 50_000.0 }
    }
}

impl PopularityModel {
    /// Unnormalized watch weight of the video at `rank` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn watch_weight(&self, rank: u64) -> f64 {
        assert!(rank > 0, "ranks are 1-based");
        (rank as f64).powf(-self.alpha) * (-(rank as f64) / self.cutoff).exp()
    }

    /// Fraction of total watch time captured by the top `top` of `total`
    /// videos.
    ///
    /// # Panics
    ///
    /// Panics if `top > total` or `total` is zero.
    pub fn top_share(&self, top: u64, total: u64) -> f64 {
        assert!(total > 0 && top <= total, "invalid rank range");
        let head: f64 = (1..=top).map(|r| self.watch_weight(r)).sum();
        let all: f64 = (1..=total).map(|r| self.watch_weight(r)).sum();
        head / all
    }

    /// Builds a rank sampler over a catalog of `catalog` videos: draws
    /// are distributed like the watch-time weights, so popular ranks
    /// dominate exactly as the model predicts.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is zero.
    pub fn sampler(&self, catalog: u64) -> PopularitySampler {
        PopularitySampler::new(self, catalog)
    }
}

/// A cumulative-weight sampler over catalog ranks `1..=catalog` under
/// [`PopularityModel`]: O(catalog) to build once, O(log catalog) per
/// draw via binary search.
#[derive(Clone, Debug)]
pub struct PopularitySampler {
    cumulative: Vec<f64>,
}

impl PopularitySampler {
    fn new(model: &PopularityModel, catalog: u64) -> PopularitySampler {
        assert!(catalog > 0, "catalog must be non-empty");
        let mut cumulative = Vec::with_capacity(catalog as usize);
        let mut total = 0.0;
        for rank in 1..=catalog {
            total += model.watch_weight(rank);
            cumulative.push(total);
        }
        PopularitySampler { cumulative }
    }

    /// Catalog size the sampler covers.
    pub fn catalog(&self) -> u64 {
        self.cumulative.len() as u64
    }

    /// Draws a 1-based rank: one uniform against the cumulative weights.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let total = *self.cumulative.last().expect("catalog is non-empty");
        let target: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= target) as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_per_seed() {
        let m = CorpusModel::new();
        assert_eq!(m.sample_categories(500, 1), m.sample_categories(500, 1));
        assert_ne!(m.sample_categories(500, 1), m.sample_categories(500, 2));
    }

    #[test]
    fn corpus_has_many_categories_with_wide_entropy() {
        let m = CorpusModel::new();
        let cats = m.sample_categories(20_000, 7);
        assert!(cats.len() > 1000, "only {} categories", cats.len());
        let min_e = cats.iter().map(|c| c.category.entropy).fold(f64::INFINITY, f64::min);
        let max_e = cats.iter().map(|c| c.category.entropy).fold(0.0, f64::max);
        // Four orders of magnitude, like Figure 4.
        assert!(min_e <= 0.1, "min entropy {min_e}");
        assert!(max_e >= 10.0, "max entropy {max_e}");
    }

    #[test]
    fn standard_resolutions_dominate() {
        let m = CorpusModel::new();
        let cats = m.sample_categories(10_000, 3);
        let total: f64 = cats.iter().map(|c| c.weight).sum();
        let hd: f64 = cats
            .iter()
            .filter(|c| [410, 922, 2074].contains(&c.category.kpixels))
            .map(|c| c.weight)
            .sum();
        assert!(hd / total > 0.5, "HD tier share {}", hd / total);
    }

    #[test]
    fn weights_grow_with_resolution() {
        // At equal entropy and fps, a 1080p category outweighs a 144p one
        // per upload (transcode time scales with pixels).
        let a = VideoCategory::new(37, 30, 2.0);
        let b = VideoCategory::new(2074, 30, 2.0);
        assert!(transcode_time_weight(&b) > transcode_time_weight(&a) * 20.0);
    }

    #[test]
    fn popularity_is_heavily_skewed() {
        let p = PopularityModel::default();
        // Top 1% of 100k videos captures a large share of watch time.
        let share = p.top_share(1_000, 100_000);
        assert!(share > 0.3, "top-1% share {share}");
        // And the tail is long: the bottom half still matters a little.
        let head_share = p.top_share(50_000, 100_000);
        assert!(head_share < 1.0);
        assert!(p.watch_weight(1) > p.watch_weight(100));
    }

    #[test]
    fn the_sampler_reproduces_the_head_heavy_law() {
        let model = PopularityModel::default();
        let sampler = model.sampler(1000);
        assert_eq!(sampler.catalog(), 1000);
        let mut rng = SmallRng::seed_from_u64(11);
        let draws: Vec<u64> = (0..20_000).map(|_| sampler.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&r| (1..=1000).contains(&r)));
        let head = draws.iter().filter(|&&r| r <= 100).count() as f64 / draws.len() as f64;
        let expected = model.top_share(100, 1000);
        assert!((head - expected).abs() < 0.02, "head share {head} vs model {expected}");
        // Determinism: same seed, same draws.
        let mut again = SmallRng::seed_from_u64(11);
        assert!(draws.iter().take(100).all(|&r| r == sampler.sample(&mut again)));
    }

    #[test]
    #[should_panic(expected = "catalog must be non-empty")]
    fn empty_catalogs_are_rejected() {
        PopularityModel::default().sampler(0);
    }
}
