//! Coverage sets and the coverage metric (Figure 4 of the paper).
//!
//! The paper validates vbench against an internal "coverage set": eleven
//! uniformly distributed entropy samples over the top resolutions and
//! framerates (the black dots of Figure 4), then overlays each public
//! dataset to show how much of the corpus it represents.

use crate::category::{FeatureSpace, VideoCategory, WeightedCategory};

/// Top resolutions (kilopixels) used by the coverage set.
pub const COVERAGE_RESOLUTIONS: [u32; 6] = [230, 410, 922, 2074, 3686, 8294];
/// Top framerates used by the coverage set.
pub const COVERAGE_FRAMERATES: [u32; 6] = [24, 25, 30, 48, 50, 60];
/// Entropy samples per (resolution, framerate) combination.
pub const COVERAGE_ENTROPY_SAMPLES: usize = 11;

/// Builds the coverage set: 6 resolutions × 6 framerates × 11
/// log-uniformly spaced entropy values from 0.02 to 20 bits/pixel/second
/// (the paper's four-orders-of-magnitude x-axis).
pub fn coverage_categories() -> Vec<VideoCategory> {
    let e_min = 0.02f64;
    let e_max = 20.0f64;
    let mut out = Vec::with_capacity(
        COVERAGE_RESOLUTIONS.len() * COVERAGE_FRAMERATES.len() * COVERAGE_ENTROPY_SAMPLES,
    );
    for &kpix in &COVERAGE_RESOLUTIONS {
        for &fps in &COVERAGE_FRAMERATES {
            for i in 0..COVERAGE_ENTROPY_SAMPLES {
                let t = i as f64 / (COVERAGE_ENTROPY_SAMPLES - 1) as f64;
                let entropy = (e_min.ln() + t * (e_max / e_min).ln()).exp();
                out.push(VideoCategory::new(kpix, fps, entropy));
            }
        }
    }
    out
}

/// Fraction of corpus weight lying within normalized-space distance
/// `radius` of at least one dataset point. Resolution and entropy are the
/// discriminating dimensions (Figure 4 plots exactly those two); framerate
/// participates through the shared [`FeatureSpace`] but datasets span it
/// too.
///
/// # Panics
///
/// Panics if `corpus` or `dataset` is empty, or `radius` is not positive.
pub fn coverage_fraction(
    dataset: &[VideoCategory],
    corpus: &[WeightedCategory],
    radius: f64,
) -> f64 {
    assert!(!dataset.is_empty(), "dataset is empty");
    assert!(!corpus.is_empty(), "corpus is empty");
    assert!(radius > 0.0, "radius must be positive");
    let space = FeatureSpace::fit(corpus);
    let r2 = radius * radius;
    let total: f64 = corpus.iter().map(|c| c.weight).sum();
    let covered: f64 = corpus
        .iter()
        .filter(|wc| {
            dataset.iter().any(|d| {
                // Distance in the (resolution, entropy) plane only.
                let a = space.normalize(&wc.category);
                let b = space.normalize(d);
                let dx = a[0] - b[0];
                let dz = a[2] - b[2];
                dx * dx + dz * dz <= r2
            })
        })
        .map(|wc| wc.weight)
        .sum();
    covered / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusModel;
    use crate::datasets;

    #[test]
    fn coverage_set_size() {
        let set = coverage_categories();
        assert_eq!(set.len(), 6 * 6 * 11);
    }

    #[test]
    fn coverage_entropy_spans_orders_of_magnitude() {
        let set = coverage_categories();
        let min = set.iter().map(|c| c.entropy).fold(f64::INFINITY, f64::min);
        let max = set.iter().map(|c| c.entropy).fold(0.0, f64::max);
        assert!(min <= 0.1, "min {min}");
        assert!(max >= 15.0, "max {max}");
    }

    #[test]
    fn full_corpus_covers_itself() {
        let corpus = CorpusModel::new().sample_categories(2_000, 1);
        let all: Vec<VideoCategory> = corpus.iter().map(|c| c.category).collect();
        let f = coverage_fraction(&all, &corpus, 0.05);
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vbench_covers_more_corpus_than_netflix() {
        // The paper's Figure 4 claim, quantified: at equal radius, the
        // 15-video vbench suite covers more transcode-time weight than the
        // 9-video single-resolution Netflix set.
        let corpus = CorpusModel::new().sample_categories(20_000, 5);
        let vb: Vec<VideoCategory> =
            datasets::vbench_table2().videos.iter().map(|v| v.category).collect();
        let nf: Vec<VideoCategory> =
            datasets::netflix().videos.iter().map(|v| v.category).collect();
        let cover_vb = coverage_fraction(&vb, &corpus, 0.35);
        let cover_nf = coverage_fraction(&nf, &corpus, 0.35);
        assert!(cover_vb > cover_nf, "vbench {cover_vb} should beat Netflix {cover_nf}");
    }

    #[test]
    fn spec_coverage_is_poor() {
        let corpus = CorpusModel::new().sample_categories(20_000, 5);
        let spec: Vec<VideoCategory> =
            datasets::spec2017().videos.iter().map(|v| v.category).collect();
        let vb: Vec<VideoCategory> =
            datasets::vbench_table2().videos.iter().map(|v| v.category).collect();
        let cover_spec = coverage_fraction(&spec, &corpus, 0.35);
        let cover_vb = coverage_fraction(&vb, &corpus, 0.35);
        assert!(cover_spec < cover_vb / 2.0, "SPEC {cover_spec} vs vbench {cover_vb}");
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_rejected() {
        let corpus = CorpusModel::new().sample_categories(100, 1);
        let all: Vec<VideoCategory> = corpus.iter().map(|c| c.category).collect();
        let _ = coverage_fraction(&all, &corpus, 0.0);
    }
}
