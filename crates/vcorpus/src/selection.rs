//! The end-to-end video-selection pipeline (Section 4.1 of the paper).
//!
//! corpus categories → normalize features → weighted k-means → pick each
//! cluster's *mode* (heaviest member) as representative. The result is a
//! small suite that is simultaneously *representative* (modes carry the
//! most transcode time) and *covering* (every category belongs to some
//! cluster).

use crate::category::{FeatureSpace, VideoCategory, WeightedCategory};
use crate::kmeans::{kmeans, WeightedPoint};

/// Selection parameters.
#[derive(Clone, Copy, Debug)]
pub struct SelectionConfig {
    /// Number of videos to select (the paper picks 15).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: u32,
    /// Clustering seed (selection is deterministic given the corpus and
    /// this seed).
    pub seed: u64,
}

impl Default for SelectionConfig {
    fn default() -> SelectionConfig {
        SelectionConfig { k: 15, max_iters: 100, seed: 2017 }
    }
}

/// One selected suite entry.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SelectedVideo {
    /// The representative category (the cluster's mode).
    pub category: VideoCategory,
    /// Total corpus weight of the cluster this video represents.
    pub cluster_weight: f64,
    /// The cluster's share of total corpus weight, in `[0, 1]`.
    pub share: f64,
}

/// Runs the selection pipeline over a weighted corpus.
///
/// Returns `cfg.k` (or fewer, if clusters collapse) representatives sorted
/// by resolution then entropy — the ordering of the paper's Table 2.
///
/// # Panics
///
/// Panics if the corpus has fewer categories than `cfg.k`.
pub fn select_suite(corpus: &[WeightedCategory], cfg: &SelectionConfig) -> Vec<SelectedVideo> {
    assert!(corpus.len() >= cfg.k, "corpus smaller than requested suite");
    let space = FeatureSpace::fit(corpus);
    let points: Vec<WeightedPoint> = corpus
        .iter()
        .map(|wc| WeightedPoint { pos: space.normalize(&wc.category), weight: wc.weight })
        .collect();
    let clusters = kmeans(&points, cfg.k, cfg.max_iters, cfg.seed);
    let total: f64 = corpus.iter().map(|c| c.weight).sum();
    let mut out: Vec<SelectedVideo> = clusters
        .iter()
        .map(|c| {
            let mode = c.mode(&points);
            let weight = c.weight(&points);
            SelectedVideo {
                category: corpus[mode].category,
                cluster_weight: weight,
                share: weight / total,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        (a.category.kpixels, (a.category.entropy * 10.0) as u64)
            .cmp(&(b.category.kpixels, (b.category.entropy * 10.0) as u64))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusModel;
    use crate::coverage::coverage_fraction;
    use crate::datasets;

    fn corpus() -> Vec<WeightedCategory> {
        CorpusModel::new().sample_categories(20_000, 11)
    }

    #[test]
    fn selects_requested_count() {
        let suite = select_suite(&corpus(), &SelectionConfig::default());
        assert_eq!(suite.len(), 15);
    }

    #[test]
    fn selection_is_deterministic() {
        let c = corpus();
        let a = select_suite(&c, &SelectionConfig::default());
        let b = select_suite(&c, &SelectionConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn shares_sum_to_one() {
        let suite = select_suite(&corpus(), &SelectionConfig::default());
        let total: f64 = suite.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn suite_spans_resolutions_and_entropies() {
        // The derived suite must reproduce the *structure* of Table 2:
        // multiple resolutions, and entropies spanning low to high.
        let suite = select_suite(&corpus(), &SelectionConfig::default());
        let resolutions: std::collections::BTreeSet<u32> =
            suite.iter().map(|s| s.category.kpixels).collect();
        assert!(resolutions.len() >= 3, "only {resolutions:?}");
        let min_e = suite.iter().map(|s| s.category.entropy).fold(f64::INFINITY, f64::min);
        let max_e = suite.iter().map(|s| s.category.entropy).fold(0.0, f64::max);
        assert!(min_e < 1.0, "no low-entropy representative (min {min_e})");
        assert!(max_e > 4.0, "no high-entropy representative (max {max_e})");
    }

    #[test]
    fn derived_suite_coverage_is_comparable_to_published_table2() {
        // Our pipeline, run on the synthetic corpus, should cover the
        // corpus at least as well as the paper's published suite does —
        // evidence the methodology reproduction is faithful.
        let c = corpus();
        let derived: Vec<_> =
            select_suite(&c, &SelectionConfig::default()).iter().map(|s| s.category).collect();
        let published: Vec<_> =
            datasets::vbench_table2().videos.iter().map(|v| v.category).collect();
        let cover_derived = coverage_fraction(&derived, &c, 0.35);
        let cover_published = coverage_fraction(&published, &c, 0.35);
        assert!(
            cover_derived >= cover_published * 0.8,
            "derived {cover_derived} vs published {cover_published}"
        );
    }

    #[test]
    fn sorted_by_resolution_then_entropy() {
        let suite = select_suite(&corpus(), &SelectionConfig::default());
        for pair in suite.windows(2) {
            let a = (pair[0].category.kpixels, (pair[0].category.entropy * 10.0) as u64);
            let b = (pair[1].category.kpixels, (pair[1].category.entropy * 10.0) as u64);
            assert!(a <= b, "not sorted: {a:?} > {b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "smaller than requested")]
    fn tiny_corpus_rejected() {
        let c: Vec<WeightedCategory> = corpus().into_iter().take(5).collect();
        let _ = select_suite(&c, &SelectionConfig::default());
    }
}
