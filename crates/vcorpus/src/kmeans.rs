//! Weighted k-means clustering (the paper's video-selection algorithm).
//!
//! Section 4.1: "we apply weighted k-means clustering to find a pre-defined
//! number of centroids, with weights determined by the time spent
//! transcoding for each category". Implementation: k-means++ seeding
//! (weight-aware) followed by Lloyd iterations, deterministic for a given
//! seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One clustered point: position in normalized feature space plus weight.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WeightedPoint {
    /// Position.
    pub pos: [f64; 3],
    /// Non-negative weight.
    pub weight: f64,
}

/// A cluster produced by [`kmeans`].
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    /// Weighted centroid position.
    pub centroid: [f64; 3],
    /// Indices (into the input slice) of member points.
    pub members: Vec<usize>,
}

impl Cluster {
    /// Total weight of the cluster's members.
    pub fn weight(&self, points: &[WeightedPoint]) -> f64 {
        self.members.iter().map(|&i| points[i].weight).sum()
    }

    /// The member with the largest weight — the *mode*, which the paper
    /// selects as the cluster representative.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn mode(&self, points: &[WeightedPoint]) -> usize {
        *self
            .members
            .iter()
            .max_by(|&&a, &&b| {
                points[a].weight.partial_cmp(&points[b].weight).expect("weights are finite")
            })
            .expect("cluster has members")
    }
}

fn dist2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs weighted k-means.
///
/// Uses k-means++ initialization (probability proportional to
/// `weight × distance²`) and at most `max_iters` Lloyd iterations; stops
/// early when assignments become stable. Empty clusters are re-seeded onto
/// the point farthest from its centroid.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points, or if any weight
/// is negative or non-finite.
pub fn kmeans(points: &[WeightedPoint], k: usize, max_iters: u32, seed: u64) -> Vec<Cluster> {
    assert!(k > 0, "k must be positive");
    assert!(k <= points.len(), "k ({k}) exceeds point count ({})", points.len());
    assert!(
        points.iter().all(|p| p.weight.is_finite() && p.weight >= 0.0),
        "weights must be finite and non-negative"
    );
    let mut rng = SmallRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<[f64; 3]> = Vec::with_capacity(k);
    let total_w: f64 = points.iter().map(|p| p.weight).sum();
    let first = weighted_pick(&mut rng, points.iter().map(|p| p.weight), total_w);
    centroids.push(points[first].pos);
    while centroids.len() < k {
        let scores: Vec<f64> = points
            .iter()
            .map(|p| {
                let d = centroids.iter().map(|c| dist2(&p.pos, c)).fold(f64::INFINITY, f64::min);
                p.weight * d
            })
            .collect();
        let total: f64 = scores.iter().sum();
        let idx = if total > 0.0 {
            weighted_pick(&mut rng, scores.iter().copied(), total)
        } else {
            rng.gen_range(0..points.len())
        };
        centroids.push(points[idx].pos);
    }

    // Lloyd iterations.
    let mut assignment = vec![usize::MAX; points.len()];
    for _ in 0..max_iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(&p.pos, &centroids[a])
                        .partial_cmp(&dist2(&p.pos, &centroids[b]))
                        .expect("distances are finite")
                })
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Recompute weighted centroids.
        let mut sums = vec![[0.0f64; 3]; k];
        let mut weights = vec![0.0f64; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignment[i];
            for (sum, &pos) in sums[c].iter_mut().zip(&p.pos) {
                *sum += pos * p.weight;
            }
            weights[c] += p.weight;
        }
        for c in 0..k {
            if weights[c] > 0.0 {
                for d in 0..3 {
                    centroids[c][d] = sums[c][d] / weights[c];
                }
            } else {
                // Re-seed an empty cluster on the globally worst-fit point.
                let worst = (0..points.len())
                    .max_by(|&a, &b| {
                        let da = dist2(&points[a].pos, &centroids[assignment[a]]);
                        let db = dist2(&points[b].pos, &centroids[assignment[b]]);
                        da.partial_cmp(&db).expect("distances are finite")
                    })
                    .expect("points exist");
                centroids[c] = points[worst].pos;
            }
        }
    }

    let mut clusters: Vec<Cluster> =
        centroids.into_iter().map(|c| Cluster { centroid: c, members: Vec::new() }).collect();
    for (i, &a) in assignment.iter().enumerate() {
        clusters[a].members.push(i);
    }
    clusters.retain(|c| !c.members.is_empty());
    clusters
}

fn weighted_pick<I: Iterator<Item = f64>>(rng: &mut SmallRng, weights: I, total: f64) -> usize {
    let mut target = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    let mut last = 0;
    for (i, w) in weights.enumerate() {
        last = i;
        if target < w {
            return i;
        }
        target -= w;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: [f64; 3], n: usize, spread: f64, seed: u64) -> Vec<WeightedPoint> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| WeightedPoint {
                pos: [
                    center[0] + rng.gen_range(-spread..spread),
                    center[1] + rng.gen_range(-spread..spread),
                    center[2] + rng.gen_range(-spread..spread),
                ],
                weight: rng.gen_range(0.5..2.0),
            })
            .collect()
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let mut pts = blob([-0.8, -0.8, -0.8], 30, 0.05, 1);
        pts.extend(blob([0.8, 0.8, 0.8], 30, 0.05, 2));
        pts.extend(blob([0.8, -0.8, 0.0], 30, 0.05, 3));
        let clusters = kmeans(&pts, 3, 50, 42);
        assert_eq!(clusters.len(), 3);
        for c in &clusters {
            // All members of a cluster lie near its centroid.
            for &m in &c.members {
                assert!(dist2(&pts[m].pos, &c.centroid) < 0.1, "stray point");
            }
            assert_eq!(c.members.len(), 30, "blob split across clusters");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blob([0.0; 3], 100, 1.0, 9);
        let a = kmeans(&pts, 5, 30, 7);
        let b = kmeans(&pts, 5, 30, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn every_point_is_assigned_exactly_once() {
        let pts = blob([0.0; 3], 60, 1.0, 4);
        let clusters = kmeans(&pts, 6, 30, 1);
        let mut seen = vec![false; pts.len()];
        for c in &clusters {
            for &m in &c.members {
                assert!(!seen[m], "point {m} assigned twice");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "unassigned points");
    }

    #[test]
    fn heavy_points_attract_centroids() {
        // One heavy point far away must get its own cluster when k = 2.
        let mut pts = blob([0.0; 3], 20, 0.1, 5);
        pts.push(WeightedPoint { pos: [5.0, 5.0, 5.0], weight: 100.0 });
        let clusters = kmeans(&pts, 2, 50, 3);
        let heavy_cluster = clusters
            .iter()
            .find(|c| c.members.contains(&20))
            .expect("heavy point assigned somewhere");
        assert_eq!(heavy_cluster.members.len(), 1, "heavy outlier should be isolated");
    }

    #[test]
    fn mode_is_heaviest_member() {
        let pts = vec![
            WeightedPoint { pos: [0.0; 3], weight: 1.0 },
            WeightedPoint { pos: [0.1; 3], weight: 10.0 },
            WeightedPoint { pos: [0.2; 3], weight: 2.0 },
        ];
        let clusters = kmeans(&pts, 1, 10, 0);
        assert_eq!(clusters[0].mode(&pts), 1);
        assert!((clusters[0].weight(&pts) - 13.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds point count")]
    fn k_larger_than_points_rejected() {
        let pts = blob([0.0; 3], 3, 0.1, 1);
        let _ = kmeans(&pts, 5, 10, 0);
    }
}
