//! Profiles of the video datasets the paper compares against (Figure 4),
//! and the published vbench suite itself (Table 2).

use crate::category::VideoCategory;

/// A named video in a dataset profile.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DatasetVideo {
    /// Short name.
    pub name: &'static str,
    /// Category (resolution / framerate / entropy).
    pub category: VideoCategory,
}

/// A public dataset's footprint in (resolution, entropy) space.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's figures.
    pub name: &'static str,
    /// Member videos.
    pub videos: Vec<DatasetVideo>,
}

fn dv(name: &'static str, kpix: u32, fps: u32, entropy: f64) -> DatasetVideo {
    DatasetVideo { name, category: VideoCategory::new(kpix, fps, entropy) }
}

/// The published vbench suite — Table 2 of the paper, verbatim: fifteen
/// videos across four resolutions with entropies from 0.2 to 7.7
/// bits/pixel/second.
pub fn vbench_table2() -> DatasetProfile {
    DatasetProfile {
        name: "vbench",
        videos: vec![
            dv("cat", 410, 30, 6.8),
            dv("holi", 410, 25, 7.0),
            dv("desktop", 922, 30, 0.2),
            dv("bike", 922, 30, 0.9),
            dv("cricket", 922, 25, 3.4),
            dv("game2", 922, 30, 4.9),
            dv("girl", 922, 25, 5.9),
            dv("game3", 922, 60, 6.1),
            dv("presentation", 2074, 30, 0.2),
            dv("funny", 2074, 30, 2.5),
            dv("house", 2074, 24, 3.6),
            dv("game1", 2074, 60, 4.6),
            dv("landscape", 2074, 30, 7.2),
            dv("hall", 2074, 25, 7.7),
            dv("chicken", 8294, 30, 5.9),
        ],
    }
}

/// The Netflix perceptual-quality dataset: nine 1080p clips from
/// professional TV/movie content — all high-entropy, single resolution
/// (the bias the paper demonstrates in Section 5.1).
pub fn netflix() -> DatasetProfile {
    DatasetProfile {
        name: "Netflix",
        videos: vec![
            dv("bbb-chunk", 2074, 24, 1.6),
            dv("drama-a", 2074, 24, 2.2),
            dv("action-a", 2074, 24, 4.8),
            dv("action-b", 2074, 24, 6.1),
            dv("sports-a", 2074, 30, 7.4),
            dv("doc-a", 2074, 24, 3.1),
            dv("drama-b", 2074, 24, 2.7),
            dv("noise-heavy", 2074, 24, 8.9),
            dv("animation-a", 2074, 24, 1.4),
        ],
    }
}

/// Derf's collection at Xiph.org: 41 clips, 480p–4K, curated for visual
/// analysis — nothing below ~1 bit/pixel/second.
pub fn xiph() -> DatasetProfile {
    // Representative spread: resolutions from 480p to 4K, entropy >= 1.
    let specs: [(u32, u32, f64); 41] = [
        (410, 30, 1.2),
        (410, 30, 2.4),
        (410, 25, 3.8),
        (410, 30, 5.1),
        (410, 30, 7.3),
        (410, 25, 9.0),
        (410, 30, 1.8),
        (410, 30, 2.9),
        (922, 30, 1.1),
        (922, 30, 1.9),
        (922, 25, 2.8),
        (922, 30, 3.7),
        (922, 30, 4.6),
        (922, 50, 5.8),
        (922, 30, 6.9),
        (922, 25, 8.2),
        (922, 30, 10.4),
        (922, 30, 2.2),
        (2074, 24, 1.3),
        (2074, 30, 2.1),
        (2074, 25, 3.2),
        (2074, 30, 4.4),
        (2074, 50, 5.5),
        (2074, 30, 6.7),
        (2074, 25, 8.1),
        (2074, 30, 9.6),
        (2074, 60, 12.0),
        (2074, 30, 1.7),
        (2074, 24, 2.6),
        (2074, 30, 3.9),
        (3686, 30, 2.4),
        (3686, 30, 4.9),
        (3686, 60, 7.2),
        (8294, 30, 1.9),
        (8294, 30, 3.3),
        (8294, 50, 4.7),
        (8294, 30, 6.4),
        (8294, 60, 8.8),
        (8294, 30, 11.2),
        (8294, 30, 2.8),
        (8294, 60, 5.6),
    ];
    DatasetProfile {
        name: "Xiph",
        videos: specs
            .iter()
            .enumerate()
            .map(|(i, &(k, f, e))| {
                let name: &'static str = Box::leak(format!("derf-{i:02}").into_boxed_str());
                dv(name, k, f, e)
            })
            .collect(),
    }
}

/// SPEC CPU2017's two x264 inputs: consecutive segments of one HD
/// animation, nearly identical entropy.
pub fn spec2017() -> DatasetProfile {
    DatasetProfile {
        name: "SPEC2017",
        videos: vec![dv("bbb-seg1", 2074, 24, 1.0), dv("bbb-seg2", 2074, 24, 1.1)],
    }
}

/// SPEC CPU2006's two low-resolution H.264 reference inputs.
pub fn spec2006() -> DatasetProfile {
    DatasetProfile {
        name: "SPEC2006",
        videos: vec![dv("foreman", 101, 30, 2.3), dv("sss", 230, 25, 1.9)],
    }
}

/// All comparison datasets, vbench last.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![netflix(), xiph(), spec2017(), spec2006(), vbench_table2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let suite = vbench_table2();
        assert_eq!(suite.videos.len(), 15);
        let cat = &suite.videos[0];
        assert_eq!(cat.name, "cat");
        assert_eq!(cat.category.kpixels, 410);
        assert_eq!(cat.category.entropy, 6.8);
        let chicken = suite.videos.last().unwrap();
        assert_eq!(chicken.name, "chicken");
        assert_eq!(chicken.category.kpixels, 8294);
    }

    #[test]
    fn vbench_covers_low_entropy_but_netflix_does_not() {
        // The paper's central coverage claim (Section 4.1 / Figure 4).
        let vb = vbench_table2();
        let nf = netflix();
        let xi = xiph();
        let min = |p: &DatasetProfile| {
            p.videos.iter().map(|v| v.category.entropy).fold(f64::INFINITY, f64::min)
        };
        assert!(min(&vb) <= 0.2);
        assert!(min(&nf) >= 1.0, "Netflix min entropy {}", min(&nf));
        assert!(min(&xi) >= 1.0, "Xiph min entropy {}", min(&xi));
    }

    #[test]
    fn netflix_is_single_resolution() {
        assert!(netflix().videos.iter().all(|v| v.category.kpixels == 2074));
    }

    #[test]
    fn xiph_has_41_videos() {
        assert_eq!(xiph().videos.len(), 41);
    }

    #[test]
    fn spec_suites_are_tiny() {
        assert_eq!(spec2017().videos.len(), 2);
        assert_eq!(spec2006().videos.len(), 2);
        // SPEC17's two inputs are nearly identical in entropy.
        let s = spec2017();
        let diff = (s.videos[0].category.entropy - s.videos[1].category.entropy).abs();
        assert!(diff < 0.2);
    }
}
