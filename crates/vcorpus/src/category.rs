//! Video categories and the normalized feature space used for clustering.
//!
//! The paper (Section 4.1) reduces a video to three features — resolution,
//! framerate, and entropy — and defines a *category* as the videos sharing
//! a `(Kpixels, fps, entropy-to-one-decimal)` triple. Clustering operates
//! on a transformed space: log₂ resolution and log₂ entropy (so the gaps
//! between standard resolutions, and between entropy regimes, are
//! proportionate), each dimension normalized to `[-1, 1]`.

/// One video category: the unit of corpus accounting.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VideoCategory {
    /// Resolution in kilopixels per frame (width × height / 1000, rounded).
    pub kpixels: u32,
    /// Frames per second, rounded to an integer.
    pub fps: u32,
    /// Entropy in bits/pixel/second at visually lossless quality, rounded
    /// to one decimal place.
    pub entropy: f64,
}

impl VideoCategory {
    /// Creates a category, rounding entropy to one decimal place as the
    /// paper's category definition requires; entropies below 0.05 land in
    /// the lowest (0.1) bin.
    ///
    /// # Panics
    ///
    /// Panics if any field is non-positive or entropy is not finite.
    pub fn new(kpixels: u32, fps: u32, entropy: f64) -> VideoCategory {
        assert!(kpixels > 0 && fps > 0, "category dimensions must be positive");
        assert!(entropy.is_finite() && entropy > 0.0, "entropy must be positive");
        VideoCategory { kpixels, fps, entropy: ((entropy * 10.0).round() / 10.0).max(0.1) }
    }

    /// The category's position in untransformed feature space.
    pub fn raw_features(&self) -> [f64; 3] {
        [f64::from(self.kpixels), f64::from(self.fps), self.entropy]
    }

    /// The category's position in clustering space: `log2(kpixels)`, `fps`,
    /// `log2(entropy)` (the paper linearizes resolution and entropy with
    /// base-two logarithms before clustering).
    pub fn cluster_features(&self) -> [f64; 3] {
        [f64::from(self.kpixels).log2(), f64::from(self.fps), self.entropy.max(1e-3).log2()]
    }
}

/// A category together with its corpus weight (the paper weights by total
/// transcode time spent on the category).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WeightedCategory {
    /// The category.
    pub category: VideoCategory,
    /// Non-negative corpus weight.
    pub weight: f64,
}

/// Per-dimension affine normalization of cluster features to `[-1, 1]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FeatureSpace {
    min: [f64; 3],
    max: [f64; 3],
}

impl FeatureSpace {
    /// Fits the normalization to a set of categories.
    ///
    /// # Panics
    ///
    /// Panics if `cats` is empty.
    pub fn fit(cats: &[WeightedCategory]) -> FeatureSpace {
        assert!(!cats.is_empty(), "cannot fit a feature space to no categories");
        let mut min = [f64::INFINITY; 3];
        let mut max = [f64::NEG_INFINITY; 3];
        for wc in cats {
            let f = wc.category.cluster_features();
            for d in 0..3 {
                min[d] = min[d].min(f[d]);
                max[d] = max[d].max(f[d]);
            }
        }
        FeatureSpace { min, max }
    }

    /// Maps a category into the normalized `[-1, 1]³` cube.
    pub fn normalize(&self, cat: &VideoCategory) -> [f64; 3] {
        let f = cat.cluster_features();
        let mut out = [0.0; 3];
        for d in 0..3 {
            let span = (self.max[d] - self.min[d]).max(1e-9);
            out[d] = 2.0 * (f[d] - self.min[d]) / span - 1.0;
        }
        out
    }

    /// Squared Euclidean distance between two categories in normalized
    /// space.
    pub fn distance2(&self, a: &VideoCategory, b: &VideoCategory) -> f64 {
        let (fa, fb) = (self.normalize(a), self.normalize(b));
        fa.iter().zip(&fb).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc(kpix: u32, fps: u32, e: f64, w: f64) -> WeightedCategory {
        WeightedCategory { category: VideoCategory::new(kpix, fps, e), weight: w }
    }

    #[test]
    fn entropy_rounds_to_one_decimal() {
        let c = VideoCategory::new(922, 30, 3.449);
        assert_eq!(c.entropy, 3.4);
        let c = VideoCategory::new(922, 30, 0.06);
        assert_eq!(c.entropy, 0.1);
    }

    #[test]
    fn log_features_compress_resolution_gaps() {
        // 480p -> 4K is ~20x in pixels but only ~4.3 in log2 space.
        let a = VideoCategory::new(410, 30, 1.0);
        let b = VideoCategory::new(8294, 30, 1.0);
        let gap = b.cluster_features()[0] - a.cluster_features()[0];
        assert!((4.0..4.6).contains(&gap), "gap {gap}");
    }

    #[test]
    fn normalization_hits_unit_cube_corners() {
        let cats = vec![wc(410, 24, 0.1, 1.0), wc(8294, 60, 20.0, 1.0), wc(2074, 30, 2.0, 1.0)];
        let space = FeatureSpace::fit(&cats);
        let lo = space.normalize(&cats[0].category);
        let hi = space.normalize(&cats[1].category);
        for d in 0..3 {
            assert!((lo[d] + 1.0).abs() < 1e-9, "low corner dim {d}: {}", lo[d]);
            assert!((hi[d] - 1.0).abs() < 1e-9, "high corner dim {d}: {}", hi[d]);
        }
        let mid = space.normalize(&cats[2].category);
        for v in mid {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let cats = vec![wc(410, 24, 0.1, 1.0), wc(8294, 60, 20.0, 1.0)];
        let space = FeatureSpace::fit(&cats);
        let (a, b) = (cats[0].category, cats[1].category);
        assert_eq!(space.distance2(&a, &a), 0.0);
        assert!((space.distance2(&a, &b) - space.distance2(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fps_rejected() {
        let _ = VideoCategory::new(410, 0, 1.0);
    }
}
