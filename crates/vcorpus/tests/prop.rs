//! Property-based tests on clustering and corpus invariants.

use proptest::prelude::*;
use vcorpus::category::{FeatureSpace, VideoCategory, WeightedCategory};
use vcorpus::coverage::coverage_fraction;
use vcorpus::kmeans::{kmeans, WeightedPoint};

fn point_strategy() -> impl Strategy<Value = WeightedPoint> {
    (prop::array::uniform3(-1.0f64..1.0), 0.1f64..10.0)
        .prop_map(|(pos, weight)| WeightedPoint { pos, weight })
}

fn category_strategy() -> impl Strategy<Value = WeightedCategory> {
    (37u32..9000, 10u32..=60, 0.05f64..40.0, 0.1f64..100.0).prop_map(|(k, f, e, w)| {
        WeightedCategory { category: VideoCategory::new(k, f, e), weight: w }
    })
}

proptest! {
    #[test]
    fn kmeans_partitions_all_points(
        points in prop::collection::vec(point_strategy(), 8..60),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let k = k.min(points.len());
        let clusters = kmeans(&points, k, 25, seed);
        let mut seen = vec![false; points.len()];
        for c in &clusters {
            prop_assert!(!c.members.is_empty(), "empty cluster survived");
            for &m in &c.members {
                prop_assert!(!seen[m], "point {m} in two clusters");
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "point unassigned");
        prop_assert!(clusters.len() <= k);
    }

    #[test]
    fn kmeans_centroids_inside_bounding_box(
        points in prop::collection::vec(point_strategy(), 10..50),
        seed in any::<u64>(),
    ) {
        let clusters = kmeans(&points, 4.min(points.len()), 25, seed);
        for c in &clusters {
            for d in 0..3 {
                let min = points.iter().map(|p| p.pos[d]).fold(f64::INFINITY, f64::min);
                let max = points.iter().map(|p| p.pos[d]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(c.centroid[d] >= min - 1e-9 && c.centroid[d] <= max + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_cluster_weight_conserved(
        points in prop::collection::vec(point_strategy(), 6..40),
        seed in any::<u64>(),
    ) {
        let clusters = kmeans(&points, 3.min(points.len()), 25, seed);
        let total: f64 = points.iter().map(|p| p.weight).sum();
        let clustered: f64 = clusters.iter().map(|c| c.weight(&points)).sum();
        prop_assert!((total - clustered).abs() < 1e-9);
    }

    #[test]
    fn category_entropy_rounding_is_idempotent(c in category_strategy()) {
        let again = VideoCategory::new(c.category.kpixels, c.category.fps, c.category.entropy);
        prop_assert_eq!(again, c.category);
    }

    #[test]
    fn normalized_features_stay_in_cube(
        cats in prop::collection::vec(category_strategy(), 2..40),
    ) {
        let space = FeatureSpace::fit(&cats);
        for wc in &cats {
            for v in space.normalize(&wc.category) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn coverage_is_bounded_and_monotone_in_radius(
        cats in prop::collection::vec(category_strategy(), 5..30),
        r1 in 0.05f64..0.5,
        r2 in 0.05f64..0.5,
    ) {
        let dataset: Vec<VideoCategory> = cats.iter().take(3).map(|c| c.category).collect();
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        let f_lo = coverage_fraction(&dataset, &cats, lo);
        let f_hi = coverage_fraction(&dataset, &cats, hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!((0.0..=1.0).contains(&f_hi));
        prop_assert!(f_hi >= f_lo, "coverage must grow with radius: {f_lo} vs {f_hi}");
    }
}
