//! A minimal JSON reader for validating trace streams.
//!
//! The workspace is dependency-free, so the JSONL sink's counterpart — the
//! `vtrace-check` schema validator and the integration tests that parse
//! trace files back — needs its own parser. This is a straightforward
//! recursive-descent reader of the full JSON grammar (strings with
//! `\uXXXX` escapes including surrogate pairs, numbers via `f64`,
//! arrays, objects) with a depth limit instead of unbounded recursion.
//! It is a *reader*: numbers all come back as `f64`, which is exact for
//! the integer ranges the trace schema uses (ids, microseconds, counts
//! up to 2^53).

/// Maximum nesting depth accepted (the trace schema uses 2).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as key/value pairs in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Why parsing failed, with a byte offset into the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Static description.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => Err(self.err("invalid number")),
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|c| (c as char).to_digit(16));
            match d {
                Some(d) => {
                    code = code * 16 + d;
                    self.pos += 1;
                }
                None => return Err(self.err("invalid \\u escape")),
            }
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "lone high surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        match v.get("a").unwrap() {
            Value::Array(items) => {
                assert_eq!(items[0].as_u64(), Some(1));
                assert!(items[1].get("b").unwrap().is_null());
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"}", "01x", "nul", "1 2", "\"\\q\"", "NaN"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_lone_surrogates() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ud83d\u0041""#).is_err());
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_truncated_input_at_every_cut() {
        // Every strict prefix of a valid document must fail, not panic
        // and not parse — the shape a reader hits when it races an
        // in-progress append.
        let doc = r#"{"kind":"span","name":"aA😀","vals":[1,-2.5e1,null]}"#;
        for cut in 1..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            assert!(parse(&doc[..cut]).is_err(), "prefix {:?} should fail", &doc[..cut]);
        }
        assert!(parse(doc).is_ok());
    }

    #[test]
    fn depth_limit_bounds_recursion() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert_eq!(parse(&too_deep).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn surrogate_pair_boundaries_round_trip() {
        // The extremes of the astral range and both lone-half failures.
        assert_eq!(parse(r#""𐀀""#).unwrap().as_str(), Some("\u{10000}"));
        assert_eq!(parse(r#""􏿿""#).unwrap().as_str(), Some("\u{10FFFF}"));
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\ud800\ud800""#).is_err(), "high followed by high");
    }

    #[test]
    fn control_characters_must_be_escaped() {
        assert!(parse("\"a\nb\"").is_err(), "raw newline in string");
        assert!(parse("\"a\u{0001}b\"").is_err(), "raw control byte");
        assert_eq!(parse(r#""a\u0001b""#).unwrap().as_str(), Some("a\u{0001}b"));
    }

    #[test]
    fn multi_byte_utf8_passes_through_unescaped() {
        let v = parse("\"héllo — 世界 😀\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — 世界 😀"));
    }

    #[test]
    fn get_returns_the_first_duplicate_key() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
    }
}
