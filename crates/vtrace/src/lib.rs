//! vtrace: dependency-free structured spans, counters, and encode
//! telemetry for the vbench transcode stack.
//!
//! The crate is a deliberately small tracing runtime in the style of the
//! workspace's other offline stand-ins (vrand, vcriterion): no external
//! dependencies, one global collector, and an API surface of free
//! functions so call sites stay one line.
//!
//! Three ideas carry the design:
//!
//! * **Hierarchical timed spans.** [`span`] opens a RAII guard; the
//!   current span per thread is tracked on a thread-local stack, so
//!   nested spans parent automatically and closing is just `Drop`.
//!   Cross-thread parenting (a farm worker under its batch span) is
//!   explicit via [`span_with_parent`].
//! * **Typed metrics.** [`counter`] / [`gauge`] / [`histogram`] write
//!   monotonic totals, last-value samples, and log2-bucketed
//!   distributions (see [`metrics::Log2Histogram`]) keyed by static
//!   names.
//! * **Negligible overhead when disabled.** Every entry point first
//!   checks one relaxed atomic load of the global [`Level`]; at
//!   [`Level::Off`] (the default) no clock is read, no lock is taken,
//!   and no allocation happens.
//!
//! At the end of a run, [`drain`] snapshots everything into a
//! [`report::TraceReport`], which renders either as a human-readable
//! span-tree summary or a machine-readable JSONL event stream.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime};

pub mod json;
pub mod metrics;
pub mod report;

use metrics::Log2Histogram;
use report::{LogRecord, SpanRecord, TraceReport};

/// How much the runtime records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is recorded; every entry point is a single atomic load.
    Off = 0,
    /// Spans, metrics, and info-or-worse log events are recorded.
    Summary = 1,
    /// Everything, including debug log events and sampled per-frame
    /// encoder stage spans.
    Verbose = 2,
}

impl Level {
    /// Parses `"off"`, `"summary"`, or `"verbose"`.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "summary" => Some(Level::Summary),
            "verbose" => Some(Level::Verbose),
            _ => None,
        }
    }
}

/// Severity of a log event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Recorded at `verbose` only.
    Debug,
    /// Recorded at `summary` and above.
    Info,
    /// Always printed to stderr; recorded whenever tracing is enabled.
    Error,
}

impl LogLevel {
    /// The lowercase name used in the JSONL stream.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Error => "error",
        }
    }
}

/// A typed span annotation value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (frame counts, bits, ids).
    U64(u64),
    /// Float (seconds, dB, ratios).
    F64(f64),
    /// Static or formatted text (backend, codec, preset names).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl FieldValue {
    /// Renders the value as a JSON literal.
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::F64(v) => report::json_number(*v),
            FieldValue::Str(s) => report::json_string(s),
            FieldValue::Bool(b) => b.to_string(),
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (also widening `U64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(v) => Some(*v),
            FieldValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// Global recording level. Relaxed ordering is enough: the level is set
/// once at startup before any instrumented work, and a stale read merely
/// drops or keeps one extra event.
static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Monotonic clock origin; all event times are µs since this instant.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Wall-clock time of the trace epoch, in microseconds since the Unix
/// epoch. Captured at the same moment as [`EPOCH`] so traces from
/// different processes can be rebased onto one timebase at merge time
/// (the JSONL header records it).
static WALL_EPOCH: OnceLock<u64> = OnceLock::new();

fn capture_epoch() -> &'static Instant {
    WALL_EPOCH.get_or_init(|| {
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    });
    EPOCH.get_or_init(Instant::now)
}

/// Wall-clock time of this process's trace epoch (µs since the Unix
/// epoch). Pins the epoch as a side effect if nothing has yet.
pub fn wall_epoch_unix_us() -> u64 {
    capture_epoch();
    *WALL_EPOCH.get().expect("wall epoch pinned by capture_epoch")
}

/// Next span id. Ids are process-wide so parents can be referenced
/// across threads.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Next dense thread id (0 = first thread to trace).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Everything recorded since the last [`drain`].
#[derive(Default)]
struct Collector {
    spans: Vec<SpanRecord>,
    logs: Vec<LogRecord>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Log2Histogram>,
}

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    spans: Vec::new(),
    logs: Vec::new(),
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

thread_local! {
    /// Stack of open span ids on this thread; the top is the current
    /// parent for new spans.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's dense id, assigned on first traced event.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Sets the global recording level. Also pins the trace epoch so the
/// first event does not pay the `OnceLock` initialization race.
pub fn set_level(level: Level) {
    capture_epoch();
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current recording level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Summary,
        _ => Level::Verbose,
    }
}

/// Whether anything is being recorded. This is the hot-path gate: one
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != Level::Off as u8
}

/// Whether verbose-only instrumentation (per-frame encoder stage
/// sampling, debug logs) should run.
#[inline]
pub fn verbose() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Verbose as u8
}

/// Microseconds since the trace epoch.
fn now_us() -> u64 {
    capture_epoch().elapsed().as_micros() as u64
}

fn lock_collector() -> std::sync::MutexGuard<'static, Collector> {
    // A panic while holding this mutex poisons it; telemetry should
    // never take the process down, so recover the data.
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard for an open span. Created by [`span`] /
/// [`span_with_parent`]; the span closes (and is recorded) when the
/// guard drops. A guard created while tracing is disabled is inert.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    thread: u64,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// The span's id, usable as an explicit parent for spans opened on
    /// other threads. `None` when tracing is disabled.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.id)
    }

    /// Attaches a typed field to the span. No-op on an inert guard.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = inner.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop by id, not position: guards may drop out of order if
            // one is moved out of scope.
            if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                stack.remove(pos);
            }
        });
        lock_collector().spans.push(SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            thread: inner.thread,
            start_us: inner.start_us,
            dur_us,
            fields: inner.fields,
        });
    }
}

/// Opens a span parented to the current span on this thread (if any).
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let parent = current_span();
    open_span(name, parent)
}

/// Opens a span with an explicit parent id — the cross-thread variant
/// (e.g. a farm worker span under the batch span opened on the main
/// thread). `parent: None` makes a root span.
pub fn span_with_parent(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    open_span(name, parent)
}

fn open_span(name: &'static str, parent: Option<u64>) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPAN_STACK.with(|stack| stack.borrow_mut().push(id));
    SpanGuard {
        inner: Some(OpenSpan {
            id,
            parent,
            name,
            thread: THREAD_ID.with(|t| *t),
            start: Instant::now(),
            start_us: now_us(),
            fields: Vec::new(),
        }),
    }
}

/// The id of the innermost open span on this thread, if any.
pub fn current_span() -> Option<u64> {
    if !enabled() {
        return None;
    }
    SPAN_STACK.with(|stack| stack.borrow().last().copied())
}

/// Records a pre-timed stage as a completed child span of the current
/// span. Used where the cost of a guard per call would distort the
/// measurement (e.g. encoder inner loops time a stage with a bare
/// `Instant` and report the accumulated total once per frame).
pub fn stage(name: &'static str, dur_secs: f64) {
    if !enabled() {
        return;
    }
    let dur_us = (dur_secs * 1e6).max(0.0) as u64;
    let end_us = now_us();
    lock_collector().spans.push(SpanRecord {
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent: SPAN_STACK.with(|stack| stack.borrow().last().copied()),
        name,
        thread: THREAD_ID.with(|t| *t),
        start_us: end_us.saturating_sub(dur_us),
        dur_us,
        fields: Vec::new(),
    });
}

/// Adds `delta` to the named monotonic counter.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    *lock_collector().counters.entry(name).or_insert(0) += delta;
}

/// Sets the named gauge to its latest value.
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    lock_collector().gauges.insert(name, value);
}

/// Records one sample into the named log2 histogram.
pub fn histogram(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    lock_collector().histograms.entry(name).or_default().record(value);
}

fn log(level: LogLevel, target: &'static str, message: String) {
    if level == LogLevel::Error {
        // Errors always reach the operator, traced or not.
        eprintln!("[error] {target}: {message}");
    }
    let recorded = match level {
        LogLevel::Error => enabled(),
        LogLevel::Info => enabled(),
        LogLevel::Debug => verbose(),
    };
    if !recorded {
        return;
    }
    if level == LogLevel::Info && verbose() {
        eprintln!("[info] {target}: {message}");
    }
    if level == LogLevel::Debug {
        eprintln!("[debug] {target}: {message}");
    }
    let t_us = now_us();
    lock_collector().logs.push(LogRecord { level, target, message, t_us });
}

/// Emits an error event: always printed to stderr, recorded when
/// tracing is enabled.
pub fn error(target: &'static str, message: impl Into<String>) {
    log(LogLevel::Error, target, message.into());
}

/// Emits an info event: recorded at `summary`, also printed to stderr
/// at `verbose`.
pub fn info(target: &'static str, message: impl Into<String>) {
    log(LogLevel::Info, target, message.into());
}

/// Emits a debug event: recorded and printed at `verbose` only.
///
/// The message is built lazily so disabled call sites pay nothing.
pub fn debug(target: &'static str, message: impl FnOnce() -> String) {
    if !verbose() {
        return;
    }
    log(LogLevel::Debug, target, message());
}

/// Snapshots and clears everything recorded so far.
pub fn drain() -> TraceReport {
    let mut collector = lock_collector();
    TraceReport {
        epoch_unix_us: wall_epoch_unix_us(),
        pid: u64::from(std::process::id()),
        spans: std::mem::take(&mut collector.spans),
        logs: std::mem::take(&mut collector.logs),
        counters: std::mem::take(&mut collector.counters),
        gauges: std::mem::take(&mut collector.gauges),
        histograms: std::mem::take(&mut collector.histograms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector and level are process-global; tests that toggle
    /// them must not interleave.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn with_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
        let _guard = TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_level(level);
        drain();
        let result = f();
        set_level(Level::Off);
        drain();
        result
    }

    #[test]
    fn disabled_tracing_emits_zero_events() {
        let report = with_level(Level::Off, || {
            let mut s = span("should-not-exist");
            s.record("k", 1u64);
            assert_eq!(s.id(), None);
            drop(s);
            stage("stage", 0.5);
            counter("c", 3);
            gauge("g", 1.0);
            histogram("h", 9);
            info("t", "dropped");
            debug("t", || panic!("must not be built"));
            drain()
        });
        assert!(report.is_empty(), "off level must record nothing");
    }

    #[test]
    fn nested_spans_parent_and_nest_in_time() {
        let report = with_level(Level::Summary, || {
            let mut outer = span("outer");
            outer.record("label", "o");
            let outer_id = outer.id().unwrap();
            {
                let inner = span("inner");
                assert_eq!(current_span(), inner.id());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(current_span(), Some(outer_id));
            drop(outer);
            drain()
        });
        assert_eq!(report.spans.len(), 2);
        // Spans land in completion order: inner first.
        let inner = &report.spans[0];
        let outer = &report.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        // Timing monotonicity: the child starts no earlier and ends no
        // later than the parent.
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        assert!(inner.dur_us >= 2_000, "slept 2 ms, got {} µs", inner.dur_us);
        assert_eq!(outer.field("label").unwrap().as_str(), Some("o"));
    }

    #[test]
    fn explicit_parent_links_across_threads() {
        let report = with_level(Level::Summary, || {
            let batch = span("batch");
            let batch_id = batch.id();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let worker = span_with_parent("worker", batch_id);
                    let job = span("job");
                    assert_eq!(job.inner.as_ref().unwrap().parent, worker.id());
                });
            });
            drop(batch);
            drain()
        });
        let by_name = |n: &str| report.spans.iter().find(|s| s.name == n).unwrap();
        let batch = by_name("batch");
        let worker = by_name("worker");
        let job = by_name("job");
        assert_eq!(worker.parent, Some(batch.id));
        assert_eq!(job.parent, Some(worker.id));
        assert_ne!(worker.thread, batch.thread);
    }

    #[test]
    fn stage_records_synthesized_child() {
        let report = with_level(Level::Summary, || {
            let frame = span("frame");
            stage("motion", 0.001);
            drop(frame);
            drain()
        });
        let motion = report.spans.iter().find(|s| s.name == "motion").unwrap();
        let frame = report.spans.iter().find(|s| s.name == "frame").unwrap();
        assert_eq!(motion.parent, Some(frame.id));
        assert_eq!(motion.dur_us, 1_000);
    }

    #[test]
    fn metrics_accumulate() {
        let report = with_level(Level::Summary, || {
            counter("jobs", 2);
            counter("jobs", 3);
            gauge("util", 0.25);
            gauge("util", 0.75);
            histogram("wait", 10);
            histogram("wait", 1000);
            drain()
        });
        assert_eq!(report.counters["jobs"], 5);
        assert_eq!(report.gauges["util"], 0.75);
        assert_eq!(report.histograms["wait"].count(), 2);
        assert_eq!(report.histograms["wait"].max(), 1000);
    }

    #[test]
    fn log_levels_gate_recording() {
        let report = with_level(Level::Summary, || {
            info("t", "kept");
            debug("t", || "dropped at summary".to_string());
            drain()
        });
        assert_eq!(report.logs.len(), 1);
        assert_eq!(report.logs[0].level, LogLevel::Info);
        assert_eq!(report.logs[0].message, "kept");

        let report = with_level(Level::Verbose, || {
            debug("t", || "kept at verbose".to_string());
            drain()
        });
        assert_eq!(report.logs.len(), 1);
        assert_eq!(report.logs[0].level, LogLevel::Debug);
    }

    #[test]
    fn jsonl_sink_round_trips_through_parser() {
        let report = with_level(Level::Summary, || {
            let mut s = span("needs \"escaping\"\n\ttab");
            s.record("codec", "h264");
            s.record("frames", 120u64);
            s.record("psnr", 41.5f64);
            s.record("hw", false);
            drop(s);
            info("vbench", "path with \\ backslash and \u{1}");
            counter("c", 7);
            gauge("g", f64::NAN);
            histogram("h", 3);
            drain()
        });
        let jsonl = report.to_jsonl();
        let mut kinds = Vec::new();
        for line in jsonl.lines() {
            let v = json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            let kind = v.get("kind").unwrap().as_str().unwrap().to_string();
            match kind.as_str() {
                "span" => {
                    assert_eq!(v.get("name").unwrap().as_str(), Some("needs \"escaping\"\n\ttab"));
                    let fields = v.get("fields").unwrap();
                    assert_eq!(fields.get("codec").unwrap().as_str(), Some("h264"));
                    assert_eq!(fields.get("frames").unwrap().as_u64(), Some(120));
                    assert_eq!(fields.get("psnr").unwrap().as_f64(), Some(41.5));
                    assert_eq!(fields.get("hw").unwrap().as_bool(), Some(false));
                }
                "log" => {
                    assert_eq!(
                        v.get("message").unwrap().as_str(),
                        Some("path with \\ backslash and \u{1}")
                    );
                }
                "gauge" => assert!(v.get("value").unwrap().is_null(), "NaN gauge must be null"),
                "counter" => assert_eq!(v.get("value").unwrap().as_u64(), Some(7)),
                "histogram" => assert_eq!(v.get("count").unwrap().as_u64(), Some(1)),
                "header" => {
                    assert_eq!(v.get("version").unwrap().as_u64(), Some(1));
                    assert!(v.get("epoch_unix_us").unwrap().as_u64().is_some());
                    assert_eq!(v.get("pid").unwrap().as_u64(), Some(u64::from(std::process::id())));
                }
                other => panic!("unexpected kind {other}"),
            }
            kinds.push(kind);
        }
        assert_eq!(kinds.first().map(String::as_str), Some("header"), "header must lead");
        for expected in ["header", "span", "log", "counter", "gauge", "histogram"] {
            assert!(kinds.iter().any(|k| k == expected), "missing {expected}");
        }
    }

    #[test]
    fn summary_renders_span_tree() {
        let report = with_level(Level::Summary, || {
            let outer = span("suite");
            {
                let _inner = span("transcode");
            }
            {
                let _inner = span("transcode");
            }
            drop(outer);
            counter("farm.jobs_completed", 2);
            drain()
        });
        let text = report.summary();
        assert!(text.contains("suite"), "{text}");
        assert!(text.contains("  transcode"), "{text}");
        assert!(text.contains("farm.jobs_completed"), "{text}");
    }
}
