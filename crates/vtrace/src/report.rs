//! Trace sinks: the machine-readable JSONL event stream and the
//! human-readable span-tree / metrics summary.
//!
//! Both render a [`TraceReport`], the immutable snapshot returned by
//! [`crate::drain`]. Everything here is plain string building — sinks
//! run once at end-of-run, never on the hot path.

use std::collections::BTreeMap;

use crate::metrics::Log2Histogram;
use crate::{FieldValue, LogLevel};

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id (process-wide, monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Static span name (e.g. `"transcode"`).
    pub name: &'static str,
    /// Originating thread (small dense id, not the OS tid).
    pub thread: u64,
    /// Start time in microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Typed key/value annotations recorded while the span was open.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One log event.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Severity.
    pub level: LogLevel,
    /// Static subsystem tag (e.g. `"vbench"`, `"farm"`).
    pub target: &'static str,
    /// Message text.
    pub message: String,
    /// Event time in microseconds since the trace epoch.
    pub t_us: u64,
}

/// Everything the collector gathered between two [`crate::drain`] calls.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Wall-clock time of this process's trace epoch (µs since the Unix
    /// epoch). All span/log timestamps are relative to it, so two
    /// reports from different processes can be rebased onto a shared
    /// timebase: `start_us + (epoch_unix_us - other.epoch_unix_us)`.
    pub epoch_unix_us: u64,
    /// Process id of the emitting process.
    pub pid: u64,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Log events in emission order.
    pub logs: Vec<LogRecord>,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, Log2Histogram>,
}

impl TraceReport {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.logs.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Serializes the report as JSON Lines: one event object per line.
    ///
    /// The first line is always the stream header; event kinds and
    /// their required keys:
    ///
    /// * `header` — `version`, `epoch_unix_us`, `pid`; merged worker
    ///   streams additionally carry `rebased_offset_us`
    /// * `span` — `id`, `parent` (number or null), `name`, `thread`,
    ///   `start_us`, `dur_us`, `fields` (object)
    /// * `log` — `t_us`, `level`, `target`, `message`
    /// * `counter` — `name`, `value`
    /// * `gauge` — `name`, `value` (number or null if non-finite)
    /// * `histogram` — `name`, `count`, `sum`, `min`, `max`, `mean`,
    ///   `p50`, `p90`, `p95`, `p99`
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"kind\":\"header\",\"version\":1,\"epoch_unix_us\":{},\"pid\":{}}}\n",
            self.epoch_unix_us, self.pid,
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"kind\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"thread\":{},\
                 \"start_us\":{},\"dur_us\":{},\"fields\":{{",
                s.id,
                match s.parent {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                },
                json_string(s.name),
                s.thread,
                s.start_us,
                s.dur_us,
            ));
            for (i, (key, value)) in s.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(key));
                out.push(':');
                out.push_str(&value.to_json());
            }
            out.push_str("}}\n");
        }
        for l in &self.logs {
            out.push_str(&format!(
                "{{\"kind\":\"log\",\"t_us\":{},\"level\":{},\"target\":{},\"message\":{}}}\n",
                l.t_us,
                json_string(l.level.name()),
                json_string(l.target),
                json_string(&l.message),
            ));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json_string(name),
                value
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_string(name),
                json_number(*value)
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\
                 \"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}\n",
                json_string(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                json_number(h.mean()),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
        out
    }

    /// Writes the JSONL stream to `path`.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Renders the human-readable end-of-run summary: an aggregated span
    /// tree (spans grouped by name within their parent group) followed by
    /// the metrics tables. Intended for stderr so stdout report output
    /// stays untouched.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!("── span tree ({} spans) {:─<28}\n", self.spans.len(), ""));
            out.push_str(&format!(
                "{:<44} {:>6} {:>12} {:>12}\n",
                "span", "count", "total", "mean"
            ));
            render_span_tree(&mut out, &self.spans);
        }
        if !self.counters.is_empty() {
            out.push_str("── counters ─────────────────────────────────────\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<44} {value:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("── gauges ───────────────────────────────────────\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<44} {value:>12.4}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("── histograms ───────────────────────────────────\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{name:<32} count {:>7}  mean {:>10.1}  p50 {:>8}  p95 {:>8}  p99 {:>8}  max {:>8}\n",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max(),
                ));
            }
        }
        out
    }
}

/// Aggregated node of the rendered span tree.
#[derive(Default)]
struct TreeNode {
    count: u64,
    total_us: u64,
    children: BTreeMap<&'static str, TreeNode>,
}

fn render_span_tree(out: &mut String, spans: &[SpanRecord]) {
    // Group children under each parent id; spans whose parent was never
    // recorded (still open at drain, or cross-thread roots) are roots.
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut by_parent: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        let parent = s.parent.filter(|p| known.contains(p));
        by_parent.entry(parent).or_default().push(s);
    }
    let mut root = TreeNode::default();
    for s in by_parent.get(&None).cloned().unwrap_or_default() {
        accumulate(&mut root, s, &by_parent);
    }
    render_node(out, &root, 0);
}

fn accumulate<'a>(
    parent: &mut TreeNode,
    span: &'a SpanRecord,
    by_parent: &BTreeMap<Option<u64>, Vec<&'a SpanRecord>>,
) {
    let node = parent.children.entry(span.name).or_default();
    node.count += 1;
    node.total_us += span.dur_us;
    for child in by_parent.get(&Some(span.id)).cloned().unwrap_or_default() {
        accumulate(node, child, by_parent);
    }
}

fn render_node(out: &mut String, node: &TreeNode, depth: usize) {
    // Largest total first at each level.
    let mut children: Vec<(&&str, &TreeNode)> = node.children.iter().collect();
    children.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
    for (name, child) in children {
        let label = format!("{:indent$}{name}", "", indent = depth * 2);
        out.push_str(&format!(
            "{label:<44} {:>6} {:>12} {:>12}\n",
            child.count,
            fmt_dur_us(child.total_us),
            fmt_dur_us(child.total_us / child.count.max(1)),
        ));
        render_node(out, child, depth + 1);
    }
}

/// Human duration: µs under 1 ms, ms under 1 s, seconds above.
fn fmt_dur_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{:.3} s", us as f64 / 1e6)
    }
}

/// JSON string literal (quoted, escaped).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite values become `null` (JSON has no
/// NaN/Infinity).
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}
