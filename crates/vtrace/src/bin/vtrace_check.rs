//! vtrace-check: validates a vtrace JSONL event stream.
//!
//! Usage: `vtrace-check <trace.jsonl>`
//!
//! Every line must parse as JSON and carry a known `kind` with that
//! kind's required, correctly-typed keys; span `parent` references must
//! resolve to span ids present in the stream. The first line must be
//! the stream `header`; any later header must be a rebased worker
//! header (carrying `rebased_offset_us`) — a second base header means
//! two raw traces were concatenated without timestamp rebasing, which
//! is rejected, as are event timestamps that fall before the offset of
//! the most recent header (non-monotonic merge). Exit codes: 0 valid,
//! 1 invalid stream (details on stderr), 2 usage error.

use std::collections::HashSet;
use std::process::ExitCode;

use vtrace::json::{self, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: vtrace-check <trace.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("vtrace-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut events = Vec::new();
    let mut errors = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(v) => events.push((lineno + 1, v)),
            Err(e) => {
                eprintln!("line {}: not valid JSON: {e}", lineno + 1);
                errors += 1;
            }
        }
    }

    // First pass: collect span ids so parent references can be checked.
    let mut span_ids = HashSet::new();
    for (lineno, event) in &events {
        if event.get("kind").and_then(Value::as_str) == Some("span") {
            match event.get("id").and_then(Value::as_u64) {
                Some(id) => {
                    if !span_ids.insert(id) {
                        eprintln!("line {lineno}: duplicate span id {id}");
                        errors += 1;
                    }
                }
                None => {
                    eprintln!("line {lineno}: span without numeric id");
                    errors += 1;
                }
            }
        }
    }

    let mut counts = [0usize; 6]; // header, span, log, counter, gauge, histogram
                                  // Offset (µs on the base timebase) of the most recent header; all
                                  // subsequent event timestamps must be at or after it, which is what
                                  // catches merged worker streams that were never rebased.
    let mut current_offset = 0u64;
    let mut headers_seen = 0usize;
    for (lineno, event) in &events {
        let mut fail = |msg: String| {
            eprintln!("line {lineno}: {msg}");
            errors += 1;
        };
        let Some(kind) = event.get("kind").and_then(Value::as_str) else {
            fail("missing string \"kind\"".to_string());
            continue;
        };
        if headers_seen == 0 && kind != "header" {
            fail(format!("stream must begin with a header line, found {kind:?}"));
            headers_seen = 1; // report only once
        }
        match kind {
            "header" => {
                counts[0] += 1;
                headers_seen += 1;
                for key in ["version", "epoch_unix_us", "pid"] {
                    if event.get(key).and_then(Value::as_u64).is_none() {
                        fail(format!("header missing numeric \"{key}\""));
                    }
                }
                match event.get("rebased_offset_us") {
                    Some(v) => match v.as_u64() {
                        Some(offset) => current_offset = offset,
                        None => fail("header rebased_offset_us must be numeric".to_string()),
                    },
                    None if counts[0] > 1 => fail(
                        "second base header: streams concatenated without rebasing".to_string(),
                    ),
                    None => {}
                }
            }
            "span" => {
                counts[1] += 1;
                for key in ["thread", "start_us", "dur_us"] {
                    if event.get(key).and_then(Value::as_u64).is_none() {
                        fail(format!("span missing numeric \"{key}\""));
                    }
                }
                if let Some(start) = event.get("start_us").and_then(Value::as_u64) {
                    if start < current_offset {
                        fail(format!(
                            "span start_us {start} precedes current stream offset \
                             {current_offset} (non-monotonic merge)"
                        ));
                    }
                }
                if event.get("name").and_then(Value::as_str).is_none() {
                    fail("span missing string \"name\"".to_string());
                }
                if !matches!(event.get("fields"), Some(Value::Object(_))) {
                    fail("span missing object \"fields\"".to_string());
                }
                match event.get("parent") {
                    Some(p) if p.is_null() => {}
                    Some(p) => match p.as_u64() {
                        Some(id) if span_ids.contains(&id) => {}
                        Some(id) => fail(format!("span parent {id} not present in stream")),
                        None => fail("span parent must be a span id or null".to_string()),
                    },
                    None => fail("span missing \"parent\"".to_string()),
                }
            }
            "log" => {
                counts[2] += 1;
                match event.get("t_us").and_then(Value::as_u64) {
                    None => fail("log missing numeric \"t_us\"".to_string()),
                    Some(t) if t < current_offset => fail(format!(
                        "log t_us {t} precedes current stream offset {current_offset} \
                         (non-monotonic merge)"
                    )),
                    Some(_) => {}
                }
                match event.get("level").and_then(Value::as_str) {
                    Some("debug" | "info" | "error") => {}
                    _ => fail("log level must be debug|info|error".to_string()),
                }
                for key in ["target", "message"] {
                    if event.get(key).and_then(Value::as_str).is_none() {
                        fail(format!("log missing string \"{key}\""));
                    }
                }
            }
            "counter" => {
                counts[3] += 1;
                if event.get("name").and_then(Value::as_str).is_none() {
                    fail("counter missing string \"name\"".to_string());
                }
                if event.get("value").and_then(Value::as_u64).is_none() {
                    fail("counter value must be a non-negative integer".to_string());
                }
            }
            "gauge" => {
                counts[4] += 1;
                if event.get("name").and_then(Value::as_str).is_none() {
                    fail("gauge missing string \"name\"".to_string());
                }
                match event.get("value") {
                    Some(v) if v.is_null() || v.as_f64().is_some() => {}
                    _ => fail("gauge value must be a number or null".to_string()),
                }
            }
            "histogram" => {
                counts[5] += 1;
                if event.get("name").and_then(Value::as_str).is_none() {
                    fail("histogram missing string \"name\"".to_string());
                }
                for key in ["count", "sum", "min", "max", "p50", "p90", "p95", "p99"] {
                    if event.get(key).and_then(Value::as_f64).is_none() {
                        fail(format!("histogram missing numeric \"{key}\""));
                    }
                }
            }
            other => fail(format!("unknown kind {other:?}")),
        }
    }

    if errors > 0 {
        eprintln!("vtrace-check: {errors} error(s) in {path}");
        return ExitCode::from(1);
    }
    println!(
        "vtrace-check: {} OK ({} headers, {} spans, {} logs, {} counters, {} gauges, \
         {} histograms)",
        path, counts[0], counts[1], counts[2], counts[3], counts[4], counts[5]
    );
    ExitCode::SUCCESS
}
