//! Typed metric instruments: counters, gauges, and a fixed-bucket log2
//! histogram.
//!
//! Counters and gauges are plain map entries owned by the collector (see
//! the crate root); the histogram is the one instrument with structure of
//! its own. It uses power-of-two buckets so recording is a couple of
//! integer instructions — no allocation, no comparison ladder — and the
//! memory footprint is fixed regardless of how many values are recorded.

/// Number of buckets in a [`Log2Histogram`]: bucket 0 holds exact zeros,
/// bucket `i` (1..=64) holds values in `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram over `u64` samples.
///
/// Bucket boundaries are powers of two, so any recorded value lands in
/// its bucket with a single `leading_zeros`. Quantiles are read out as
/// the *upper bound* of the bucket containing the requested rank (clamped
/// to the exact maximum seen), which bounds the relative error of any
/// quantile by 2x — plenty for latency telemetry, and the trade that
/// keeps recording allocation-free on hot paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Log2Histogram {
        Log2Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index a value lands in: 0 for zero, otherwise
    /// `floor(log2(value)) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `[lo, hi]` range of values bucket `index` holds.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HIST_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HIST_BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample seen (0 for an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`, clamped): the upper
    /// bound of the bucket containing the sample of rank `ceil(q·count)`,
    /// clamped to the exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Log2Histogram::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        // Bounds agree with the index function at every edge.
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(Log2Histogram::bucket_index(lo), i, "lo edge of bucket {i}");
            assert_eq!(Log2Histogram::bucket_index(hi), i, "hi edge of bucket {i}");
        }
    }

    #[test]
    fn recording_fills_the_right_buckets() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[10], 1); // 1000
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.sum(), 2034);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = Log2Histogram::new();
        for v in 1..=8u64 {
            h.record(v);
        }
        // rank(0.5) = 4, cumulative: b1=1, b2=3, b3=7 -> bucket 3, hi 7.
        assert_eq!(h.quantile(0.5), 7);
        // rank(1.0) = 8 -> bucket 4, hi 15, clamped to max 8.
        assert_eq!(h.quantile(1.0), 8);
        // rank clamps below at 1 -> bucket 1, hi 1.
        assert_eq!(h.quantile(0.0), 1);
        // Quantiles never exceed the true maximum.
        for q in [0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert!(h.quantile(q) <= h.max());
        }
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // True p50 is 500; the bucket upper bound may at most double it.
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1023).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn empty_histogram_reads_as_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(1);
        a.record(100);
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5000);
        assert_eq!(a.min(), 1);
        assert_eq!(a.sum(), 5101);
    }
}
