//! vtrace-check stream contract: headers, rebasing, monotonicity.
//!
//! The validator is the merge safety net: `vbench dispatch` rebases
//! every worker trace onto the dispatcher's timebase before
//! concatenating, and these tests pin that a stream assembled any other
//! way — two raw traces catted together, or events stamped before their
//! segment's offset — is rejected rather than silently analyzed on a
//! broken timeline.

use std::path::PathBuf;
use std::process::Command;

const EXE: &str = env!("CARGO_BIN_EXE_vtrace-check");

/// Writes `lines` to a unique temp file and runs `vtrace-check` on it,
/// returning `(exit_code, stderr)`.
fn check(tag: &str, lines: &[&str]) -> (i32, String) {
    let mut path = std::env::temp_dir();
    path.push(format!("vtrace-check-{}-{tag}.jsonl", std::process::id()));
    std::fs::write(&path, lines.join("\n") + "\n").expect("write stream");
    let out = Command::new(EXE).arg(&path).output().expect("run vtrace-check");
    let _ = std::fs::remove_file(&path);
    (out.status.code().expect("exit code"), String::from_utf8_lossy(&out.stderr).into_owned())
}

const BASE_HEADER: &str = r#"{"kind":"header","version":1,"epoch_unix_us":1000,"pid":1}"#;

fn span(id: u64, start_us: u64) -> String {
    format!(
        "{{\"kind\":\"span\",\"id\":{id},\"parent\":null,\"name\":\"transcode\",\
         \"thread\":0,\"start_us\":{start_us},\"dur_us\":5,\"fields\":{{}}}}"
    )
}

#[test]
fn accepts_a_properly_rebased_merged_stream() {
    let worker_header =
        r#"{"kind":"header","version":1,"epoch_unix_us":1500,"pid":2,"rebased_offset_us":500}"#;
    let (code, err) =
        check("rebased", &[BASE_HEADER, &span(1, 10), worker_header, &span(2, 510), &span(3, 700)]);
    assert_eq!(code, 0, "valid rebased stream rejected:\n{err}");
}

#[test]
fn rejects_concatenated_base_headers() {
    // `cat a.jsonl b.jsonl` — the second stream still starts at its own
    // t=0, so its header has no rebased offset.
    let (code, err) = check("cat", &[BASE_HEADER, &span(1, 10), BASE_HEADER, &span(2, 3)]);
    assert_eq!(code, 1, "concatenated streams must be rejected");
    assert!(err.contains("without rebasing"), "stderr:\n{err}");
}

#[test]
fn rejects_timestamps_before_the_segment_offset() {
    let worker_header =
        r#"{"kind":"header","version":1,"epoch_unix_us":1500,"pid":2,"rebased_offset_us":500}"#;
    // A span stamped before the worker segment's offset means the
    // merge shifted headers but not events.
    let (code, err) = check("stale", &[BASE_HEADER, worker_header, &span(1, 20)]);
    assert_eq!(code, 1, "pre-offset timestamp must be rejected");
    assert!(err.contains("non-monotonic merge"), "stderr:\n{err}");
}

#[test]
fn rejects_streams_that_do_not_start_with_a_header() {
    let (code, err) = check("headerless", &[&span(1, 10)]);
    assert_eq!(code, 1, "headerless stream must be rejected");
    assert!(err.contains("header"), "stderr:\n{err}");
}

#[test]
fn rejects_histograms_missing_p95() {
    let old_hist = r#"{"kind":"histogram","name":"farm.queue_wait_us","count":1,"sum":2,"min":2,"max":2,"mean":2,"p50":2,"p90":2,"p99":2}"#;
    let (code, err) = check("nop95", &[BASE_HEADER, old_hist]);
    assert_eq!(code, 1, "histogram without p95 must be rejected");
    assert!(err.contains("p95"), "stderr:\n{err}");
}

#[test]
fn usage_and_unreadable_files_exit_2() {
    let out = Command::new(EXE).output().expect("run vtrace-check");
    assert_eq!(out.status.code(), Some(2));
    let missing = PathBuf::from("/nonexistent/trace.jsonl");
    let out = Command::new(EXE).arg(&missing).output().expect("run vtrace-check");
    assert_eq!(out.status.code(), Some(2));
}
