//! Adaptive binary arithmetic coding.
//!
//! This is the codec's high-efficiency entropy backend, standing in for
//! CABAC (H.264/HEVC) and the VP9 bool coder — Section 2.1 of the paper
//! names both. The implementation is the classic bool coder: an 8-bit
//! probability, a byte-oriented range coder with carry propagation, and
//! adaptive per-syntax-element [`Context`] models.
//!
//! ```
//! use vcodec::arith::{ArithDecoder, ArithEncoder, Context};
//!
//! let bits = [true, false, false, false, true, false, false, false];
//! let mut enc = ArithEncoder::new();
//! let mut ctx = Context::new(4);
//! for &b in &bits {
//!     enc.encode(&mut ctx, b);
//! }
//! let bytes = enc.finish();
//!
//! let mut dec = ArithDecoder::new(&bytes);
//! let mut ctx = Context::new(4);
//! for &b in &bits {
//!     assert_eq!(dec.decode(&mut ctx), b);
//! }
//! ```

/// An adaptive probability model for one binary syntax element.
///
/// `prob` is the probability that the next bit is `false` (a zero), scaled
/// to 1..=255. The model moves toward each observed bit by `1/2^shift`;
/// smaller shifts adapt faster (the VP9-class encoder uses 4, the AVC-class
/// CABAC stand-in 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Context {
    prob: u8,
    shift: u8,
}

impl Context {
    /// Creates an unbiased context (p(0) = 0.5) with the given adaptation
    /// shift.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is 0 or greater than 7.
    pub fn new(shift: u8) -> Context {
        Context::with_prob(128, shift)
    }

    /// Creates a context with an initial probability (of a zero bit),
    /// 1..=255 scaled.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is 0 or `shift` is 0 or greater than 7.
    pub fn with_prob(prob: u8, shift: u8) -> Context {
        assert!(prob > 0, "probability must be in 1..=255");
        assert!((1..=7).contains(&shift), "adaptation shift must be in 1..=7");
        Context { prob, shift }
    }

    /// Current probability of a zero bit, 1..=255 scaled.
    pub fn prob(&self) -> u8 {
        self.prob
    }

    /// Adapts the model after observing `bit`.
    fn update(&mut self, bit: bool) {
        if bit {
            // A one observed: p(0) decreases.
            let dec = self.prob >> self.shift;
            self.prob = (self.prob - dec).max(1);
        } else {
            let inc = (255 - self.prob) >> self.shift;
            self.prob = (self.prob + inc).clamp(1, 254);
        }
    }
}

/// Arithmetic encoder (bool-coder flavour, 8-bit probabilities).
#[derive(Clone, Debug, Default)]
pub struct ArithEncoder {
    low: u32,
    range: u32,
    /// Bits accumulated toward the next output byte; starts at -24 so the
    /// first three renormalizations only fill the pipeline.
    count: i32,
    out: Vec<u8>,
}

impl ArithEncoder {
    /// Creates an encoder.
    pub fn new() -> ArithEncoder {
        ArithEncoder { low: 0, range: 255, count: -24, out: Vec::new() }
    }

    /// Encodes `bit` with a fixed probability of zero (1..=255 scaled),
    /// without adaptation.
    pub fn encode_with_prob(&mut self, prob: u8, bit: bool) {
        debug_assert!(prob > 0);
        let split = 1 + (((self.range - 1) * u32::from(prob)) >> 8);
        if bit {
            self.low += split;
            self.range -= split;
        } else {
            self.range = split;
        }
        // Renormalize so range is back in [128, 255].
        let mut shift = (self.range.leading_zeros() as i32) - 24;
        self.range <<= shift;
        self.count += shift;
        if self.count >= 0 {
            let offset = shift - self.count;
            if ((self.low << (offset - 1)) & 0x8000_0000) != 0 {
                self.propagate_carry();
            }
            self.out.push((self.low >> (24 - offset)) as u8);
            self.low <<= offset;
            shift = self.count;
            self.low &= 0x00ff_ffff;
            self.count -= 8;
        }
        self.low <<= shift;
    }

    fn propagate_carry(&mut self) {
        for byte in self.out.iter_mut().rev() {
            if *byte == 0xff {
                *byte = 0;
            } else {
                *byte += 1;
                return;
            }
        }
        // Carry out of the leading byte cannot happen for a well-formed
        // coder state (low < 2^24 after each step).
        unreachable!("carry escaped the buffer");
    }

    /// Encodes `bit` under an adaptive context, updating the model.
    pub fn encode(&mut self, ctx: &mut Context, bit: bool) {
        self.encode_with_prob(ctx.prob, bit);
        ctx.update(bit);
    }

    /// Encodes `count` raw bits (p = 0.5 each), MSB first — the "bypass"
    /// path used for sign bits and escape values.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64` or `value` has bits above `count`.
    pub fn encode_bypass(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        if count < 64 {
            assert!(value < (1u64 << count), "value does not fit");
        }
        for i in (0..count).rev() {
            self.encode_with_prob(128, (value >> i) & 1 == 1);
        }
    }

    /// Number of bytes emitted so far (excludes the flush tail).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Flushes the coder and returns the byte buffer.
    ///
    /// The flush drives 32 zero bits through the ordinary coding path (the
    /// classic bool-coder stop sequence), which forces every meaningful bit
    /// of `low` out into the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..32 {
            self.encode_with_prob(128, false);
        }
        self.out
    }
}

/// Arithmetic decoder matching [`ArithEncoder`].
#[derive(Clone, Debug)]
pub struct ArithDecoder<'a> {
    value: u64,
    range: u32,
    /// Bits of `value` still valid above the refill threshold.
    count: i32,
    input: &'a [u8],
    pos: usize,
}

const VALUE_BITS: i32 = 64;

impl<'a> ArithDecoder<'a> {
    /// Creates a decoder over an encoded buffer.
    pub fn new(input: &'a [u8]) -> ArithDecoder<'a> {
        let mut d = ArithDecoder { value: 0, range: 255, count: -8, input, pos: 0 };
        d.refill();
        d
    }

    fn refill(&mut self) {
        while self.count < 0 {
            let byte = if self.pos < self.input.len() {
                let b = self.input[self.pos];
                self.pos += 1;
                b
            } else {
                0
            };
            self.value |= u64::from(byte) << (-self.count + (VALUE_BITS - 16));
            self.count += 8;
        }
    }

    /// Decodes one bit with a fixed probability (must match the encoder's).
    pub fn decode_with_prob(&mut self, prob: u8) -> bool {
        debug_assert!(prob > 0);
        let split = 1 + (((self.range - 1) * u32::from(prob)) >> 8);
        let big_split = u64::from(split) << (VALUE_BITS - 8);
        let bit = self.value >= big_split;
        if bit {
            self.range -= split;
            self.value -= big_split;
        } else {
            self.range = split;
        }
        let shift = (self.range.leading_zeros() as i32) - 24;
        self.range <<= shift;
        self.value <<= shift;
        self.count -= shift;
        if self.count < 0 {
            self.refill();
        }
        bit
    }

    /// Decodes one bit under an adaptive context.
    pub fn decode(&mut self, ctx: &mut Context) -> bool {
        let bit = self.decode_with_prob(ctx.prob);
        ctx.update(bit);
        bit
    }

    /// Decodes `count` bypass bits, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn decode_bypass(&mut self, count: u32) -> u64 {
        assert!(count <= 64);
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.decode_with_prob(128));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bits: &[bool], shift: u8) {
        let mut enc = ArithEncoder::new();
        let mut ctx = Context::new(shift);
        for &b in bits {
            enc.encode(&mut ctx, b);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        let mut ctx = Context::new(shift);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode(&mut ctx), b, "bit {i}");
        }
    }

    #[test]
    fn empty_stream() {
        let enc = ArithEncoder::new();
        let _ = enc.finish(); // must not panic
    }

    #[test]
    fn roundtrip_simple_patterns() {
        roundtrip(&[true; 100], 4);
        roundtrip(&[false; 100], 4);
        let alt: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        roundtrip(&alt, 5);
    }

    #[test]
    fn roundtrip_pseudorandom() {
        let mut x = 0x1234_5678_9abc_def0u64;
        let bits: Vec<bool> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        roundtrip(&bits, 4);
        roundtrip(&bits, 6);
    }

    #[test]
    fn bypass_roundtrip() {
        let mut enc = ArithEncoder::new();
        enc.encode_bypass(0xABCD, 16);
        enc.encode_bypass(0, 1);
        enc.encode_bypass(u64::MAX >> 4, 60);
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        assert_eq!(dec.decode_bypass(16), 0xABCD);
        assert_eq!(dec.decode_bypass(1), 0);
        assert_eq!(dec.decode_bypass(60), u64::MAX >> 4);
    }

    #[test]
    fn skewed_data_compresses_below_one_bit_per_symbol() {
        // 97% zeros: an adaptive context should get well under 8 bits/byte.
        let mut x = 99u64;
        let bits: Vec<bool> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) % 100 >= 97
            })
            .collect();
        let mut enc = ArithEncoder::new();
        let mut ctx = Context::new(4);
        for &b in &bits {
            enc.encode(&mut ctx, b);
        }
        let bytes = enc.finish();
        let bits_per_symbol = (bytes.len() * 8) as f64 / bits.len() as f64;
        assert!(bits_per_symbol < 0.35, "got {bits_per_symbol} bits/symbol");
        // And still decodes exactly.
        let mut dec = ArithDecoder::new(&bytes);
        let mut ctx = Context::new(4);
        for &b in &bits {
            assert_eq!(dec.decode(&mut ctx), b);
        }
    }

    #[test]
    fn mixed_contexts_and_bypass() {
        let mut enc = ArithEncoder::new();
        let mut c1 = Context::new(4);
        let mut c2 = Context::with_prob(200, 5);
        for i in 0..1000u32 {
            enc.encode(&mut c1, i % 3 == 0);
            enc.encode(&mut c2, i % 7 == 0);
            if i % 10 == 0 {
                enc.encode_bypass(u64::from(i), 10);
            }
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        let mut c1 = Context::new(4);
        let mut c2 = Context::with_prob(200, 5);
        for i in 0..1000u32 {
            assert_eq!(dec.decode(&mut c1), i % 3 == 0, "c1 at {i}");
            assert_eq!(dec.decode(&mut c2), i % 7 == 0, "c2 at {i}");
            if i % 10 == 0 {
                assert_eq!(dec.decode_bypass(10), u64::from(i), "bypass at {i}");
            }
        }
    }

    #[test]
    fn context_probability_stays_in_bounds() {
        let mut c = Context::new(1); // fastest adaptation
        for _ in 0..1000 {
            c.update(true);
        }
        assert!(c.prob() >= 1);
        for _ in 0..1000 {
            c.update(false);
        }
        assert!(c.prob() <= 254);
    }
}
