//! Integer block transforms and scan orders.
//!
//! Residual blocks are converted to the 2-D spatial-frequency domain with a
//! separable fixed-point DCT-II (Section 2.1 of the paper), quantized, and
//! scanned in zig-zag order so that the high-frequency zeros introduced by
//! quantization cluster at the end of the scan.
//!
//! Forward and inverse transforms are integer-exact and shared by encoder
//! and decoder, so reconstruction is bit-identical on both sides; the pair
//! is not a perfect inverse (fixed-point rounding costs ≤ 2 per sample),
//! which is dwarfed by quantization error in any lossy operating point.

/// Fixed-point scale for the DCT basis (2^12).
const SCALE_BITS: i32 = 12;
const SCALE: f64 = (1 << SCALE_BITS) as f64;

/// Supported transform sizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransformSize {
    /// 4×4 transform (small-detail blocks).
    T4,
    /// 8×8 transform (the workhorse size).
    T8,
}

impl TransformSize {
    /// Edge length in samples (never zero, hence no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match self {
            TransformSize::T4 => 4,
            TransformSize::T8 => 8,
        }
    }

    /// Samples per block.
    pub fn area(&self) -> usize {
        self.len() * self.len()
    }
}

/// Fixed-point DCT-II basis matrix of dimension `n`, scaled by 2^7.
fn basis(n: usize) -> Vec<i32> {
    let mut m = vec![0i32; n * n];
    let nf = n as f64;
    for k in 0..n {
        let a = if k == 0 { (1.0 / nf).sqrt() } else { (2.0 / nf).sqrt() };
        for j in 0..n {
            let v = a * (std::f64::consts::PI * (j as f64 + 0.5) * k as f64 / nf).cos();
            m[k * n + j] = (v * SCALE).round() as i32;
        }
    }
    m
}

fn basis4() -> &'static [i32] {
    use std::sync::OnceLock;
    static B: OnceLock<Vec<i32>> = OnceLock::new();
    B.get_or_init(|| basis(4))
}

fn basis8() -> &'static [i32] {
    use std::sync::OnceLock;
    static B: OnceLock<Vec<i32>> = OnceLock::new();
    B.get_or_init(|| basis(8))
}

fn basis_for(size: TransformSize) -> &'static [i32] {
    match size {
        TransformSize::T4 => basis4(),
        TransformSize::T8 => basis8(),
    }
}

#[inline]
fn round_shift(v: i64, bits: i32) -> i32 {
    ((v + (1 << (bits - 1))) >> bits) as i32
}

/// Forward 2-D DCT of a residual block (row-major, length `n*n`).
///
/// Output coefficients are in transform domain at unit scale (the basis
/// scaling is divided back out), so quantization step sizes are directly
/// comparable across transform sizes.
///
/// # Panics
///
/// Panics if `input.len() != size.area()`.
pub fn fdct(size: TransformSize, input: &[i32]) -> Vec<i32> {
    let n = size.len();
    assert_eq!(input.len(), n * n, "input must be {n}x{n}");
    let b = basis_for(size);
    // Rows: tmp = X * B^T  (each output row k: sum_j x[i][j] * b[k][j])
    let mut tmp = vec![0i32; n * n];
    for i in 0..n {
        for k in 0..n {
            let mut acc = 0i64;
            for j in 0..n {
                acc += i64::from(input[i * n + j]) * i64::from(b[k * n + j]);
            }
            tmp[i * n + k] = round_shift(acc, SCALE_BITS);
        }
    }
    // Columns: out = B * tmp.
    let mut out = vec![0i32; n * n];
    for k in 0..n {
        for c in 0..n {
            let mut acc = 0i64;
            for i in 0..n {
                acc += i64::from(b[k * n + i]) * i64::from(tmp[i * n + c]);
            }
            out[k * n + c] = round_shift(acc, SCALE_BITS);
        }
    }
    out
}

/// Inverse 2-D DCT; the reconstruction path shared by encoder and decoder.
///
/// # Panics
///
/// Panics if `coeffs.len() != size.area()`.
pub fn idct(size: TransformSize, coeffs: &[i32]) -> Vec<i32> {
    let n = size.len();
    assert_eq!(coeffs.len(), n * n, "coeffs must be {n}x{n}");
    let b = basis_for(size);
    // Columns first: tmp = B^T * Y.
    let mut tmp = vec![0i32; n * n];
    for j in 0..n {
        for c in 0..n {
            let mut acc = 0i64;
            for k in 0..n {
                acc += i64::from(b[k * n + j]) * i64::from(coeffs[k * n + c]);
            }
            tmp[j * n + c] = round_shift(acc, SCALE_BITS);
        }
    }
    // Rows: out = tmp * B.
    let mut out = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i64;
            for k in 0..n {
                acc += i64::from(tmp[i * n + k]) * i64::from(b[k * n + j]);
            }
            out[i * n + j] = round_shift(acc, SCALE_BITS);
        }
    }
    out
}

/// Zig-zag scan order for an `n×n` block: index `i` of the scan holds the
/// row-major position of the `i`-th coefficient in frequency order.
///
/// ```
/// use vcodec::transform::zigzag_order;
/// let z = zigzag_order(4);
/// assert_eq!(&z[..6], &[0, 1, 4, 8, 5, 2]);
/// ```
pub fn zigzag_order(n: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n * n);
    for s in 0..(2 * n - 1) {
        // Anti-diagonal s, alternating direction.
        let coords: Vec<(usize, usize)> = (0..n)
            .filter_map(|r| {
                let c = s.checked_sub(r)?;
                (c < n).then_some((r, c))
            })
            .collect();
        if s % 2 == 0 {
            // Walk up-right: decreasing row.
            for &(r, c) in coords.iter().rev() {
                order.push(r * n + c);
            }
        } else {
            for &(r, c) in coords.iter() {
                order.push(r * n + c);
            }
        }
    }
    order
}

/// Cached zig-zag order for the given transform size.
pub fn zigzag(size: TransformSize) -> &'static [usize] {
    use std::sync::OnceLock;
    static Z4: OnceLock<Vec<usize>> = OnceLock::new();
    static Z8: OnceLock<Vec<usize>> = OnceLock::new();
    match size {
        TransformSize::T4 => Z4.get_or_init(|| zigzag_order(4)),
        TransformSize::T8 => Z8.get_or_init(|| zigzag_order(8)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(size: TransformSize, input: &[i32]) -> i32 {
        let rec = idct(size, &fdct(size, input));
        input.iter().zip(&rec).map(|(&a, &b)| (a - b).abs()).max().unwrap()
    }

    #[test]
    fn dct_of_zeros_is_zero() {
        for size in [TransformSize::T4, TransformSize::T8] {
            let z = vec![0i32; size.area()];
            assert!(fdct(size, &z).iter().all(|&c| c == 0));
            assert!(idct(size, &z).iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn dc_block_concentrates_energy() {
        let input = vec![100i32; 64];
        let coeffs = fdct(TransformSize::T8, &input);
        // DC coefficient = 8 * 100 = n * value for orthonormal DCT.
        assert!((coeffs[0] - 800).abs() <= 2, "DC = {}", coeffs[0]);
        assert!(coeffs[1..].iter().all(|&c| c.abs() <= 2), "AC leakage: {coeffs:?}");
    }

    #[test]
    fn roundtrip_error_is_tiny() {
        // Deterministic pseudo-random residuals in [-255, 255].
        let mut x = 7u64;
        for size in [TransformSize::T4, TransformSize::T8] {
            for _ in 0..50 {
                let input: Vec<i32> = (0..size.area())
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((x >> 33) % 511) as i32 - 255
                    })
                    .collect();
                assert!(roundtrip_error(size, &input) <= 2);
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut x = 42u64;
        let input: Vec<i32> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 511) as i32 - 255
            })
            .collect();
        let coeffs = fdct(TransformSize::T8, &input);
        let e_in: f64 = input.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let e_out: f64 = coeffs.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let ratio = e_out / e_in;
        assert!((0.97..=1.03).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn smooth_blocks_have_sparse_spectra() {
        // A horizontal ramp: energy confined to the first row of coefficients.
        let input: Vec<i32> = (0..64).map(|i| (i % 8) * 20).collect();
        let coeffs = fdct(TransformSize::T8, &input);
        let first_row: f64 = coeffs[..8].iter().map(|&v| f64::from(v).abs()).sum();
        let rest: f64 = coeffs[8..].iter().map(|&v| f64::from(v).abs()).sum();
        assert!(first_row > rest * 10.0, "row {first_row}, rest {rest}");
    }

    #[test]
    fn zigzag_is_a_permutation() {
        for n in [4usize, 8] {
            let z = zigzag_order(n);
            let mut seen = vec![false; n * n];
            for &i in &z {
                assert!(!seen[i], "duplicate {i}");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn zigzag8_prefix_matches_standard_table() {
        let z = zigzag_order(8);
        assert_eq!(&z[..10], &[0, 1, 8, 16, 9, 2, 3, 10, 17, 24]);
        assert_eq!(z[63], 63);
    }

    #[test]
    fn cached_zigzag_matches_computed() {
        assert_eq!(zigzag(TransformSize::T8), &zigzag_order(8)[..]);
        assert_eq!(zigzag(TransformSize::T4), &zigzag_order(4)[..]);
    }
}
