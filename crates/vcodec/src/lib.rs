//! A from-scratch block-transform video codec for the vbench reproduction.
//!
//! This crate is the workspace's stand-in for ffmpeg + libx264 / libx265 /
//! libvpx-vp9: a complete hybrid video codec — encoder *and* decoder —
//! implementing the template the paper describes in Section 2.1:
//!
//! 1. frames decompose into superblocks ([`family::CodecFamily`] sets the
//!    size: 16×16 for the AVC class, 32×32 for HEVC/VP9 classes);
//! 2. each block is predicted, either *intra* from reconstructed
//!    neighbours ([`predict`]) or *inter* by motion estimation against the
//!    previous reconstructed frame ([`motion`]);
//! 3. the residual is transformed ([`transform`]), quantized ([`quant`] —
//!    the only lossy step), and entropy-coded ([`entropy`], with VLC and
//!    adaptive-arithmetic backends standing in for CAVLC and CABAC);
//! 4. an in-loop deblocking filter ([`deblock`]) smooths block edges.
//!
//! Rate control ([`rc`]) offers constant quality (CRF), single-pass
//! bitrate, and two-pass bitrate — the three modes the paper's transcoding
//! scenarios exercise. Effort presets ([`family::Preset`]) widen the
//! encoder's heuristic search exactly as the paper's Section 2.2 describes.
//!
//! Every encode reports per-kernel work counters and can stream trace
//! events to a [`stats::Probe`], which the `varch` crate turns into the
//! paper's microarchitectural studies.
//!
//! # Example
//!
//! ```
//! use vcodec::{decode, encode, CodecFamily, EncoderConfig, Preset, RateControl};
//! use vframe::color::{frame_from_fn, Yuv};
//! use vframe::{Resolution, Video};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let frames = (0..4)
//!     .map(|t| {
//!         frame_from_fn(Resolution::new(64, 64), |x, y| {
//!             Yuv::new(((x + 2 * t) * 3 + y) as u8, 128, 128)
//!         })
//!     })
//!     .collect();
//! let video = Video::new(frames, 30.0);
//!
//! let config = EncoderConfig::new(
//!     CodecFamily::Avc,
//!     Preset::Fast,
//!     RateControl::ConstQuality { crf: 23.0 },
//! );
//! let out = encode(&video, &config);
//! let decoded = decode(&out.bytes)?;
//! assert_eq!(decoded.frame(0), out.recon.frame(0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arith;
pub mod bitio;
pub mod deblock;
pub mod decoder;
pub mod encoder;
pub mod entropy;
pub mod family;
pub mod golomb;
pub mod motion;
pub mod predict;
pub mod quant;
pub mod rc;
pub mod stats;
pub mod transform;

pub use decoder::{decode, frame_kinds, probe_stream, DecodeError, StreamInfo};
pub use encoder::{
    coding_order, encode, encode_stream, encode_with_probe, required_window, try_encode,
    EncodeError, EncodeOutput, EncoderConfig, FrameType, StreamEncodeOutput,
};
pub use family::{CodecFamily, Preset};
pub use rc::{FirstPassLog, RateControl};
pub use stats::{BranchSite, EncodeStats, Kernel, KernelCounters, NoProbe, Probe};
