//! Motion estimation and motion compensation.
//!
//! Motion estimation — finding, for each block, the best-matching region of
//! a reference frame — is "usually the most computationally onerous step"
//! of encoding (Section 2.1 of the paper). The *effort level* knob the
//! paper describes maps directly onto [`SearchParams`]: search algorithm,
//! search range, sub-pixel refinement depth, and the distortion metric used
//! for refinement.

use crate::golomb::se_bits;
use vframe::block::{sad, satd, Block};
use vframe::Plane;

/// A motion vector in quarter-pel units.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MotionVector {
    /// Horizontal displacement, quarter-pel.
    pub x: i16,
    /// Vertical displacement, quarter-pel.
    pub y: i16,
}

impl MotionVector {
    /// The zero vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Creates a vector from quarter-pel components.
    pub fn new(x: i16, y: i16) -> MotionVector {
        MotionVector { x, y }
    }

    /// Creates a vector from full-pel components.
    pub fn from_full_pel(x: i16, y: i16) -> MotionVector {
        MotionVector { x: x * 4, y: y * 4 }
    }

    /// Whether both components land on full-pel positions.
    pub fn is_full_pel(&self) -> bool {
        self.x % 4 == 0 && self.y % 4 == 0
    }

    /// Bit cost of coding this vector relative to a predictor, using the
    /// signed Exp-Golomb length (identical for both entropy backends'
    /// purposes of relative comparison).
    pub fn cost_bits(&self, pred: MotionVector) -> u32 {
        se_bits(i64::from(self.x) - i64::from(pred.x))
            + se_bits(i64::from(self.y) - i64::from(pred.y))
    }
}

/// Median-of-three motion vector predictor (left, top, top-right), the
/// standard spatial MV predictor.
pub fn median_predictor(
    left: Option<MotionVector>,
    top: Option<MotionVector>,
    top_right: Option<MotionVector>,
) -> MotionVector {
    let candidates: Vec<MotionVector> = [left, top, top_right].iter().flatten().copied().collect();
    match candidates.len() {
        0 => MotionVector::ZERO,
        1 => candidates[0],
        _ => {
            let med = |vals: Vec<i16>| -> i16 {
                let mut v = vals;
                v.sort_unstable();
                v[v.len() / 2]
            };
            MotionVector {
                x: med(candidates.iter().map(|m| m.x).collect()),
                y: med(candidates.iter().map(|m| m.y).collect()),
            }
        }
    }
}

/// Motion-compensated prediction: samples `reference` at the quarter-pel
/// position `(x*4 + mv.x, y*4 + mv.y)` with bilinear interpolation and
/// picture-edge clamping.
pub fn motion_compensate(
    reference: &Plane,
    x: usize,
    y: usize,
    size: usize,
    mv: MotionVector,
) -> Block {
    let base_x = (x as isize) * 4 + isize::from(mv.x);
    let base_y = (y as isize) * 4 + isize::from(mv.y);
    let (fx, fy) = (base_x.rem_euclid(4), base_y.rem_euclid(4));
    let (ix, iy) = (base_x.div_euclid(4), base_y.div_euclid(4));
    let mut out = Block::zero(size);
    if fx == 0 && fy == 0 {
        for dy in 0..size {
            for dx in 0..size {
                out.set(
                    dx,
                    dy,
                    i16::from(reference.get_clamped(ix + dx as isize, iy + dy as isize)),
                );
            }
        }
        return out;
    }
    let (wx1, wy1) = (fx as i32, fy as i32);
    let (wx0, wy0) = (4 - wx1, 4 - wy1);
    for dy in 0..size {
        for dx in 0..size {
            let px = ix + dx as isize;
            let py = iy + dy as isize;
            let p00 = i32::from(reference.get_clamped(px, py));
            let p01 = i32::from(reference.get_clamped(px + 1, py));
            let p10 = i32::from(reference.get_clamped(px, py + 1));
            let p11 = i32::from(reference.get_clamped(px + 1, py + 1));
            let v =
                (wx0 * wy0 * p00 + wx1 * wy0 * p01 + wx0 * wy1 * p10 + wx1 * wy1 * p11 + 8) >> 4;
            out.set(dx, dy, v as i16);
        }
    }
    out
}

/// Full-pel search algorithms, in increasing speed / decreasing coverage
/// order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SearchAlgorithm {
    /// Exhaustive search of the full window — slow, optimal.
    Full,
    /// Large/small diamond pattern descent (x264 "dia"-class).
    Diamond,
    /// Hexagonal pattern descent (x264 "hex"-class).
    Hexagon,
}

/// Sub-pixel refinement depth after full-pel search.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SubPelDepth {
    /// No refinement (fastest, hardware-encoder-like at low effort).
    None,
    /// Half-pel refinement.
    Half,
    /// Half- then quarter-pel refinement (highest effort).
    Quarter,
}

/// Motion search configuration — the encoder's effort level projected onto
/// motion estimation.
#[derive(Clone, Copy, Debug)]
pub struct SearchParams {
    /// Full-pel algorithm.
    pub algorithm: SearchAlgorithm,
    /// Full-pel search range (± pixels around the predictor).
    pub range: u16,
    /// Sub-pel refinement depth.
    pub subpel: SubPelDepth,
    /// Lagrange multiplier converting MV bits into SAD units.
    pub lambda: f64,
    /// Refine sub-pel decisions with SATD instead of SAD (higher effort,
    /// better rate/distortion).
    pub use_satd: bool,
}

/// Counters exposing the amount of work a search performed; feeds both the
/// speed model of `varch` and the encoder's own statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SearchStats {
    /// Candidate positions whose distortion was evaluated.
    pub positions: u64,
    /// Total samples compared (SAD/SATD inner-loop work).
    pub samples: u64,
}

/// Result of a motion search.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MotionResult {
    /// The winning vector (quarter-pel).
    pub mv: MotionVector,
    /// Rate-distortion cost (distortion + λ · mv bits).
    pub cost: f64,
    /// Raw distortion of the winning position.
    pub distortion: u64,
}

/// Searches `reference` for the best match to `block` (located at `(x, y)`
/// in the current frame), starting from `pred_mv`.
///
/// # Panics
///
/// Panics if `params.range` is zero.
pub fn search(
    block: &Block,
    reference: &Plane,
    x: usize,
    y: usize,
    pred_mv: MotionVector,
    params: &SearchParams,
    stats: &mut SearchStats,
) -> MotionResult {
    assert!(params.range > 0, "search range must be non-zero");
    let eval_full = |mv: MotionVector, stats: &mut SearchStats| -> (u64, f64) {
        let cand = motion_compensate(reference, x, y, block.size(), mv);
        let d = sad(block, &cand);
        stats.positions += 1;
        stats.samples += (block.size() * block.size()) as u64;
        let cost = d as f64 + params.lambda * f64::from(mv.cost_bits(pred_mv));
        (d, cost)
    };

    // Start at the predictor, clamped to full-pel.
    let start = MotionVector::from_full_pel(
        (pred_mv.x / 4).clamp(-(params.range as i16), params.range as i16),
        (pred_mv.y / 4).clamp(-(params.range as i16), params.range as i16),
    );
    let (mut best_mv, mut best_d, mut best_cost) = {
        let (d, c) = eval_full(start, stats);
        (start, d, c)
    };
    // Always consider the zero vector: cheap and frequently optimal.
    if start != MotionVector::ZERO {
        let (d, c) = eval_full(MotionVector::ZERO, stats);
        if c < best_cost {
            best_mv = MotionVector::ZERO;
            best_d = d;
            best_cost = c;
        }
    }

    let range = i16::try_from(params.range).unwrap_or(i16::MAX);
    match params.algorithm {
        SearchAlgorithm::Full => {
            for dy in -range..=range {
                for dx in -range..=range {
                    let mv = MotionVector::from_full_pel(dx, dy);
                    let (d, c) = eval_full(mv, stats);
                    if c < best_cost {
                        best_mv = mv;
                        best_d = d;
                        best_cost = c;
                    }
                }
            }
        }
        SearchAlgorithm::Diamond | SearchAlgorithm::Hexagon => {
            let pattern: &[(i16, i16)] = match params.algorithm {
                SearchAlgorithm::Diamond => &[(0, -2), (2, 0), (0, 2), (-2, 0)],
                _ => &[(-2, -2), (2, -2), (4, 0), (2, 2), (-2, 2), (-4, 0)],
            };
            // Iterative descent with the large pattern.
            let max_iters = u32::from(params.range) * 2;
            let mut iters = 0;
            loop {
                let center = best_mv;
                for &(dx, dy) in pattern {
                    let mv = MotionVector::new(
                        (center.x + dx * 4).clamp(-range * 4, range * 4),
                        (center.y + dy * 4).clamp(-range * 4, range * 4),
                    );
                    if mv == center {
                        continue;
                    }
                    let (d, c) = eval_full(mv, stats);
                    if c < best_cost {
                        best_mv = mv;
                        best_d = d;
                        best_cost = c;
                    }
                }
                iters += 1;
                if best_mv == center || iters >= max_iters {
                    break;
                }
            }
            // Small-diamond polish.
            for &(dx, dy) in &[(0i16, -1i16), (1, 0), (0, 1), (-1, 0)] {
                let mv = MotionVector::new(best_mv.x + dx * 4, best_mv.y + dy * 4);
                let (d, c) = eval_full(mv, stats);
                if c < best_cost {
                    best_mv = mv;
                    best_d = d;
                    best_cost = c;
                }
            }
        }
    }

    // Sub-pel refinement.
    if params.subpel > SubPelDepth::None {
        let steps: &[i16] = match params.subpel {
            SubPelDepth::Half => &[2],
            SubPelDepth::Quarter => &[2, 1],
            SubPelDepth::None => unreachable!(),
        };
        for &step in steps {
            let center = best_mv;
            for dy in [-step, 0, step] {
                for dx in [-step, 0, step] {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let mv = MotionVector::new(center.x + dx, center.y + dy);
                    let cand = motion_compensate(reference, x, y, block.size(), mv);
                    let d = if params.use_satd { satd(block, &cand) } else { sad(block, &cand) };
                    stats.positions += 1;
                    stats.samples += (block.size() * block.size()) as u64;
                    let c = d as f64 + params.lambda * f64::from(mv.cost_bits(pred_mv));
                    if c < best_cost {
                        best_mv = mv;
                        best_d = d;
                        best_cost = c;
                    }
                }
            }
        }
    }

    MotionResult { mv: best_mv, cost: best_cost, distortion: best_d }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smoothly textured reference plane: unique matches within the
    /// search range, but a descent-friendly SAD landscape (pattern searches
    /// are *local* optimizers; adversarial textures legitimately trap them).
    fn reference() -> Plane {
        let mut p = Plane::filled(64, 64, 0);
        for y in 0..64 {
            for x in 0..64 {
                let v = 128.0
                    + 70.0 * (x as f64 * 0.3).sin() * (y as f64 * 0.25).cos()
                    + 25.0 * (x as f64 * 0.11 + y as f64 * 0.17).sin();
                p.set(x, y, v.round().clamp(0.0, 255.0) as u8);
            }
        }
        p
    }

    fn default_params(alg: SearchAlgorithm) -> SearchParams {
        SearchParams {
            algorithm: alg,
            range: 8,
            subpel: SubPelDepth::Quarter,
            lambda: 2.0,
            use_satd: false,
        }
    }

    #[test]
    fn mc_at_zero_mv_copies_reference() {
        let r = reference();
        let b = motion_compensate(&r, 8, 8, 8, MotionVector::ZERO);
        assert_eq!(b, Block::copy_from(&r, 8, 8, 8));
    }

    #[test]
    fn mc_full_pel_shift() {
        let r = reference();
        let b = motion_compensate(&r, 8, 8, 8, MotionVector::from_full_pel(3, -2));
        assert_eq!(b, Block::copy_from(&r, 11, 6, 8));
    }

    #[test]
    fn mc_half_pel_interpolates() {
        let mut r = Plane::filled(8, 8, 0);
        r.set(4, 4, 100);
        r.set(5, 4, 200);
        // Half-pel between (4,4) and (5,4): (100+200)/2 = 150.
        let b = motion_compensate(&r, 4, 4, 1, MotionVector::new(2, 0));
        assert_eq!(b.get(0, 0), 150);
    }

    #[test]
    fn full_search_finds_exact_translation() {
        let r = reference();
        // The block at (20, 20) in the "current" frame equals the reference
        // shifted by (+4, +3): full search must find mv = (4*4, 3*4) exactly.
        let block = Block::copy_from(&r, 24, 23, 8);
        let mut stats = SearchStats::default();
        let res = search(
            &block,
            &r,
            20,
            20,
            MotionVector::ZERO,
            &default_params(SearchAlgorithm::Full),
            &mut stats,
        );
        assert_eq!(res.distortion, 0, "mv {:?}", res.mv);
        assert_eq!(res.mv, MotionVector::from_full_pel(4, 3));
        assert!(stats.positions > 0);
    }

    #[test]
    fn pattern_searches_find_small_translations() {
        let r = reference();
        let block = Block::copy_from(&r, 21, 21, 8);
        for alg in [SearchAlgorithm::Diamond, SearchAlgorithm::Hexagon] {
            let mut stats = SearchStats::default();
            let res =
                search(&block, &r, 20, 20, MotionVector::ZERO, &default_params(alg), &mut stats);
            assert_eq!(res.mv, MotionVector::from_full_pel(1, 1), "{alg:?}");
            assert_eq!(res.distortion, 0, "{alg:?}");
        }
    }

    #[test]
    fn pattern_searches_substantially_reduce_distortion() {
        // Larger displacement: local searches may stop in a nearby minimum,
        // but must still do far better than no motion compensation at all.
        let r = reference();
        let block = Block::copy_from(&r, 24, 23, 8);
        let zero_sad = sad(&block, &Block::copy_from(&r, 20, 20, 8));
        for alg in [SearchAlgorithm::Diamond, SearchAlgorithm::Hexagon] {
            let mut stats = SearchStats::default();
            let res =
                search(&block, &r, 20, 20, MotionVector::ZERO, &default_params(alg), &mut stats);
            assert!(
                res.distortion * 3 < zero_sad,
                "{alg:?}: {} vs zero-mv {zero_sad}",
                res.distortion
            );
        }
    }

    #[test]
    fn full_search_examines_whole_window() {
        let r = reference();
        let block = Block::copy_from(&r, 16, 16, 8);
        let mut stats = SearchStats::default();
        let mut p = default_params(SearchAlgorithm::Full);
        p.subpel = SubPelDepth::None;
        p.range = 4;
        let _ = search(&block, &r, 16, 16, MotionVector::ZERO, &p, &mut stats);
        // (2*4+1)^2 window + start + zero candidates.
        assert!(stats.positions >= 81, "{}", stats.positions);
    }

    #[test]
    fn pattern_search_is_much_cheaper_than_full() {
        let r = reference();
        let block = Block::copy_from(&r, 18, 18, 8);
        let count = |alg| {
            let mut stats = SearchStats::default();
            let mut p = default_params(alg);
            p.range = 16;
            let _ = search(&block, &r, 16, 16, MotionVector::ZERO, &p, &mut stats);
            stats.positions
        };
        assert!(count(SearchAlgorithm::Diamond) * 5 < count(SearchAlgorithm::Full));
        assert!(count(SearchAlgorithm::Hexagon) * 5 < count(SearchAlgorithm::Full));
    }

    #[test]
    fn lambda_penalizes_distant_vectors() {
        // On a flat plane every position has zero SAD; a high lambda must
        // keep the vector at the predictor.
        let r = Plane::filled(32, 32, 77);
        let block = Block::copy_from(&r, 8, 8, 8);
        let mut stats = SearchStats::default();
        let mut p = default_params(SearchAlgorithm::Full);
        p.lambda = 100.0;
        let res = search(&block, &r, 8, 8, MotionVector::ZERO, &p, &mut stats);
        assert_eq!(res.mv, MotionVector::ZERO);
    }

    #[test]
    fn median_predictor_behaviour() {
        let a = MotionVector::new(4, 0);
        let b = MotionVector::new(8, 4);
        let c = MotionVector::new(0, 8);
        assert_eq!(median_predictor(None, None, None), MotionVector::ZERO);
        assert_eq!(median_predictor(Some(a), None, None), a);
        assert_eq!(median_predictor(Some(a), Some(b), Some(c)), MotionVector::new(4, 4));
    }

    #[test]
    fn subpel_improves_or_matches_distortion() {
        let r = reference();
        let block = Block::copy_from(&r, 21, 17, 8);
        let run = |subpel| {
            let mut stats = SearchStats::default();
            let mut p = default_params(SearchAlgorithm::Diamond);
            p.subpel = subpel;
            p.lambda = 0.0;
            search(&block, &r, 20, 16, MotionVector::ZERO, &p, &mut stats).distortion
        };
        assert!(run(SubPelDepth::Quarter) <= run(SubPelDepth::None));
    }
}
