//! In-loop deblocking filter.
//!
//! Quantizing each block independently creates visible discontinuities at
//! block boundaries; the deblocking filter smooths small edge steps while
//! leaving genuine image edges alone (the H.264 deblocking filter is the
//! paper's example of a "new compression tool", Section 2.1). Running it
//! *in-loop* — on the reconstruction both encoder and decoder use as a
//! reference — also improves prediction of subsequent frames.

use vframe::Plane;

/// Edge-detection threshold: the filter only touches steps smaller than
/// `alpha(qp)`; larger steps are assumed to be real edges.
fn alpha(qp: u8) -> i32 {
    // Grows roughly exponentially with QP, like the H.264 alpha table.
    (2.0 * (f64::from(qp) / 6.0).exp2()).min(255.0) as i32
}

/// Inner-sample smoothness threshold.
fn beta(qp: u8) -> i32 {
    (f64::from(qp) * 0.5).min(18.0) as i32 + 1
}

/// Maximum per-sample correction.
fn tc(qp: u8) -> i32 {
    (f64::from(qp) / 10.0).ceil() as i32 + 1
}

/// Filters one sample quadruple `p1 p0 | q0 q1` straddling a block edge.
/// Returns the adjusted `(p0, q0)` or `None` when the edge must be left
/// untouched.
fn filter_samples(p1: i32, p0: i32, q0: i32, q1: i32, qp: u8) -> Option<(i32, i32)> {
    let a = alpha(qp);
    let b = beta(qp);
    if (p0 - q0).abs() >= a || (p1 - p0).abs() >= b || (q1 - q0).abs() >= b {
        return None;
    }
    let t = tc(qp);
    let delta = (((q0 - p0) * 4 + (p1 - q1) + 4) >> 3).clamp(-t, t);
    Some(((p0 + delta).clamp(0, 255), (q0 - delta).clamp(0, 255)))
}

/// Applies the deblocking filter in place to every interior block edge of
/// `plane`, on a `block` × `block` grid, at strength `qp`.
///
/// Returns `(edges_filtered, edges_examined)` so callers can report filter
/// activity (the `DeblockFired` branch site).
///
/// # Panics
///
/// Panics if `block` is zero.
pub fn deblock_plane(plane: &mut Plane, block: usize, qp: u8) -> (u64, u64) {
    assert!(block > 0, "block size must be non-zero");
    let mut fired = 0u64;
    let mut examined = 0u64;
    let (w, h) = (plane.width(), plane.height());
    // Vertical edges (filter across columns).
    let mut x = block;
    while x < w {
        for y in 0..h {
            let p1 = i32::from(plane.get(x.saturating_sub(2), y));
            let p0 = i32::from(plane.get(x - 1, y));
            let q0 = i32::from(plane.get(x, y));
            let q1 = i32::from(plane.get((x + 1).min(w - 1), y));
            examined += 1;
            if let Some((np0, nq0)) = filter_samples(p1, p0, q0, q1, qp) {
                fired += 1;
                plane.set(x - 1, y, np0 as u8);
                plane.set(x, y, nq0 as u8);
            }
        }
        x += block;
    }
    // Horizontal edges (filter across rows).
    let mut y = block;
    while y < h {
        for x in 0..w {
            let p1 = i32::from(plane.get(x, y.saturating_sub(2)));
            let p0 = i32::from(plane.get(x, y - 1));
            let q0 = i32::from(plane.get(x, y));
            let q1 = i32::from(plane.get(x, (y + 1).min(h - 1)));
            examined += 1;
            if let Some((np0, nq0)) = filter_samples(p1, p0, q0, q1, qp) {
                fired += 1;
                plane.set(x, y - 1, np0 as u8);
                plane.set(x, y, nq0 as u8);
            }
        }
        y += block;
    }
    (fired, examined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_grow_with_qp() {
        assert!(alpha(40) > alpha(20));
        assert!(beta(30) >= beta(10));
        assert!(tc(45) >= tc(10));
    }

    #[test]
    fn small_step_is_smoothed() {
        // Two flat half-planes differing by a small step at the 8-boundary.
        let mut p = Plane::filled(16, 8, 100);
        for y in 0..8 {
            for x in 8..16 {
                p.set(x, y, 106);
            }
        }
        let (fired, examined) = deblock_plane(&mut p, 8, 30);
        assert!(fired > 0 && examined >= fired);
        let step = (i32::from(p.get(8, 4)) - i32::from(p.get(7, 4))).abs();
        assert!(step < 6, "boundary step after filtering: {step}");
    }

    #[test]
    fn real_edge_is_preserved() {
        // A hard 100-level edge must not be smoothed (it exceeds alpha).
        let mut p = Plane::filled(16, 8, 60);
        for y in 0..8 {
            for x in 8..16 {
                p.set(x, y, 200);
            }
        }
        let before = p.clone();
        let (fired, _) = deblock_plane(&mut p, 8, 25);
        assert_eq!(fired, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn flat_region_is_untouched() {
        let mut p = Plane::filled(32, 32, 123);
        let before = p.clone();
        let _ = deblock_plane(&mut p, 8, 51);
        assert_eq!(p, before);
    }

    #[test]
    fn higher_qp_filters_more() {
        let make = || {
            let mut p = Plane::filled(16, 8, 100);
            for y in 0..8 {
                for x in 8..16 {
                    p.set(x, y, 120);
                }
            }
            p
        };
        let mut low = make();
        let mut high = make();
        let _ = deblock_plane(&mut low, 8, 5);
        let _ = deblock_plane(&mut high, 8, 45);
        let step = |p: &Plane| (i32::from(p.get(8, 4)) - i32::from(p.get(7, 4))).abs();
        assert!(step(&high) <= step(&low), "high {} low {}", step(&high), step(&low));
    }
}
