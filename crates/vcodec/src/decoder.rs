//! The video decoder.
//!
//! Decoding "simply follows the interpretation rules for the bitstream"
//! (Section 1 of the paper) — it is deterministic and much cheaper than
//! encoding. The decoder mirrors the encoder's reconstruction path exactly,
//! so its output is bit-identical to the encoder-side reconstruction
//! ([`crate::encoder::EncodeOutput::recon`]); the integration tests assert
//! this.

use crate::bitio::{BitReader, ReadBitsError};
use crate::deblock::deblock_plane;
use crate::encoder::{FrameType, MAGIC, VERSION};
use crate::entropy::{CtxClass, EntropyBackend, EntropyDecoder};
use crate::family::CodecFamily;
use crate::motion::{median_predictor, motion_compensate, MotionVector};
use crate::predict::{predict_intra, IntraMode};
use crate::quant::dequantize;
use crate::transform::{idct, TransformSize};
use vframe::block::Block;
use vframe::{Frame, Plane, Resolution, Video};

/// Errors produced while parsing a bitstream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The stream does not start with the container magic.
    BadMagic,
    /// The stream's version is not supported.
    UnsupportedVersion(u8),
    /// A header field holds an invalid value.
    InvalidHeader(&'static str),
    /// A predicted frame names a reference that was never decoded.
    MissingReference,
    /// The stream ended prematurely or a code was malformed.
    Corrupt,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a vbench codec stream"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported stream version {v}"),
            DecodeError::InvalidHeader(what) => write!(f, "invalid header field: {what}"),
            DecodeError::MissingReference => {
                write!(f, "predicted frame references an undecoded frame")
            }
            DecodeError::Corrupt => write!(f, "bitstream exhausted or malformed"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<ReadBitsError> for DecodeError {
    fn from(_: ReadBitsError) -> DecodeError {
        DecodeError::Corrupt
    }
}

/// Stream-level metadata parsed from the container header.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StreamInfo {
    /// Codec family that produced the stream.
    pub family: CodecFamily,
    /// Entropy backend in use.
    pub backend: EntropyBackend,
    /// Picture size.
    pub resolution: Resolution,
    /// Frame rate.
    pub fps: f64,
    /// Number of coded frames.
    pub frames: u32,
    /// Keyframe interval.
    pub gop: u16,
    /// Whether the stream was coded with the in-loop deblocking filter.
    pub deblock: bool,
}

/// Parses only the container header.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the header is malformed.
pub fn probe_stream(bytes: &[u8]) -> Result<StreamInfo, DecodeError> {
    let mut r = BitReader::new(bytes);
    let magic = r.get_bytes(4)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.get_bits(8)? as u8;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let family = match r.get_bits(8)? {
        0 => CodecFamily::Avc,
        1 => CodecFamily::Hevc,
        2 => CodecFamily::Vp9,
        3 => CodecFamily::Av1,
        _ => return Err(DecodeError::InvalidHeader("family")),
    };
    let backend = match r.get_bits(8)? {
        0 => EntropyBackend::Vlc,
        s @ 1..=7 => EntropyBackend::Arith { shift: s as u8 },
        _ => return Err(DecodeError::InvalidHeader("entropy backend")),
    };
    let width = r.get_bits(16)? as u32;
    let height = r.get_bits(16)? as u32;
    if width == 0 || height == 0 || !width.is_multiple_of(2) || !height.is_multiple_of(2) {
        return Err(DecodeError::InvalidHeader("resolution"));
    }
    // Allocation guard: a hostile header may declare any 16-bit
    // dimensions, and the decoder allocates full planes before reading a
    // single payload byte. 2^26 pixels (~67M) comfortably covers 8K.
    if width as u64 * height as u64 > 1 << 26 {
        return Err(DecodeError::InvalidHeader("resolution"));
    }
    let fps = r.get_bits(32)? as f64 / 1000.0;
    if fps <= 0.0 {
        return Err(DecodeError::InvalidHeader("frame rate"));
    }
    let frames = r.get_bits(32)? as u32;
    if frames == 0 {
        return Err(DecodeError::InvalidHeader("frame count"));
    }
    // Allocation guard: every coded frame costs at least 10 framing
    // bytes (type, qp, display index, payload length), so a declared
    // count the stream cannot physically hold is a lie — reject it
    // before `decode`/`frame_kinds` size their tables from it.
    if frames as u64 * 10 > bytes.len() as u64 {
        return Err(DecodeError::InvalidHeader("frame count"));
    }
    let gop = r.get_bits(16)? as u16;
    if gop == 0 {
        return Err(DecodeError::InvalidHeader("gop"));
    }
    let flags = r.get_bits(8)?;
    if flags > 1 {
        return Err(DecodeError::InvalidHeader("flags"));
    }
    Ok(StreamInfo {
        family,
        backend,
        resolution: Resolution::new(width, height),
        fps,
        frames,
        gop,
        deblock: flags & 1 == 1,
    })
}

/// Lists each coded frame's type (`true` = intra/key frame) without
/// decoding payloads — the cheap stream inspection a packager or CDN
/// performs to find seek points.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the header or frame framing is malformed.
pub fn frame_kinds(bytes: &[u8]) -> Result<Vec<bool>, DecodeError> {
    let info = probe_stream(bytes)?;
    let mut r = BitReader::new(bytes);
    let _ = r.get_bytes(4)?;
    let _ = r.get_bits(8 + 8 + 8 + 16 + 16)?;
    let _ = r.get_bits(32 + 32)?;
    let _ = r.get_bits(16 + 8)?;
    let mut kinds = vec![false; info.frames as usize];
    for _ in 0..info.frames {
        let is_intra = r.get_bits(8)? == 1;
        let _qp = r.get_bits(8)?;
        let display = r.get_bits(32)? as usize;
        if display >= kinds.len() {
            return Err(DecodeError::InvalidHeader("display index"));
        }
        kinds[display] = is_intra;
        let payload_len = r.get_bits(32)? as usize;
        let _ = r.get_bytes(payload_len)?;
    }
    Ok(kinds)
}

/// Decodes a complete bitstream into a raw video.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the stream is malformed or truncated.
pub fn decode(bytes: &[u8]) -> Result<Video, DecodeError> {
    let info = probe_stream(bytes)?;
    // Re-walk the header to position after it (probe_stream consumed a copy).
    let mut r = BitReader::new(bytes);
    let _ = r.get_bytes(4)?;
    let _ = r.get_bits(8 + 8 + 8 + 16 + 16)?;
    let _ = r.get_bits(32 + 32)?;
    let _ = r.get_bits(16 + 8)?;

    let width = info.resolution.width() as usize;
    let height = info.resolution.height() as usize;
    let sb = info.family.superblock_size();
    let sbs_x = width.div_ceil(sb);
    let sbs_y = height.div_ceil(sb);

    let mut frames: Vec<Option<Frame>> = vec![None; info.frames as usize];
    let mut mv_grid: Vec<Option<MotionVector>> = vec![None; sbs_x * sbs_y];
    // Display indexes of the two most recent reference frames, mirroring
    // the encoder: a B frame predicts forward from `prev_ref` and
    // backward from `cur_ref`.
    let mut prev_ref: Option<usize> = None;
    let mut cur_ref: Option<usize> = None;

    for _ in 0..info.frames {
        let ftype = FrameType::from_code(r.get_bits(8)? as u8).ok_or(DecodeError::Corrupt)?;
        let qp = r.get_bits(8)? as u8;
        if qp > crate::quant::QP_MAX {
            return Err(DecodeError::InvalidHeader("frame qp"));
        }
        let display = r.get_bits(32)? as usize;
        if display >= frames.len() || frames[display].is_some() {
            return Err(DecodeError::InvalidHeader("display index"));
        }
        let payload_len = r.get_bits(32)? as usize;
        let payload = r.get_bytes(payload_len)?;
        let mut dec = EntropyDecoder::new(info.backend, payload);

        let mut recon_y = Plane::filled(width, height, 128);
        let mut recon_u = Plane::filled(width / 2, height / 2, 128);
        let mut recon_v = Plane::filled(width / 2, height / 2, 128);
        mv_grid.fill(None);
        let is_intra = ftype == FrameType::Intra;
        let is_b = ftype == FrameType::Bidirectional;
        let fwd_frame = match ftype {
            FrameType::Intra => None,
            FrameType::Predicted => {
                let i = cur_ref.ok_or(DecodeError::InvalidHeader("P frame without reference"))?;
                Some(frames[i].as_ref().ok_or(DecodeError::MissingReference)?)
            }
            FrameType::Bidirectional => {
                let i = prev_ref.ok_or(DecodeError::InvalidHeader("B frame without references"))?;
                Some(frames[i].as_ref().ok_or(DecodeError::MissingReference)?)
            }
        };
        let bwd_frame = if is_b {
            let i = cur_ref.ok_or(DecodeError::InvalidHeader("B frame without references"))?;
            Some(frames[i].as_ref().ok_or(DecodeError::MissingReference)?)
        } else {
            None
        };

        for sby in 0..sbs_y {
            for sbx in 0..sbs_x {
                let x0 = sbx * sb;
                let y0 = sby * sb;
                if is_intra {
                    let mode_id = dec.get_uval(CtxClass::Mode)?;
                    if mode_id == 4 {
                        decode_intra_split_sb(
                            &mut dec,
                            x0,
                            y0,
                            sb,
                            qp,
                            &mut recon_y,
                            &mut recon_u,
                            &mut recon_v,
                        )?;
                        mv_grid[sby * sbs_x + sbx] = None;
                        continue;
                    }
                    let mode = IntraMode::from_id(
                        u8::try_from(mode_id).map_err(|_| DecodeError::Corrupt)?,
                    )
                    .ok_or(DecodeError::Corrupt)?;
                    decode_intra_sb(
                        &mut dec,
                        mode,
                        x0,
                        y0,
                        sb,
                        qp,
                        &mut recon_y,
                        &mut recon_u,
                        &mut recon_v,
                    )?;
                    mv_grid[sby * sbs_x + sbx] = None;
                    continue;
                }
                let reference = fwd_frame.ok_or(DecodeError::MissingReference)?;
                let grid_at = |dx: isize, dy: isize| -> Option<MotionVector> {
                    let gx = sbx as isize + dx;
                    let gy = sby as isize + dy;
                    if gx < 0 || gy < 0 || gx >= sbs_x as isize || gy >= sbs_y as isize {
                        None
                    } else {
                        mv_grid[gy as usize * sbs_x + gx as usize]
                    }
                };
                let pred_mv = median_predictor(grid_at(-1, 0), grid_at(0, -1), grid_at(1, -1));
                let mode = dec.get_uval(CtxClass::Mode)?;
                if is_b {
                    decode_b_sb(
                        &mut dec,
                        mode,
                        pred_mv,
                        reference,
                        bwd_frame.ok_or(DecodeError::MissingReference)?,
                        x0,
                        y0,
                        sb,
                        qp,
                        &mut recon_y,
                        &mut recon_u,
                        &mut recon_v,
                        &mut mv_grid[sby * sbs_x + sbx],
                    )?;
                    continue;
                }
                match mode {
                    0 => {
                        // Skip: predictor MV, no residual.
                        let mv = pred_mv;
                        let pred = motion_compensate(reference.y(), x0, y0, sb, mv);
                        pred.paste_into(&mut recon_y, x0, y0);
                        let (cx, cy, cs) = (x0 / 2, y0 / 2, sb / 2);
                        let cmv = MotionVector::new(mv.x / 2, mv.y / 2);
                        motion_compensate(reference.u(), cx, cy, cs, cmv).paste_into(
                            &mut recon_u,
                            cx,
                            cy,
                        );
                        motion_compensate(reference.v(), cx, cy, cs, cmv).paste_into(
                            &mut recon_v,
                            cx,
                            cy,
                        );
                        mv_grid[sby * sbs_x + sbx] = Some(mv);
                    }
                    1 => {
                        let mvd_x = dec.get_sval(CtxClass::MvX)?;
                        let mvd_y = dec.get_sval(CtxClass::MvY)?;
                        let mv = offset_mv(pred_mv, mvd_x, mvd_y)?;
                        let pred = motion_compensate(reference.y(), x0, y0, sb, mv);
                        decode_residual_region(&mut dec, &pred, x0, y0, qp, &mut recon_y)?;
                        let (cx, cy, cs) = (x0 / 2, y0 / 2, sb / 2);
                        let cmv = MotionVector::new(mv.x / 2, mv.y / 2);
                        let upred = motion_compensate(reference.u(), cx, cy, cs, cmv);
                        decode_residual_region(&mut dec, &upred, cx, cy, qp, &mut recon_u)?;
                        let vpred = motion_compensate(reference.v(), cx, cy, cs, cmv);
                        decode_residual_region(&mut dec, &vpred, cx, cy, qp, &mut recon_v)?;
                        mv_grid[sby * sbs_x + sbx] = Some(mv);
                    }
                    2 => {
                        // Split: base MV, then four quadrants, then chroma.
                        let base_dx = dec.get_sval(CtxClass::MvX)?;
                        let base_dy = dec.get_sval(CtxClass::MvY)?;
                        let base = offset_mv(pred_mv, base_dx, base_dy)?;
                        let half = sb / 2;
                        let mut first_mv = MotionVector::ZERO;
                        for (i, (qx, qy)) in
                            [(0, 0), (half, 0), (0, half), (half, half)].iter().enumerate()
                        {
                            let dx = dec.get_sval(CtxClass::MvX)?;
                            let dy = dec.get_sval(CtxClass::MvY)?;
                            let mv = offset_mv(base, dx, dy)?;
                            if i == 0 {
                                first_mv = mv;
                            }
                            let pred = motion_compensate(reference.y(), x0 + qx, y0 + qy, half, mv);
                            decode_residual_region(
                                &mut dec,
                                &pred,
                                x0 + qx,
                                y0 + qy,
                                qp,
                                &mut recon_y,
                            )?;
                        }
                        let (cx, cy, cs) = (x0 / 2, y0 / 2, sb / 2);
                        let cmv = MotionVector::new(base.x / 2, base.y / 2);
                        let upred = motion_compensate(reference.u(), cx, cy, cs, cmv);
                        decode_residual_region(&mut dec, &upred, cx, cy, qp, &mut recon_u)?;
                        let vpred = motion_compensate(reference.v(), cx, cy, cs, cmv);
                        decode_residual_region(&mut dec, &vpred, cx, cy, qp, &mut recon_v)?;
                        mv_grid[sby * sbs_x + sbx] = Some(first_mv);
                    }
                    m @ 3..=6 => {
                        let mode = IntraMode::from_id((m - 3) as u8).ok_or(DecodeError::Corrupt)?;
                        decode_intra_sb(
                            &mut dec,
                            mode,
                            x0,
                            y0,
                            sb,
                            qp,
                            &mut recon_y,
                            &mut recon_u,
                            &mut recon_v,
                        )?;
                        mv_grid[sby * sbs_x + sbx] = None;
                    }
                    7 => {
                        decode_intra_split_sb(
                            &mut dec,
                            x0,
                            y0,
                            sb,
                            qp,
                            &mut recon_y,
                            &mut recon_u,
                            &mut recon_v,
                        )?;
                        mv_grid[sby * sbs_x + sbx] = None;
                    }
                    _ => return Err(DecodeError::Corrupt),
                }
            }
        }

        if info.deblock {
            let _ = deblock_plane(&mut recon_y, 8, qp);
            let _ = deblock_plane(&mut recon_u, 8, qp);
            let _ = deblock_plane(&mut recon_v, 8, qp);
        }
        frames[display] = Some(Frame::from_planes(info.resolution, recon_y, recon_u, recon_v));
        if !is_b {
            prev_ref = cur_ref;
            cur_ref = Some(display);
        }
    }

    let frames: Vec<Frame> =
        frames.into_iter().collect::<Option<Vec<Frame>>>().ok_or(DecodeError::Corrupt)?;
    Ok(Video::new(frames, info.fps))
}

fn offset_mv(base: MotionVector, dx: i64, dy: i64) -> Result<MotionVector, DecodeError> {
    let x = i64::from(base.x) + dx;
    let y = i64::from(base.y) + dy;
    let x = i16::try_from(x).map_err(|_| DecodeError::Corrupt)?;
    let y = i16::try_from(y).map_err(|_| DecodeError::Corrupt)?;
    Ok(MotionVector::new(x, y))
}

/// Decodes the residual tiles of one `pred.size()`-sized region and writes
/// the reconstruction into `recon` at `(x0, y0)` — the decoder-side mirror
/// of the encoder's `emit_levels`.
fn decode_residual_region(
    dec: &mut EntropyDecoder<'_>,
    pred: &Block,
    x0: usize,
    y0: usize,
    qp: u8,
    recon: &mut Plane,
) -> Result<(), DecodeError> {
    let size = pred.size();
    for ty in (0..size).step_by(8) {
        for tx in (0..size).step_by(8) {
            let levels = dec.get_coeff_block(TransformSize::T8)?;
            let deq = dequantize(&levels, qp);
            let rec = idct(TransformSize::T8, &deq);
            let mut out = Block::zero(8);
            for dy in 0..8 {
                for dx in 0..8 {
                    let v =
                        (i32::from(pred.get(tx + dx, ty + dy)) + rec[dy * 8 + dx]).clamp(0, 255);
                    out.set(dx, dy, v as i16);
                }
            }
            out.paste_into(recon, x0 + tx, y0 + ty);
        }
    }
    Ok(())
}

/// Decodes a split-intra superblock: four quadrant modes with their
/// residuals in raster order (predictions track the live reconstruction,
/// mirroring the encoder), then chroma predicted with the first
/// quadrant's mode.
#[allow(clippy::too_many_arguments)]
fn decode_intra_split_sb(
    dec: &mut EntropyDecoder<'_>,
    x0: usize,
    y0: usize,
    sb: usize,
    qp: u8,
    recon_y: &mut Plane,
    recon_u: &mut Plane,
    recon_v: &mut Plane,
) -> Result<(), DecodeError> {
    let half = sb / 2;
    let mut first_mode = IntraMode::Dc;
    for (i, (qx, qy)) in [(0, 0), (half, 0), (0, half), (half, half)].iter().enumerate() {
        let id = dec.get_uval(CtxClass::Mode)?;
        let mode = IntraMode::from_id(u8::try_from(id).map_err(|_| DecodeError::Corrupt)?)
            .ok_or(DecodeError::Corrupt)?;
        if i == 0 {
            first_mode = mode;
        }
        let pred = predict_intra(recon_y, x0 + qx, y0 + qy, half, mode);
        decode_residual_region(dec, &pred, x0 + qx, y0 + qy, qp, recon_y)?;
    }
    let (cx, cy, cs) = (x0 / 2, y0 / 2, sb / 2);
    let upred = predict_intra(recon_u, cx, cy, cs, first_mode);
    decode_residual_region(dec, &upred, cx, cy, qp, recon_u)?;
    let vpred = predict_intra(recon_v, cx, cy, cs, first_mode);
    decode_residual_region(dec, &vpred, cx, cy, qp, recon_v)?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn decode_intra_sb(
    dec: &mut EntropyDecoder<'_>,
    mode: IntraMode,
    x0: usize,
    y0: usize,
    sb: usize,
    qp: u8,
    recon_y: &mut Plane,
    recon_u: &mut Plane,
    recon_v: &mut Plane,
) -> Result<(), DecodeError> {
    let pred = predict_intra(recon_y, x0, y0, sb, mode);
    decode_residual_region(dec, &pred, x0, y0, qp, recon_y)?;
    let (cx, cy, cs) = (x0 / 2, y0 / 2, sb / 2);
    let upred = predict_intra(recon_u, cx, cy, cs, mode);
    decode_residual_region(dec, &upred, cx, cy, qp, recon_u)?;
    let vpred = predict_intra(recon_v, cx, cy, cs, mode);
    decode_residual_region(dec, &vpred, cx, cy, qp, recon_v)?;
    Ok(())
}

/// Decodes one B-frame superblock (the mirror of the encoder's
/// `encode_b_sb`): mode 0 = skip-direct forward, 1 = forward MVD,
/// 2 = backward MVD, 3 = bidirectional (two MVDs), 4+ = intra.
#[allow(clippy::too_many_arguments)]
fn decode_b_sb(
    dec: &mut EntropyDecoder<'_>,
    mode: u64,
    pred_mv: MotionVector,
    fwd: &Frame,
    bwd: &Frame,
    x0: usize,
    y0: usize,
    sb: usize,
    qp: u8,
    recon_y: &mut Plane,
    recon_u: &mut Plane,
    recon_v: &mut Plane,
    grid_cell: &mut Option<MotionVector>,
) -> Result<(), DecodeError> {
    let (cx, cy, cs) = (x0 / 2, y0 / 2, sb / 2);
    match mode {
        0 => {
            // Skip-direct: forward prediction at the predictor MV.
            let mv = pred_mv;
            motion_compensate(fwd.y(), x0, y0, sb, mv).paste_into(recon_y, x0, y0);
            let cmv = MotionVector::new(mv.x / 2, mv.y / 2);
            motion_compensate(fwd.u(), cx, cy, cs, cmv).paste_into(recon_u, cx, cy);
            motion_compensate(fwd.v(), cx, cy, cs, cmv).paste_into(recon_v, cx, cy);
            *grid_cell = Some(mv);
        }
        1 | 2 => {
            let dx = dec.get_sval(CtxClass::MvX)?;
            let dy = dec.get_sval(CtxClass::MvY)?;
            let mv = offset_mv(pred_mv, dx, dy)?;
            let reference = if mode == 1 { fwd } else { bwd };
            let pred = motion_compensate(reference.y(), x0, y0, sb, mv);
            decode_residual_region(dec, &pred, x0, y0, qp, recon_y)?;
            let cmv = MotionVector::new(mv.x / 2, mv.y / 2);
            let upred = motion_compensate(reference.u(), cx, cy, cs, cmv);
            decode_residual_region(dec, &upred, cx, cy, qp, recon_u)?;
            let vpred = motion_compensate(reference.v(), cx, cy, cs, cmv);
            decode_residual_region(dec, &vpred, cx, cy, qp, recon_v)?;
            *grid_cell = Some(mv);
        }
        3 => {
            let fdx = dec.get_sval(CtxClass::MvX)?;
            let fdy = dec.get_sval(CtxClass::MvY)?;
            let fmv = offset_mv(pred_mv, fdx, fdy)?;
            let bdx = dec.get_sval(CtxClass::MvX)?;
            let bdy = dec.get_sval(CtxClass::MvY)?;
            let bmv = offset_mv(pred_mv, bdx, bdy)?;
            let pred = average_blocks(
                &motion_compensate(fwd.y(), x0, y0, sb, fmv),
                &motion_compensate(bwd.y(), x0, y0, sb, bmv),
            );
            decode_residual_region(dec, &pred, x0, y0, qp, recon_y)?;
            let cf = MotionVector::new(fmv.x / 2, fmv.y / 2);
            let cb = MotionVector::new(bmv.x / 2, bmv.y / 2);
            let upred = average_blocks(
                &motion_compensate(fwd.u(), cx, cy, cs, cf),
                &motion_compensate(bwd.u(), cx, cy, cs, cb),
            );
            decode_residual_region(dec, &upred, cx, cy, qp, recon_u)?;
            let vpred = average_blocks(
                &motion_compensate(fwd.v(), cx, cy, cs, cf),
                &motion_compensate(bwd.v(), cx, cy, cs, cb),
            );
            decode_residual_region(dec, &vpred, cx, cy, qp, recon_v)?;
            *grid_cell = Some(fmv);
        }
        m @ 4..=7 => {
            let mode = IntraMode::from_id((m - 4) as u8).ok_or(DecodeError::Corrupt)?;
            let pred = predict_intra(recon_y, x0, y0, sb, mode);
            decode_residual_region(dec, &pred, x0, y0, qp, recon_y)?;
            let upred = predict_intra(recon_u, cx, cy, cs, mode);
            decode_residual_region(dec, &upred, cx, cy, qp, recon_u)?;
            let vpred = predict_intra(recon_v, cx, cy, cs, mode);
            decode_residual_region(dec, &vpred, cx, cy, qp, recon_v)?;
            *grid_cell = None;
        }
        _ => return Err(DecodeError::Corrupt),
    }
    Ok(())
}

/// Element-wise average of two prediction blocks (bidirectional MC); must
/// match the encoder's rounding exactly.
fn average_blocks(a: &Block, b: &Block) -> Block {
    debug_assert_eq!(a.size(), b.size());
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| ((i32::from(x) + i32::from(y) + 1) / 2) as i16)
        .collect();
    Block::from_data(a.size(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, EncoderConfig};
    use crate::family::Preset;
    use crate::rc::RateControl;

    fn tiny_video(frames: usize) -> Video {
        let res = Resolution::new(64, 48);
        let fs: Vec<Frame> = (0..frames)
            .map(|t| {
                vframe::color::frame_from_fn(res, |x, y| {
                    let v = ((x + 3 * t as u32) * 5 + y * 2) % 256;
                    vframe::color::Yuv::new(v as u8, (x % 200) as u8, 128)
                })
            })
            .collect();
        Video::new(fs, 24.0)
    }

    #[test]
    fn decoder_matches_encoder_reconstruction_exactly() {
        let v = tiny_video(6);
        for family in CodecFamily::ALL {
            for preset in [Preset::UltraFast, Preset::Medium, Preset::VerySlow] {
                let cfg =
                    EncoderConfig::new(family, preset, RateControl::ConstQuality { crf: 27.0 })
                        .with_gop(4);
                let out = encode(&v, &cfg);
                let decoded = decode(&out.bytes).expect("decode");
                assert_eq!(decoded.len(), v.len());
                for t in 0..v.len() {
                    assert_eq!(
                        decoded.frame(t),
                        out.recon.frame(t),
                        "{family}/{preset} frame {t} mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_stream_reports_header() {
        let v = tiny_video(3);
        let cfg = EncoderConfig::new(
            CodecFamily::Hevc,
            Preset::Fast,
            RateControl::ConstQuality { crf: 30.0 },
        );
        let out = encode(&v, &cfg);
        let info = probe_stream(&out.bytes).unwrap();
        assert_eq!(info.family, CodecFamily::Hevc);
        assert_eq!(info.resolution, Resolution::new(64, 48));
        assert_eq!(info.frames, 3);
        assert!((info.fps - 24.0).abs() < 1e-3);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"nope").err(), Some(DecodeError::BadMagic));
        assert_eq!(decode(b"").err(), Some(DecodeError::Corrupt));
    }

    #[test]
    fn truncated_stream_rejected() {
        let v = tiny_video(3);
        let cfg = EncoderConfig::new(
            CodecFamily::Avc,
            Preset::Fast,
            RateControl::ConstQuality { crf: 30.0 },
        );
        let out = encode(&v, &cfg);
        let cut = &out.bytes[..out.bytes.len() / 2];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn bframes_roundtrip_exactly() {
        let v = tiny_video(9);
        for family in CodecFamily::ALL {
            let cfg =
                EncoderConfig::new(family, Preset::Medium, RateControl::ConstQuality { crf: 28.0 })
                    .with_gop(6)
                    .with_bframes();
            let out = encode(&v, &cfg);
            let decoded = decode(&out.bytes).expect("B stream decodes");
            assert_eq!(decoded.len(), v.len());
            for t in 0..v.len() {
                assert_eq!(decoded.frame(t), out.recon.frame(t), "{family} frame {t}");
            }
        }
    }

    #[test]
    fn bframes_do_not_hurt_quality_much_and_help_rate() {
        let v = tiny_video(12);
        let run = |b: bool| {
            let mut cfg = EncoderConfig::new(
                CodecFamily::Avc,
                Preset::Medium,
                RateControl::ConstQuality { crf: 30.0 },
            );
            if b {
                cfg = cfg.with_bframes();
            }
            let out = encode(&v, &cfg);
            (out.bytes.len(), vframe::metrics::psnr_video(&v, &out.recon))
        };
        let (bytes_p, q_p) = run(false);
        let (bytes_b, q_b) = run(true);
        // B frames ride +2 QP: smaller stream, slightly lower PSNR.
        assert!(bytes_b < bytes_p + bytes_p / 10, "B stream {bytes_b} vs P {bytes_p}");
        assert!(q_b > q_p - 2.0, "B quality {q_b} vs {q_p}");
    }

    #[test]
    fn frame_kinds_reports_gop_structure() {
        let v = tiny_video(9);
        let cfg = EncoderConfig::new(
            CodecFamily::Avc,
            Preset::Fast,
            RateControl::ConstQuality { crf: 30.0 },
        )
        .with_gop(4);
        let out = encode(&v, &cfg);
        let kinds = frame_kinds(&out.bytes).unwrap();
        assert_eq!(kinds.len(), 9);
        for (i, &intra) in kinds.iter().enumerate() {
            assert_eq!(intra, i % 4 == 0, "frame {i}");
        }
    }

    #[test]
    fn error_display_is_meaningful() {
        assert_eq!(DecodeError::BadMagic.to_string(), "not a vbench codec stream");
        assert!(DecodeError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(DecodeError::MissingReference.to_string().contains("reference"));
    }
}
