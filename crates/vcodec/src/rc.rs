//! Rate control: constant quality, single-pass bitrate, two-pass bitrate.
//!
//! Section 2.2 of the paper: an encoder either sustains a quality level
//! using as many bits as needed (constant rate factor), or fits a target
//! bitrate, optionally using a first pass to learn per-frame complexity so
//! the second pass can "budget fewer bits for simple frames, and more for
//! complex frames".

use crate::quant::{crf_to_qp, qstep, QP_MAX, QP_MIN};

/// Rate-control mode requested by the caller.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RateControl {
    /// Constant rate factor: sustain quality, spend whatever bits needed.
    ConstQuality {
        /// CRF value on the QP scale; 18 ≈ visually lossless.
        crf: f64,
    },
    /// Target bitrate, single pass (the low-latency Live configuration).
    Bitrate {
        /// Target bits per second.
        bps: u64,
    },
    /// Target bitrate with a first analysis pass (VOD / Popular
    /// configuration).
    TwoPassBitrate {
        /// Target bits per second.
        bps: u64,
    },
}

impl RateControl {
    /// Whether this mode requires an analysis pass before the real encode.
    pub fn needs_first_pass(&self) -> bool {
        matches!(self, RateControl::TwoPassBitrate { .. })
    }

    /// The bitrate target, if any.
    pub fn target_bps(&self) -> Option<u64> {
        match self {
            RateControl::ConstQuality { .. } => None,
            RateControl::Bitrate { bps } | RateControl::TwoPassBitrate { bps } => Some(*bps),
        }
    }
}

/// Frame types the controller differentiates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// Intra-only (key) frame.
    Intra,
    /// Predicted frame.
    Inter,
}

/// Per-frame complexity record produced by a first pass: the bits the
/// analysis encode spent on each frame at a fixed QP.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FirstPassLog {
    /// QP the analysis pass ran at.
    pub analysis_qp: u8,
    /// Bits each frame took in the analysis pass.
    pub frame_bits: Vec<u64>,
}

impl FirstPassLog {
    /// Total analysis-pass bits.
    pub fn total_bits(&self) -> u64 {
        self.frame_bits.iter().sum()
    }
}

/// The stateful per-encode controller. Construct one per encode (or per
/// pass), ask it for each frame's QP, and report bits back after coding.
#[derive(Clone, Debug)]
pub struct RateController {
    mode: Mode,
    fps: f64,
    /// Bits produced so far.
    spent_bits: f64,
    /// Frames coded so far.
    coded_frames: u32,
    last_qp: u8,
}

#[derive(Clone, Debug)]
enum Mode {
    ConstQuality { base_qp: u8 },
    Abr { target_bpf: f64, base_qp: u8 },
    TwoPass { budgets: Vec<f64>, qps: Vec<u8> },
}

/// Keyframes are given a small QP bonus: their quality propagates through
/// the whole GOP via prediction.
const INTRA_QP_BONUS: u8 = 3;

impl RateController {
    /// Builds a controller for constant-quality encoding.
    pub fn const_quality(crf: f64) -> RateController {
        RateController::with_mode(Mode::ConstQuality { base_qp: crf_to_qp(crf) }, 30.0)
    }

    /// Builds a single-pass controller targeting `bps` at `fps` for frames
    /// of `pixels_per_frame` pixels.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero / non-positive.
    pub fn single_pass(bps: u64, fps: f64, pixels_per_frame: u64) -> RateController {
        assert!(bps > 0 && fps > 0.0 && pixels_per_frame > 0, "rate parameters must be positive");
        let target_bpf = bps as f64 / fps;
        let base_qp = initial_qp_guess(target_bpf, pixels_per_frame);
        RateController::with_mode(Mode::Abr { target_bpf, base_qp }, fps)
    }

    /// Builds the second-pass controller from a first-pass log.
    ///
    /// Frame budgets are allocated proportionally to `complexity^0.6`
    /// (compressing the dynamic range, as real two-pass rate control does),
    /// then converted to QPs with the `bits ∝ 1/qstep` model anchored at
    /// the analysis pass.
    ///
    /// # Panics
    ///
    /// Panics if the log is empty or parameters are non-positive.
    pub fn two_pass(bps: u64, fps: f64, log: &FirstPassLog) -> RateController {
        assert!(!log.frame_bits.is_empty(), "first-pass log is empty");
        assert!(bps > 0 && fps > 0.0, "rate parameters must be positive");
        let n = log.frame_bits.len();
        let total_budget = bps as f64 * n as f64 / fps;
        let weights: Vec<f64> =
            log.frame_bits.iter().map(|&b| (b.max(64) as f64).powf(0.6)).collect();
        let wsum: f64 = weights.iter().sum();
        let budgets: Vec<f64> = weights.iter().map(|w| total_budget * w / wsum).collect();
        // Base QP from totals: the constant-quality point that spends the
        // whole budget under the bits(qp) ∝ 1/qstep(qp) model.
        let total_c: f64 = log.frame_bits.iter().map(|&b| b.max(64) as f64).sum();
        let base_qp = qp_for_step(qstep(log.analysis_qp) * total_c / total_budget);
        let qps: Vec<u8> = log
            .frame_bits
            .iter()
            .zip(&budgets)
            .map(|(&c, &b)| {
                // bits(qp) ≈ c · qstep(analysis_qp) / qstep(qp); clamp the
                // per-frame modulation to ±4 QP around the base so a
                // degenerate complexity log (one huge keyframe, trivial P
                // frames) cannot starve the keyframe while gold-plating
                // frames that were already nearly free.
                let ratio = (c.max(64) as f64) * qstep(log.analysis_qp) / b;
                qp_for_step(ratio).clamp(base_qp.saturating_sub(4), (base_qp + 4).min(QP_MAX))
            })
            .collect();
        RateController::with_mode(Mode::TwoPass { budgets, qps }, fps)
    }

    fn with_mode(mode: Mode, fps: f64) -> RateController {
        RateController { mode, fps, spent_bits: 0.0, coded_frames: 0, last_qp: 26 }
    }

    /// QP to use for the next frame.
    pub fn frame_qp(&mut self, kind: FrameKind) -> u8 {
        let qp = match &self.mode {
            Mode::ConstQuality { base_qp } => *base_qp,
            Mode::Abr { target_bpf, base_qp } => {
                // Virtual-buffer feedback: raise QP when over budget.
                let expected = target_bpf * f64::from(self.coded_frames);
                let overshoot =
                    if expected > 0.0 { (self.spent_bits - expected) / target_bpf } else { 0.0 };
                let adj = (overshoot * 1.5).clamp(-12.0, 12.0);
                (f64::from(*base_qp) + adj).round().clamp(f64::from(QP_MIN), f64::from(QP_MAX))
                    as u8
            }
            Mode::TwoPass { qps, .. } => {
                let idx = (self.coded_frames as usize).min(qps.len() - 1);
                // Drift correction: if we're over budget so far, nudge up.
                // No correction before any bits have been planned (frame 0).
                let planned: f64 = self.planned_bits_through(idx);
                let adj = if planned >= 1.0 {
                    let drift = (self.spent_bits / planned).clamp(0.25, 4.0);
                    (drift.log2() * 3.0).clamp(-6.0, 6.0)
                } else {
                    0.0
                };
                (f64::from(qps[idx]) + adj).round().clamp(f64::from(QP_MIN), f64::from(QP_MAX))
                    as u8
            }
        };
        let qp = match kind {
            FrameKind::Intra => qp.saturating_sub(INTRA_QP_BONUS),
            FrameKind::Inter => qp,
        };
        self.last_qp = qp;
        qp
    }

    fn planned_bits_through(&self, idx: usize) -> f64 {
        match &self.mode {
            Mode::TwoPass { budgets, .. } => budgets.iter().take(idx).sum(),
            _ => 0.0,
        }
    }

    /// Reports the bits the just-coded frame actually used.
    pub fn frame_done(&mut self, bits: u64) {
        self.spent_bits += bits as f64;
        self.coded_frames += 1;
    }

    /// Frame rate this controller was configured for.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Total bits reported so far.
    pub fn spent_bits(&self) -> u64 {
        self.spent_bits as u64
    }
}

/// First guess at a QP achieving `target_bits` for a frame of `pixels`
/// pixels, from the empirical model `bits_per_pixel ≈ 1.2 / qstep(qp)`.
fn initial_qp_guess(target_bits: f64, pixels: u64) -> u8 {
    let bpp = target_bits / pixels as f64;
    // qstep = 1.2 / bpp  =>  qp = 6 log2(qstep / 0.625)
    qp_for_step(1.2 / bpp.max(1e-6))
}

/// QP whose step size is closest to `step`.
fn qp_for_step(step: f64) -> u8 {
    let qp = 6.0 * (step / 0.625).max(1e-9).log2();
    qp.round().clamp(f64::from(QP_MIN), f64::from(QP_MAX)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_quality_is_constant() {
        let mut rc = RateController::const_quality(23.0);
        let q1 = rc.frame_qp(FrameKind::Inter);
        rc.frame_done(100_000);
        let q2 = rc.frame_qp(FrameKind::Inter);
        assert_eq!(q1, 23);
        assert_eq!(q1, q2);
        assert_eq!(rc.frame_qp(FrameKind::Intra), 20);
    }

    #[test]
    fn abr_raises_qp_when_over_budget() {
        let mut rc = RateController::single_pass(1_000_000, 30.0, 1280 * 720);
        let q0 = rc.frame_qp(FrameKind::Inter);
        // Blow the budget 3x for a few frames.
        for _ in 0..5 {
            rc.frame_done(100_000);
        }
        let q1 = rc.frame_qp(FrameKind::Inter);
        assert!(q1 > q0, "QP should rise: {q0} -> {q1}");
    }

    #[test]
    fn abr_lowers_qp_when_under_budget() {
        let mut rc = RateController::single_pass(1_000_000, 30.0, 1280 * 720);
        let q0 = rc.frame_qp(FrameKind::Inter);
        for _ in 0..5 {
            rc.frame_done(1_000);
        }
        let q1 = rc.frame_qp(FrameKind::Inter);
        assert!(q1 < q0, "QP should drop: {q0} -> {q1}");
    }

    #[test]
    fn initial_guess_scales_with_bitrate() {
        let lo = initial_qp_guess(10_000.0, 1280 * 720);
        let hi = initial_qp_guess(1_000_000.0, 1280 * 720);
        assert!(lo > hi, "starved budget -> higher QP ({lo} vs {hi})");
    }

    #[test]
    fn two_pass_gives_complex_frames_more_bits() {
        let log = FirstPassLog { analysis_qp: 30, frame_bits: vec![1_000, 1_000, 50_000, 1_000] };
        let rc = RateController::two_pass(500_000, 30.0, &log);
        match &rc.mode {
            Mode::TwoPass { budgets, qps } => {
                assert!(budgets[2] > budgets[0] * 2.0);
                assert!(qps[2] >= qps[0], "complex frame cannot get a lower QP than trivial one");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn two_pass_budget_sums_to_target() {
        let log = FirstPassLog { analysis_qp: 30, frame_bits: vec![10_000; 30] };
        let rc = RateController::two_pass(2_000_000, 30.0, &log);
        match &rc.mode {
            Mode::TwoPass { budgets, .. } => {
                let total: f64 = budgets.iter().sum();
                // 30 frames at 30fps = 1 second of video = bps budget.
                assert!((total - 2_000_000.0).abs() < 1.0, "total {total}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn qp_for_step_inverts_qstep() {
        for qp in (QP_MIN..=QP_MAX).step_by(5) {
            assert_eq!(qp_for_step(qstep(qp)), qp);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bitrate_rejected() {
        let _ = RateController::single_pass(0, 30.0, 100);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_first_pass_rejected() {
        let _ = RateController::two_pass(1000, 30.0, &FirstPassLog::default());
    }
}
